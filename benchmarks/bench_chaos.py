"""Bench: event engine vs hybrid fast path on the full churn scenario.

Both engines run the EXPERIMENTS.md churn scenario — DPR2 over the
reliable direct transport on a lossy network (85% delivery, 15% ACK
loss, duplicates, reordering) with crash faults, heartbeat detection,
checkpointing and recovery — for a fixed round horizon.  The event
engine schedules every transmission, retransmission, ACK, heartbeat
and checkpoint as a simulator event; the hybrid engine runs flat
kernels per round with the fault plane advanced between rounds and
the reliable ARQ conversations replayed at round granularity
(DESIGN.md §13).

The comparison is only meaningful if the approximation holds, so each
scale first asserts the equivalence contract:

* identical fault-machinery outcomes — groups crashed, deaths
  detected, takeovers, checkpoint saves (the fault plane replays the
  exact injector/heartbeat/recovery event chain);
* the same ε verdict against the centralized reference, with the
  final relative errors within documented tolerance of each other;
* both ARQ stacks actually retransmitted (the scenario exercises the
  reliable layer; retransmit *counts* legitimately differ because the
  replay consumes chaos draws in round order rather than timer order).

The horizon is fixed (no convergence target) so both engines execute
exactly the same number of rounds and the wall-clock ratio isolates
engine cost rather than sample-trip timing.

On teardown the module writes ``BENCH_chaos.json`` at the repo root:
per-scale wall-clock for both engines, the speedup, the verdicts and
fault counters.  The 10⁵-page case gates CI: hybrid must stay at
least ``GATE_MIN_SPEEDUP``× faster than the event engine.
"""

import json
import pathlib
import time

from repro.core.coordinator import run_distributed_pagerank
from repro.core.pagerank import pagerank_open
from repro.experiments.chaos import CHURN_SCENARIO
from repro.graph import google_contest_like, make_partition

import pytest

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_chaos.json"

#: CI gate: minimum hybrid-over-event speedup at the largest scale.
GATE_MIN_SPEEDUP = 3.0

#: ε for the convergence verdict both engines must agree on.
EPSILON = 1e-4

#: Documented tolerance between the engines' final relative errors on
#: faulted configs (DESIGN.md §13: recovery timing and ARQ round
#: granularity are ε-level, not state corruption).
ERROR_TOLERANCE = 1e-5

#: Churn round period (CHURN_SCENARIO pins t1 = t2 = 10).
PERIOD = float(CHURN_SCENARIO["t1"])

SCALES = [
    dict(name="10k", n_pages=10_000, n_sites=200, n_groups=16, rounds=40),
    dict(name="100k", n_pages=100_000, n_sites=2_000, n_groups=64, rounds=40),
]

#: scale name -> recorded result row (filled as cases run).
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_chaos.json once every case has run."""
    yield
    if not _RESULTS:
        return
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "chaos",
                "workload": "EXPERIMENTS.md churn scenario (reliable direct "
                "transport, 0.85 delivery, ack loss, duplicates, reordering, "
                "crashes + heartbeat + checkpoint + recovery)",
                "gate_min_speedup_100k": GATE_MIN_SPEEDUP,
                "epsilon": EPSILON,
                "scales": [_RESULTS[s["name"]] for s in SCALES if s["name"] in _RESULTS],
            },
            indent=2,
        )
        + "\n"
    )


def _run(engine, graph, partition, reference, n_groups, rounds):
    # Fixed horizon, no convergence target: both engines execute the
    # same rounds; the drain margin mirrors bench_engine.
    max_time = rounds * PERIOD + PERIOD / 2.0
    t0 = time.perf_counter()
    res = run_distributed_pagerank(
        graph,
        n_groups=n_groups,
        engine=engine,
        seed=5,
        partition=partition,
        reference=reference,
        max_time=max_time,
        **CHURN_SCENARIO,
    )
    return res, time.perf_counter() - t0


@pytest.mark.parametrize("case", SCALES, ids=[s["name"] for s in SCALES])
def test_chaos_speedup(case):
    graph = google_contest_like(case["n_pages"], case["n_sites"], seed=11)
    partition = make_partition(graph, case["n_groups"], "url")
    reference = pagerank_open(graph).ranks

    hybrid, hybrid_s = _run(
        "hybrid", graph, partition, reference, case["n_groups"], case["rounds"]
    )
    event, event_s = _run(
        "event", graph, partition, reference, case["n_groups"], case["rounds"]
    )

    # Equivalence contract first — the speedup is meaningless unless
    # the fast path survives the same faults to the same verdict.
    assert hybrid.crashed_groups == event.crashed_groups
    assert hybrid.deaths_detected == event.deaths_detected
    assert hybrid.takeovers == event.takeovers
    assert hybrid.checkpoint_saves == event.checkpoint_saves
    assert hybrid.retransmits > 0 and event.retransmits > 0

    event_verdict = event.final_relative_error <= EPSILON
    hybrid_verdict = hybrid.final_relative_error <= EPSILON
    assert hybrid_verdict == event_verdict, (
        f"ε verdicts disagree: event err {event.final_relative_error:.3e}, "
        f"hybrid err {hybrid.final_relative_error:.3e}, ε={EPSILON:g}"
    )
    err_gap = abs(hybrid.final_relative_error - event.final_relative_error)
    assert err_gap <= ERROR_TOLERANCE, (
        f"final errors drifted {err_gap:.3e} apart "
        f"(tolerance {ERROR_TOLERANCE:g})"
    )
    assert hybrid.fidelity == "approximate"
    assert hybrid.replayed_rounds == case["rounds"]

    speedup = event_s / hybrid_s
    _RESULTS[case["name"]] = {
        "name": case["name"],
        "n_pages": case["n_pages"],
        "n_groups": case["n_groups"],
        "rounds": case["rounds"],
        "event_wall_s": round(event_s, 3),
        "hybrid_wall_s": round(hybrid_s, 3),
        "speedup": round(speedup, 2),
        "epsilon_verdicts_agree": True,
        "event_final_error": event.final_relative_error,
        "hybrid_final_error": hybrid.final_relative_error,
        "crashed_groups": int(event.crashed_groups),
        "takeovers": int(event.takeovers),
        "checkpoint_saves": int(event.checkpoint_saves),
        "event_retransmits": int(event.retransmits),
        "hybrid_retransmits": int(hybrid.retransmits),
        "event_messages": int(event.traffic.total_messages),
        "hybrid_messages": int(hybrid.traffic.total_messages),
    }

    if case["name"] == "100k":
        assert speedup >= GATE_MIN_SPEEDUP, (
            f"hybrid engine speedup {speedup:.2f}x fell below the "
            f"{GATE_MIN_SPEEDUP}x gate at the 1e5-page churn scale"
        )
