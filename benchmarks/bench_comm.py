"""Bench: wire-codec traffic reduction under the error budget.

§4.4 charges every cross-group score update a flat 100 bytes per link
record, and §6 leaves traffic reduction as future work.  The codec
layer (repro.net.codec / repro.net.adaptive) implements that future
work; this bench is its gate.  One workload — DPR2, site partition,
direct transport on a Pastry overlay, flat engine, synchronous
schedule at the Figure-8 round budget — runs under three codecs:

* ``none``     — the paper's flat byte model; calibrated data bytes
  must equal the paper-model bytes exactly (accounting identity);
* ``delta``    — lossless delta frames (ε_comm = 0); final ranks must
  be bit-identical to the uncoded run while the calibrated data bytes
  shrink by at least ``GATE_MIN_REDUCTION``×;
* ``delta-q16``— half-precision deltas spending ε_comm = 1e-4; the
  measured L1 rank deviation from the uncoded run must stay within
  the certified bound ε_comm/(1−α).

A second case folds in the suppression-threshold ablation (the
``send_threshold`` knob, predating the codec): more suppression must
weakly reduce messages, and mild suppression must not destroy
accuracy.

On teardown the module writes ``BENCH_comm.json`` at the repo root;
``tools/check_bench_regression.py`` compares the gated reduction
factor against the committed copy in CI.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core.coordinator import run_distributed_pagerank
from repro.core.pagerank import pagerank_open
from repro.experiments import default_graph, run_compression_ablation
from repro.graph import google_contest_like, make_partition

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_comm.json"

#: CI gate: minimum paper-bytes-over-data-bytes reduction for the
#: lossless delta codec at the headline scale.
GATE_MIN_REDUCTION = 3.0

#: Headline workload: the Figure-8 scale and round budget.
N_PAGES = 100_000
N_SITES = 2_000
N_GROUPS = 64
ROUNDS = 266
PERIOD = 100.0

#: Error budget of the lossy contender.
COMM_EPSILON = 1e-4

#: case name -> recorded result row.
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_comm.json once every case has run."""
    yield
    if not _RESULTS:
        return
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "comm",
                "workload": "dpr2 / direct transport / pastry overlay / "
                "site partition / flat engine / synchronous schedule",
                "gate_min_reduction_100k": GATE_MIN_REDUCTION,
                "cases": _RESULTS,
            },
            indent=2,
        )
        + "\n"
    )


def _run(graph, partition, reference, codec, epsilon):
    t0 = time.perf_counter()
    res = run_distributed_pagerank(
        graph,
        n_groups=N_GROUPS,
        algorithm="dpr2",
        partition=partition,
        partition_strategy="site",
        transport="direct",
        overlay="pastry",
        schedule="sync",
        t1=PERIOD,
        t2=PERIOD,
        sample_interval=PERIOD,
        seed=17,
        engine="flat",
        codec=codec,
        comm_epsilon=epsilon,
        reference=reference,
        max_time=ROUNDS * PERIOD + PERIOD / 2.0,
    )
    return res, time.perf_counter() - t0


def test_codec_reduction_100k():
    graph = google_contest_like(N_PAGES, N_SITES, seed=17)
    partition = make_partition(graph, N_GROUPS, "site")
    reference = pagerank_open(graph).ranks

    base, base_s = _run(graph, partition, reference, "none", 0.0)
    delta, delta_s = _run(graph, partition, reference, "delta", 0.0)
    q16, q16_s = _run(graph, partition, reference, "delta-q16", COMM_EPSILON)

    # Gate 1 — the uncoded path is the paper's byte model, exactly:
    # the calibrated counter and the paper-formula counter must agree
    # byte for byte when no codec is installed.
    assert base.traffic.data_bytes == base.traffic.paper_data_bytes
    assert base.codec_stats is None

    # Gate 2 — lossless delta: bit-identical ranks and the calibrated
    # wire bytes shrink by at least the gate factor at the 1e5-page
    # scale, measured against the *uncoded* run's bytes.  The coded
    # run's own paper-model charge can only be lower than the uncoded
    # run's (frames whose segment did not change at all are suppressed
    # for free, so §4.4 never charges them either).
    assert delta.ranks.tobytes() == base.ranks.tobytes()
    assert delta.traffic.paper_data_bytes <= base.traffic.data_bytes
    reduction = base.traffic.data_bytes / delta.traffic.data_bytes
    assert reduction >= GATE_MIN_REDUCTION, (
        f"delta codec reduction {reduction:.2f}x fell below the "
        f"{GATE_MIN_REDUCTION}x gate at the 1e5-page scale"
    )

    # Gate 3 — error budget: the measured L1 rank deviation of the
    # lossy run must honour the certificate ε_comm/(1−α).
    certified = q16.codec_stats["certified_bound"]
    deviation = float(np.abs(q16.ranks - base.ranks).sum())
    assert deviation <= certified, (
        f"q16 deviation {deviation:.3e} exceeds the certified "
        f"bound {certified:.3e}"
    )
    assert q16.codec_stats["residual_mass"] <= COMM_EPSILON + 1e-12
    q16_reduction = q16.traffic.paper_data_bytes / q16.traffic.data_bytes

    _RESULTS["codec_100k"] = {
        "n_pages": N_PAGES,
        "n_groups": N_GROUPS,
        "rounds": ROUNDS,
        "comm_epsilon": COMM_EPSILON,
        "paper_bytes": int(base.traffic.data_bytes),
        "delta_data_bytes": int(delta.traffic.data_bytes),
        "q16_data_bytes": int(q16.traffic.data_bytes),
        "delta_reduction_x": round(reduction, 2),
        "q16_reduction_x": round(q16_reduction, 2),
        "delta_bit_identical": True,
        "q16_deviation_l1": deviation,
        "q16_certified_bound": certified,
        "delta_frames": int(delta.codec_stats["frames"]),
        "delta_suppressed": int(delta.codec_stats["suppressed_frames"]),
        "q16_frames": int(q16.codec_stats["frames"]),
        "q16_suppressed": int(q16.codec_stats["suppressed_frames"]),
        "q16_exact_flushes": int(q16.codec_stats["exact_flushes"]),
        "none_wall_s": round(base_s, 3),
        "delta_wall_s": round(delta_s, 3),
        "q16_wall_s": round(q16_s, 3),
    }


def test_suppression_ablation(scale, save_result):
    """Folded from the former bench_compression.py: the paper's
    future-work item measured with the plain ``send_threshold`` knob
    (no codec), unchanged semantics."""
    graph = default_graph(scale)
    result = run_compression_ablation(
        graph,
        n_groups=16,
        thresholds=(0.0, 1e-8, 1e-4, 1e-2),
        max_time=120.0,
    )
    save_result("compression", result.format())

    # More suppression -> (weakly) fewer messages.
    assert result.messages[-1] < result.messages[0]
    # Mild suppression must not destroy accuracy.
    assert result.final_errors[1] < 10 * max(result.final_errors[0], 1e-12)

    _RESULTS["suppression"] = {
        "n_pages": graph.n_pages,
        "n_groups": 16,
        "thresholds": list(result.thresholds),
        "messages": [int(m) for m in result.messages],
        "final_errors": [float(e) for e in result.final_errors],
    }
