"""Ablation bench: delta suppression (the paper's future-work item).

§4.5 closes with "Some techniques can be adopted to reduce convergence
time, i.e. compression. This problem is left as future work."  This
bench measures the simplest such technique — suppressing efferent
updates that changed by less than a threshold — and verifies it trades
a bounded accuracy loss for a real traffic reduction.
"""

import pytest

from repro.experiments import default_graph, run_compression_ablation


@pytest.fixture(scope="module")
def graph(scale):
    return default_graph(scale)


def test_compression(benchmark, graph, save_result):
    result = benchmark.pedantic(
        run_compression_ablation,
        kwargs=dict(
            graph=graph, n_groups=16,
            thresholds=(0.0, 1e-8, 1e-4, 1e-2), max_time=120.0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("compression", result.format())

    # More suppression -> (weakly) fewer messages.
    assert result.messages[-1] < result.messages[0]
    # Mild suppression must not destroy accuracy.
    assert result.final_errors[1] < 10 * max(result.final_errors[0], 1e-12)

    benchmark.extra_info["messages"] = dict(
        zip(map(str, result.thresholds), result.messages)
    )
