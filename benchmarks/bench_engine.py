"""Bench: event engine vs flat bulk-synchronous engine, wall-clock.

Both engines run the *same* workload — DPR2 over the indirect (DHT
store-and-forward) transport on a Chord overlay, lossless, under the
synchronous schedule — and must produce bit-identical final ranks and
identical paper-formula traffic totals; the only thing allowed to
differ is wall-clock time.  The event engine replays every update as
simulator events (per-hop forwarding, per-message receive); the flat
engine runs three SpMVs per round and accounts traffic from one
calibration replay.

Workload shape
--------------
Three scales, growing pages and rankers together.  The round budget of
the headline 10⁵-page case matches Figure 8's published time budget
(max_time 4000 at T1=T2=15 ≈ 266 outer loops); under a synchronous
schedule the virtual period itself is arbitrary, so the budget is
expressed directly in rounds.  Each case is timed as one single-shot
end-to-end `run_distributed_pagerank` call (these are long runs;
multi-round statistical timing would cost minutes for no insight).
The partition and centralized reference are prebuilt and shared so the
comparison isolates engine cost.

On teardown the module writes ``BENCH_engine.json`` at the repo root:
per-scale wall-clock for both engines, the speedup, the identity
checks, and measured-vs-formula per-round traffic.  The 10⁵-page case
gates CI: flat must stay at least ``GATE_MIN_SPEEDUP``× faster.
"""

import json
import pathlib
import time

from repro.core.coordinator import run_distributed_pagerank
from repro.core.engine import SynchronousEngine
from repro.core.pagerank import pagerank_open
from repro.graph import google_contest_like, make_partition

import pytest

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_engine.json"

#: CI gate: minimum flat-over-event speedup at the largest scale.
GATE_MIN_SPEEDUP = 5.0

#: Synchronous tick period (virtual time; value is arbitrary under the
#: sync schedule).  max_time = rounds · T + T/2 leaves a drain margin
#: shorter than one period but longer than the indirect transport's
#: per-round delivery chain, so the event engine records the final
#: round's flushes without admitting an extra tick.
PERIOD = 100.0

SCALES = [
    dict(name="10k", n_pages=10_000, n_sites=200, n_groups=16, rounds=80),
    dict(name="40k", n_pages=40_000, n_sites=800, n_groups=32, rounds=160),
    dict(name="100k", n_pages=100_000, n_sites=2_000, n_groups=64, rounds=266),
]

#: scale name -> recorded result row (filled as cases run).
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_engine.json once every case has run."""
    yield
    if not _RESULTS:
        return
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "engine",
                "workload": "dpr2 / indirect transport / chord overlay / "
                "p=1 / synchronous schedule",
                "gate_min_speedup_100k": GATE_MIN_SPEEDUP,
                "scales": [_RESULTS[s["name"]] for s in SCALES if s["name"] in _RESULTS],
            },
            indent=2,
        )
        + "\n"
    )


def _run(engine, graph, partition, reference, n_groups, rounds):
    max_time = rounds * PERIOD + PERIOD / 2.0
    t0 = time.perf_counter()
    res = run_distributed_pagerank(
        graph,
        n_groups=n_groups,
        algorithm="dpr2",
        partition_strategy="url",
        transport="indirect",
        overlay="chord",
        delivery_prob=1.0,
        t1=PERIOD,
        t2=PERIOD,
        seed=17,
        schedule="sync",
        sample_interval=PERIOD,
        engine=engine,
        partition=partition,
        reference=reference,
        max_time=max_time,
    )
    return res, time.perf_counter() - t0


@pytest.mark.parametrize("case", SCALES, ids=[s["name"] for s in SCALES])
def test_engine_speedup(case):
    graph = google_contest_like(case["n_pages"], case["n_sites"], seed=17)
    partition = make_partition(graph, case["n_groups"], "url")
    reference = pagerank_open(graph).ranks

    flat, flat_s = _run(
        "flat", graph, partition, reference, case["n_groups"], case["rounds"]
    )
    event, event_s = _run(
        "event", graph, partition, reference, case["n_groups"], case["rounds"]
    )

    # The engines must agree exactly — the speedup is meaningless
    # unless the cheap engine does the same computation.
    assert event.ranks.tobytes() == flat.ranks.tobytes()
    assert event.traffic.data_messages == flat.traffic.data_messages
    assert event.traffic.data_bytes == flat.traffic.data_bytes
    assert event.traffic.lookup_messages == flat.traffic.lookup_messages
    assert event.traffic.lookup_bytes == flat.traffic.lookup_bytes
    assert int(flat.outer_iterations[0]) == case["rounds"]

    # Measured-vs-formula per-round traffic (engine's cost_model bridge).
    probe = SynchronousEngine(
        graph, flat.config, partition=partition, reference=reference
    )
    round_traffic = probe.calibrated_round_traffic()
    formula = probe.paper_round_estimate()

    speedup = event_s / flat_s
    _RESULTS[case["name"]] = {
        "name": case["name"],
        "n_pages": case["n_pages"],
        "n_groups": case["n_groups"],
        "rounds": case["rounds"],
        "event_wall_s": round(event_s, 3),
        "flat_wall_s": round(flat_s, 3),
        "speedup": round(speedup, 2),
        "bit_identical_ranks": True,
        "identical_traffic": True,
        "round_data_messages": round_traffic.data_messages,
        "round_data_bytes": round_traffic.data_bytes,
        "formula_data_messages": formula["data_messages"],
        "formula_data_bytes": formula["data_bytes"],
    }

    if case["name"] == "100k":
        assert speedup >= GATE_MIN_SPEEDUP, (
            f"flat engine speedup {speedup:.2f}x fell below the "
            f"{GATE_MIN_SPEEDUP}x gate at the 1e5-page scale"
        )
