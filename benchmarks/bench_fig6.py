"""Bench: regenerate Figure 6 (relative error vs time, DPR1, A/B/C).

Paper claims verified here:
* distributed PageRank converges to the centralized ranks (error → 0);
* loss (B) and slower nodes (C) delay but do not prevent convergence.
"""

import pytest

from repro.experiments import default_graph, run_fig6


@pytest.fixture(scope="module")
def graph(scale):
    return default_graph(scale)


def test_fig6(benchmark, graph, save_result):
    result = benchmark.pedantic(
        run_fig6,
        kwargs=dict(graph=graph, n_groups=64, max_time=90.0),
        rounds=1,
        iterations=1,
    )
    save_result("fig6", result.format())

    # Shape assertions (the paper's qualitative findings).
    for label, res in result.results.items():
        errs = res.trace.relative_errors
        assert errs[-1] < 0.05 * errs[0], f"config {label} did not converge"
    t_a = result.results["A"].trace.time_to_error(0.01)
    t_c = result.results["C"].trace.time_to_error(0.01)
    assert t_a is not None
    if t_c is not None:
        assert t_a <= t_c, "loss+slow nodes should not beat the calm config"

    # Fitted decay rates (more negative = faster): A ≺ B ≺ C ordering.
    rates = result.rates()
    assert rates["A"] < 0 and rates["B"] < 0
    assert rates["A"] <= rates["C"] + 1e-9

    benchmark.extra_info["final_error_A"] = result.results["A"].trace.final_error()
    benchmark.extra_info["time_to_1pct_A"] = t_a
    benchmark.extra_info["decay_rates"] = {k: round(v, 4) for k, v in rates.items()}
