"""Bench: regenerate Figure 7 (monotone average rank, DPR1, K=100).

Paper claims verified here:
* the rank sequence of DPR1 is monotone non-decreasing (Thm 4.1/4.2);
* the average rank plateaus well below E=1 (the paper observes ~0.3)
  because most of the crawl's links point outside the dataset.
"""

import pytest

from repro.experiments import default_graph, run_fig7


@pytest.fixture(scope="module")
def graph(scale):
    return default_graph(scale)


def test_fig7(benchmark, graph, save_result):
    result = benchmark.pedantic(
        run_fig7,
        kwargs=dict(graph=graph, n_groups=100, max_time=90.0),
        rounds=1,
        iterations=1,
    )
    save_result("fig7", result.format())

    assert all(result.monotone.values()), "Theorem 4.1 violated in simulation"
    for label, plateau in result.plateau.items():
        assert 0.05 < plateau < 0.7, f"config {label}: plateau {plateau}"

    benchmark.extra_info["plateau_A"] = result.plateau["A"]
    benchmark.extra_info["centralized_mean"] = float(
        result.results["A"].reference.mean()
    )
