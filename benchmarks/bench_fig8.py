"""Bench: regenerate Figure 8 (iterations to converge vs #rankers).

Paper claims verified here:
* DPR1 converges in fewer iterations than DPR2;
* DPR1 needs no more iterations than centralized PageRank;
* the number of page rankers has little effect on convergence speed.
"""

import pytest

from repro.experiments import default_graph, run_fig8


@pytest.fixture(scope="module")
def graph(scale):
    return default_graph(scale)


def test_fig8(benchmark, graph, save_result):
    result = benchmark.pedantic(
        run_fig8,
        kwargs=dict(graph=graph, ks=(2, 10, 100, 256), max_time=4000.0),
        rounds=1,
        iterations=1,
    )
    save_result("fig8", result.format())

    dpr1 = result.iterations["dpr1"]
    dpr2 = result.iterations["dpr2"]
    assert all(v > 0 for v in dpr1.values()), "a DPR1 run missed the threshold"
    assert all(v > 0 for v in dpr2.values()), "a DPR2 run missed the threshold"
    for k in dpr1:
        assert dpr1[k] <= dpr2[k] + 1, f"DPR1 slower than DPR2 at K={k}"
        assert dpr1[k] <= result.cpr_iterations + 2, f"DPR1 slower than CPR at K={k}"
    # K-insensitivity across two orders of magnitude.
    for algo in ("dpr1", "dpr2"):
        vals = list(result.iterations[algo].values())
        assert max(vals) <= 4 * max(min(vals), 1)

    benchmark.extra_info["cpr_iterations"] = result.cpr_iterations
    benchmark.extra_info["dpr1"] = dpr1
    benchmark.extra_info["dpr2"] = dpr2
