"""Engineering bench: throughput of the numerical kernels.

Not a paper table — this measures the building blocks so regressions
in the hot paths (SpMV sweeps, block decomposition, full centralized
solves) are visible. These benches use pytest-benchmark's normal
multi-round timing since each call is fast.
"""

import numpy as np
import pytest

from repro.core.pagerank import pagerank_open
from repro.experiments import default_graph
from repro.graph import make_partition
from repro.linalg import group_blocks, jacobi_sweep, propagation_matrix


@pytest.fixture(scope="module")
def graph(scale):
    return default_graph(scale)


@pytest.fixture(scope="module")
def operator(graph):
    return propagation_matrix(graph, 0.85)


def test_jacobi_sweep_throughput(benchmark, graph, operator):
    x = np.random.default_rng(0).random(graph.n_pages)
    f = np.full(graph.n_pages, 0.15)
    result = benchmark(jacobi_sweep, operator, x, f)
    assert result.shape == (graph.n_pages,)


def test_propagation_matrix_build(benchmark, graph):
    p = benchmark(propagation_matrix, graph, 0.85)
    assert p.shape == (graph.n_pages, graph.n_pages)


def test_group_blocks_build(benchmark, graph):
    part = make_partition(graph, 32, "site")
    blocks = benchmark(group_blocks, graph, part, 0.85)
    assert blocks.n_groups == 32


def test_centralized_pagerank_solve(benchmark, graph):
    result = benchmark(pagerank_open, graph, 0.85)
    assert result.converged
