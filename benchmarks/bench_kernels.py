"""Engineering bench: throughput of the numerical kernels.

Not a paper table — this measures the building blocks so regressions
in the hot paths (SpMV sweeps, block decomposition, full centralized
solves) are visible. These benches use pytest-benchmark's normal
multi-round timing since each call is fast.

Before/after cases
------------------
Each allocation-free kernel introduced by the hot-path work is
benchmarked against the naive implementation it replaced:

* ``jacobi_sweep``  — fresh-array sweep vs. workspace out-buffer sweep
* ``jacobi_solve``  — allocate-per-sweep solve vs. ping-pong workspace
* ``efferent``      — per-destination dict scan vs. stacked single SpMV
* ``refresh_x``     — re-sum-every-call vs. incrementally maintained X
* ``dpr2_outer_step`` — one full synchronous DPR2 round over all
  groups (refresh X + sweep + efferent for every ranker), naive vs
  fast; this is the composite number the acceptance gate tracks.

On teardown the module writes ``BENCH_kernels.json`` at the repo root
(per-kernel median ns, graph scale, speedups) so the perf trajectory
is machine-readable from this PR onward.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.core.dpr import DPRNode
from repro.core.open_system import GroupSystem
from repro.core.pagerank import pagerank_open
from repro.experiments import default_graph
from repro.graph import make_partition
from repro.linalg import (
    JacobiWorkspace,
    group_blocks,
    jacobi_solve,
    jacobi_sweep,
    propagation_matrix,
)
from repro.net.message import ScoreUpdate

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_kernels.json"

#: Group count for the partitioned cases — large enough that the naive
#: per-destination dict scan (O(#cross blocks) per call) is visible.
N_GROUPS = 32

#: kernel -> {"naive_ns": float, "fast_ns": float}
_MEDIANS = {}


def _record(kind, variant, benchmark):
    if getattr(benchmark, "stats", None) is None:
        return  # --benchmark-disable: nothing to record
    median_s = benchmark.stats.stats.median
    _MEDIANS.setdefault(kind, {})[f"{variant}_ns"] = median_s * 1e9
    benchmark.extra_info["kernel"] = kind
    benchmark.extra_info["variant"] = variant


@pytest.fixture(scope="module")
def graph(scale):
    return default_graph(scale)


@pytest.fixture(scope="module")
def operator(graph):
    return propagation_matrix(graph, 0.85)


@pytest.fixture(scope="module")
def partitioned(graph):
    part = make_partition(graph, N_GROUPS, "site")
    return GroupSystem(graph, part)


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json(scale):
    """Write BENCH_kernels.json once every recorded case has run."""
    yield
    if not _MEDIANS:
        return
    kernels = {}
    for kind, entry in sorted(_MEDIANS.items()):
        naive, fast = entry.get("naive_ns"), entry.get("fast_ns")
        kernels[kind] = dict(entry)
        if naive and fast:
            kernels[kind]["speedup"] = naive / fast
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "kernels",
                "scale": {
                    "n_pages": scale.n_pages,
                    "n_sites": scale.n_sites,
                    "n_groups": N_GROUPS,
                },
                "kernels": kernels,
            },
            indent=2,
        )
        + "\n"
    )


# ----------------------------------------------------------------------
# Single-kernel before/after
# ----------------------------------------------------------------------


def test_jacobi_sweep_throughput(benchmark, graph, operator):
    x = np.random.default_rng(0).random(graph.n_pages)
    f = np.full(graph.n_pages, 0.15)
    result = benchmark(jacobi_sweep, operator, x, f)
    assert result.shape == (graph.n_pages,)
    _record("jacobi_sweep", "naive", benchmark)


def test_jacobi_sweep_workspace(benchmark, graph, operator):
    x = np.random.default_rng(0).random(graph.n_pages)
    f = np.full(graph.n_pages, 0.15)
    out = np.empty(graph.n_pages)
    result = benchmark(jacobi_sweep, operator, x, f, out=out)
    assert result.shape == (graph.n_pages,)
    _record("jacobi_sweep", "fast", benchmark)


def test_jacobi_solve_naive(benchmark, graph, operator):
    f = np.full(graph.n_pages, 0.15)
    res = benchmark(jacobi_solve, operator, f, tol=1e-10)
    assert res.converged
    _record("jacobi_solve", "naive", benchmark)


def test_jacobi_solve_workspace(benchmark, graph, operator):
    f = np.full(graph.n_pages, 0.15)
    ws = JacobiWorkspace(graph.n_pages)
    res = benchmark(jacobi_solve, operator, f, tol=1e-10, workspace=ws)
    assert res.converged
    _record("jacobi_solve", "fast", benchmark)


def test_efferent_naive(benchmark, partitioned):
    blocks = partitioned.blocks
    rs = [np.random.default_rng(g).random(blocks.group_size(g)) for g in range(N_GROUPS)]

    def all_groups():
        return [blocks.efferent_reference(g, rs[g]) for g in range(N_GROUPS)]

    result = benchmark(all_groups)
    assert len(result) == N_GROUPS
    _record("efferent", "naive", benchmark)


def test_efferent_stacked(benchmark, partitioned):
    blocks = partitioned.blocks
    rs = [np.random.default_rng(g).random(blocks.group_size(g)) for g in range(N_GROUPS)]
    bufs = [blocks.efferent_buffer(g) for g in range(N_GROUPS)]

    def all_groups():
        return [blocks.efferent_into(g, rs[g], bufs[g]) for g in range(N_GROUPS)]

    result = benchmark(all_groups)
    assert len(result) == N_GROUPS
    _record("efferent", "fast", benchmark)


def test_refresh_x_naive(benchmark, partitioned):
    g = max(range(N_GROUPS), key=lambda h: len(partitioned.sources_of(h)))
    n = partitioned.group_size(g)
    rng = np.random.default_rng(7)
    latest = {src: rng.random(n) for src in partitioned.sources_of(g)}

    def resum():
        x = np.zeros(n)
        for vec in latest.values():
            x += vec
        return x

    result = benchmark(resum)
    assert result.shape == (n,)
    _record("refresh_x", "naive", benchmark)


def test_refresh_x_incremental(benchmark, partitioned):
    g = max(range(N_GROUPS), key=lambda h: len(partitioned.sources_of(h)))
    node = DPRNode(g, partitioned.diag(g), partitioned.beta_e[g], mode="dpr2")
    rng = np.random.default_rng(7)
    for src in partitioned.sources_of(g):
        node.receive(ScoreUpdate(src, g, rng.random(node.n_local), 1, generation=1))

    result = benchmark(node.refresh_x)
    assert result.shape == (node.n_local,)
    _record("refresh_x", "fast", benchmark)


# ----------------------------------------------------------------------
# Composite: one synchronous DPR2 outer round over every group
# ----------------------------------------------------------------------


class _SeedNode:
    """The pre-optimization DPR2 node: allocates on every call."""

    def __init__(self, group, a_group, beta_e):
        self.group = group
        self.a_group = a_group
        self.beta_e = beta_e
        self.r = np.zeros(beta_e.shape[0])
        self._latest_values = {}
        self._latest_gen = {}
        self.outer_iterations = 0

    def receive(self, update):
        src = update.src_group
        if src in self._latest_gen and update.generation <= self._latest_gen[src]:
            return
        self._latest_gen[src] = update.generation
        self._latest_values[src] = update.values

    def step(self):
        x = np.zeros(self.r.shape[0])
        for vec in self._latest_values.values():
            x += vec
        f = self.beta_e + x
        if self.r.shape[0]:
            self.r = jacobi_sweep(self.a_group, self.r, f)
        self.outer_iterations += 1
        return self.r


def _dpr2_round(nodes, efferent, receive_all):
    mail = []
    for node in nodes:
        r = node.step()
        for dst, values in efferent(node.group, r).items():
            mail.append(ScoreUpdate(node.group, dst, values, 1, node.outer_iterations))
    receive_all(mail)


def test_dpr2_outer_step_naive(benchmark, partitioned):
    nodes = [
        _SeedNode(g, partitioned.diag(g), partitioned.beta_e[g])
        for g in range(N_GROUPS)
    ]

    def receive_all(mail):
        for u in mail:
            nodes[u.dst_group].receive(u)

    benchmark(
        _dpr2_round, nodes, partitioned.blocks.efferent_reference, receive_all
    )
    assert all(n.outer_iterations > 0 for n in nodes)
    _record("dpr2_outer_step", "naive", benchmark)


def test_dpr2_outer_step_fast(benchmark, partitioned):
    nodes = [
        DPRNode(g, partitioned.diag(g), partitioned.beta_e[g], mode="dpr2")
        for g in range(N_GROUPS)
    ]

    def receive_all(mail):
        for u in mail:
            nodes[u.dst_group].receive(u)

    benchmark(_dpr2_round, nodes, partitioned.efferent, receive_all)
    assert all(n.outer_iterations > 0 for n in nodes)
    _record("dpr2_outer_step", "fast", benchmark)


# ----------------------------------------------------------------------
# Structure builds and the end-to-end centralized solve (unchanged)
# ----------------------------------------------------------------------


def test_propagation_matrix_build(benchmark, graph):
    p = benchmark(propagation_matrix, graph, 0.85)
    assert p.shape == (graph.n_pages, graph.n_pages)


def test_group_blocks_build(benchmark, graph):
    part = make_partition(graph, N_GROUPS, "site")
    blocks = benchmark(group_blocks, graph, part, 0.85)
    assert blocks.n_groups == N_GROUPS


def test_centralized_pagerank_solve(benchmark, graph):
    result = benchmark(pagerank_open, graph, 0.85)
    assert result.converged
