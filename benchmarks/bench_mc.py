"""Bench: Monte-Carlo random-walk engine accuracy and traffic.

Three measurements, written to ``BENCH_mc.json`` at the repo root on
teardown:

* **Accuracy gate** — at a small contest-like scale the mc engine's
  final L1 error against the centralized open-system reference must be
  within :func:`repro.linalg.montecarlo.mc_error_tolerance`, the
  Chernoff-style bound documented in docs/ALGORITHMS.md.  Seeds are
  fixed, so this is a deterministic CI gate, and the bound carries a
  2x safety factor over the expected error.
* **Scaling check** — the measured error must shrink as walks_per_page
  grows (the bound says 1/sqrt(R); the gate requires strict decrease
  across R = 4 -> 16 -> 64 on the fixed seed).
* **Headline scale** — one 1e5-page bake-off point (rounds, messages,
  bytes, wall-clock, error vs tolerance).  A 1e6-page run of the same
  shape is available behind ``REPRO_BENCH_XL=1``.

Every run goes through ``run_distributed_pagerank(engine="mc")`` — the
full partition/overlay/transport stack, not the bare kernel — so the
traffic numbers in the JSON are the paper-model numbers.
"""

import json
import os
import pathlib
import time

from repro.core.coordinator import run_distributed_pagerank
from repro.core.pagerank import pagerank_open
from repro.graph import google_contest_like
from repro.linalg import mc_error_tolerance

import numpy as np
import pytest

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_mc.json"

#: Synchronous tick period (virtual time; arbitrary under sync).
PERIOD = 6.0

#: walks_per_page ladder for the scaling check.
WALK_LADDER = (4, 16, 64)

#: Headline scale, and the XL variant gated behind REPRO_BENCH_XL=1.
HEADLINE = dict(name="100k", n_pages=100_000, n_sites=2_000, n_groups=64)
XL = dict(name="1m", n_pages=1_000_000, n_sites=20_000, n_groups=128)

_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_mc.json once every case has run."""
    yield
    if not _RESULTS:
        return
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2) + "\n")


def _relative_l1(estimate, reference):
    return float(np.abs(estimate - reference).sum() / np.abs(reference).sum())


def _mc_point(graph, reference, *, n_groups, walks_per_page, seed=2003):
    t0 = time.perf_counter()
    res = run_distributed_pagerank(
        graph,
        n_groups=n_groups,
        engine="mc",
        schedule="sync",
        partition_strategy="site",
        transport="indirect",
        overlay="pastry",
        t1=PERIOD,
        t2=PERIOD,
        sample_interval=PERIOD,
        seed=seed,
        walks_per_page=walks_per_page,
        reference=reference,
        max_time=100_000.0,
    )
    wall = time.perf_counter() - t0
    err = _relative_l1(res.ranks, reference)
    return {
        "walks_per_page": walks_per_page,
        "rounds": res.max_outer_iterations,
        "token_steps": int(res.inner_sweeps.sum()),
        "messages": res.traffic.total_messages,
        "bytes": res.traffic.total_bytes,
        "wall_s": round(wall, 3),
        "l1_error": round(err, 6),
        "tolerance": round(mc_error_tolerance(reference, walks_per_page), 6),
    }


def test_accuracy_gate_and_scaling():
    """Small-scale gates: error within tolerance, shrinking with R."""
    graph = google_contest_like(5_000, 100, seed=17)
    reference = pagerank_open(graph).ranks

    ladder = []
    for walks in WALK_LADDER:
        point = _mc_point(graph, reference, n_groups=16, walks_per_page=walks)
        # CI gate 1: measured error within the documented bound.
        assert point["l1_error"] <= point["tolerance"], (
            f"mc error {point['l1_error']:.4f} exceeded the documented "
            f"tolerance {point['tolerance']:.4f} at R={walks}"
        )
        ladder.append(point)

    # CI gate 2: error strictly shrinks as walks_per_page grows.
    errs = [p["l1_error"] for p in ladder]
    assert errs == sorted(errs, reverse=True), (
        f"mc error did not shrink along the walk ladder: {errs}"
    )
    assert errs[-1] < errs[0] / 2

    _RESULTS["accuracy"] = {
        "n_pages": graph.n_pages,
        "n_groups": 16,
        "safety_factor": 2.0,
        "ladder": ladder,
    }


def _headline_case(case, walks_per_page=16):
    graph = google_contest_like(case["n_pages"], case["n_sites"], seed=17)
    reference = pagerank_open(graph).ranks
    point = _mc_point(
        graph,
        reference,
        n_groups=case["n_groups"],
        walks_per_page=walks_per_page,
    )
    assert point["l1_error"] <= point["tolerance"]
    _RESULTS[case["name"]] = {
        "n_pages": case["n_pages"],
        "n_groups": case["n_groups"],
        **point,
    }


def test_headline_100k():
    """1e5 pages through the full mc stack, error gated."""
    _headline_case(HEADLINE)


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_XL") != "1",
    reason="1e6-page case runs only with REPRO_BENCH_XL=1",
)
def test_xl_1m():
    """1e6 pages; minutes of wall-clock, opt-in."""
    _headline_case(XL)
