"""Ablation bench: online/dynamic ranking (paper §4.3 + future work).

The paper proves convergence for static graphs and conjectures it
"DOES converge" without that constraint.  This bench exercises the
dynamic case end to end — a growing crawl over a churning TrueWeb —
and quantifies the warm-start advantage that makes incremental
re-ranking practical.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.crawl import Crawler, TrueWeb, online_distributed_pagerank


def run_online():
    web = TrueWeb(3000, 40, seed=11)
    crawler = Crawler(web, seeds=[0, 1500], seed=12)
    return online_distributed_pagerank(
        crawler,
        n_groups=8,
        phases=4,
        pages_per_phase=500,
        churn_per_phase=80,
        seed=13,
    )


def test_online_dynamic_ranking(benchmark, save_result):
    phases = benchmark.pedantic(run_online, rounds=1, iterations=1)

    rows = [
        (
            ph.phase,
            ph.n_pages,
            str(ph.converged),
            ph.time_to_target,
            round(ph.mean_outer_iterations, 1),
            f"{ph.initial_error:.3f}",
        )
        for ph in phases
    ]
    save_result(
        "online",
        format_table(
            ["phase", "pages", "converged", "time", "mean iters", "init err"],
            rows,
            title="§4.3 dynamics — online crawl-and-rank",
        ),
    )

    # The conjecture: every phase converges despite growth + churn.
    assert all(ph.converged for ph in phases)
    # Warm starts: later phases begin closer to their fixed point than
    # a cold start would (relative error 1.0).
    assert all(ph.initial_error < 0.9 for ph in phases[1:])
    benchmark.extra_info["initial_errors"] = [
        round(ph.initial_error, 3) for ph in phases
    ]
