"""Ablation bench: online/dynamic ranking (paper §4.3 + future work).

The paper proves convergence for static graphs and conjectures it
"DOES converge" without that constraint.  This bench exercises the
dynamic case end to end — a growing crawl over a churning TrueWeb —
and quantifies the warm-start advantage that makes incremental
re-ranking practical: the same phase sequence is ranked twice, once
carrying ranks forward (warm) and once from scratch (cold), and the
mean outer-iteration counts are compared.  TrueWeb churn is seeded
per phase, so both runs rank byte-identical graph sequences.

On teardown the module writes ``BENCH_online.json`` at the repo root:
per-phase convergence, initial errors and iteration counts for both
modes, plus the aggregate warm-start advantage — the perf-trajectory
artifact for the serving tier's warm-start claim.
"""

import json
import pathlib

import pytest

from repro.analysis.reporting import format_table
from repro.crawl import Crawler, TrueWeb, online_distributed_pagerank

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_online.json"

#: Warm phases must start strictly closer to the fixed point than a
#: cold start (relative error 1.0).
MAX_WARM_INITIAL_ERROR = 0.9

#: phase list per mode, filled as the cases run.
_RESULTS = {}


def run_online(warm_start: bool):
    web = TrueWeb(3000, 40, seed=11)
    crawler = Crawler(web, seeds=[0, 1500], seed=12)
    return online_distributed_pagerank(
        crawler,
        n_groups=8,
        phases=4,
        pages_per_phase=500,
        churn_per_phase=80,
        warm_start=warm_start,
        seed=13,
    )


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_online.json once both modes have run."""
    yield
    if set(_RESULTS) != {"warm", "cold"}:
        return
    # Phase 0 is cold in both modes; the advantage lives in phases 1+.
    warm_iters = [p["mean_outer_iterations"] for p in _RESULTS["warm"][1:]]
    cold_iters = [p["mean_outer_iterations"] for p in _RESULTS["cold"][1:]]
    advantage = (sum(cold_iters) / len(cold_iters)) / (
        sum(warm_iters) / len(warm_iters)
    )
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "online",
                "workload": "TrueWeb(3000 pages, 40 sites) + Crawler, "
                "4 phases x 500 pages, churn 80 edits/phase, 8 groups",
                "mean_outer_iterations_warm": round(
                    sum(warm_iters) / len(warm_iters), 2
                ),
                "mean_outer_iterations_cold": round(
                    sum(cold_iters) / len(cold_iters), 2
                ),
                "warm_start_advantage": round(advantage, 2),
                "phases_warm": _RESULTS["warm"],
                "phases_cold": _RESULTS["cold"],
            },
            indent=2,
        )
        + "\n"
    )


@pytest.mark.parametrize("mode", ["warm", "cold"])
def test_online_dynamic_ranking(benchmark, save_result, mode):
    warm = mode == "warm"
    phases = benchmark.pedantic(
        run_online, args=(warm,), rounds=1, iterations=1
    )

    rows = [
        (
            ph.phase,
            ph.n_pages,
            str(ph.converged),
            ph.time_to_target,
            round(ph.mean_outer_iterations, 1),
            f"{ph.initial_error:.3f}",
        )
        for ph in phases
    ]
    save_result(
        f"online_{mode}",
        format_table(
            ["phase", "pages", "converged", "time", "mean iters", "init err"],
            rows,
            title=f"§4.3 dynamics — online crawl-and-rank ({mode} start)",
        ),
    )

    # The conjecture: every phase converges despite growth + churn.
    assert all(ph.converged for ph in phases)
    if warm:
        # Warm starts: later phases begin closer to their fixed point
        # than a cold start would (relative error 1.0).
        assert all(
            ph.initial_error < MAX_WARM_INITIAL_ERROR for ph in phases[1:]
        )
    benchmark.extra_info["initial_errors"] = [
        round(ph.initial_error, 3) for ph in phases
    ]

    _RESULTS[mode] = [
        {
            "phase": ph.phase,
            "n_pages": ph.n_pages,
            "converged": bool(ph.converged),
            "time_to_target": ph.time_to_target,
            "mean_outer_iterations": round(ph.mean_outer_iterations, 2),
            "initial_error": round(ph.initial_error, 4),
        }
        for ph in phases
    ]
