"""Bench: out-of-core graph pipeline — build and rank beyond RAM.

The point of the streaming generator + memory-mapped storage is that
neither building a crawl nor ranking it should ever materialize the
dense edge list (two int64 endpoints per link, 16 bytes/link — the
working set of the eager COO path).  Each phase here runs in its own
subprocess and reports ``ru_maxrss``; the bench gates the *delta* over
the subprocess's post-import baseline (numpy/scipy imports alone cost
~100 MB that have nothing to do with the graph):

* **build** — stream-generate straight to an ``.npy`` directory; the
  peak must stay below ``16 × n_internal_links`` bytes (the dense
  internal edge list the eager generator would have allocated);
* **rank** — memory-map the directory and run the flat engine (DPR1,
  site partition, indirect/pastry) for a fixed round budget; the peak
  must stay below ``16 × n_links`` bytes (the crawl's full dense edge
  list — the paper's "7M internal / 15M total" accounting).

A third case checks correctness rather than memory: at 10⁵ pages the
memory-mapped load must produce bit-identical ranks and fingerprints
to the in-memory load.

On teardown the module writes ``BENCH_outofcore.json`` at the repo
root with per-phase wall-clock, baseline/peak RSS, the dense-edge-list
budgets, and the identity-check verdicts.  The 10⁶-page case gates CI;
the 10⁷-page row is opt-in via ``REPRO_BENCH_XL=1`` (minutes of
runtime on one core).
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_outofcore.json"
SRC_DIR = pathlib.Path(__file__).parent.parent / "src"

#: Synchronous tick period (virtual time; arbitrary under sync).
PERIOD = 6.0

# K=8 rankers: the grouped operator carries one indptr entry per page
# per group (K x n), so the K=64 of the paper's largest deployments
# would by itself dwarf the dense edge list at n=1e6.  Eight groups
# keeps the K x n term a small fraction of the budget while still
# exercising every cross-group code path.
SCALES = [
    dict(name="1e6", n_pages=1_000_000, n_sites=10_000, n_groups=8, rounds=2),
    pytest.param(
        dict(name="1e7", n_pages=10_000_000, n_sites=100_000, n_groups=8, rounds=2),
        marks=[
            pytest.mark.slow,
            pytest.mark.skipif(
                os.environ.get("REPRO_BENCH_XL") != "1",
                reason="10M-page row is opt-in: set REPRO_BENCH_XL=1",
            ),
        ],
        id="1e7",
    ),
]

#: case name -> result row (filled as cases run).
_RESULTS = {}

_BUILD_SCRIPT = """\
import json, resource, sys, time
from repro.graph.generators import google_contest_like

cfg = json.loads(sys.argv[1])
baseline_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
t0 = time.perf_counter()
graph = google_contest_like(
    cfg["n_pages"], cfg["n_sites"], seed=cfg["seed"], out=cfg["path"]
)
seconds = time.perf_counter() - t0
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "baseline_kb": baseline_kb,
    "peak_kb": peak_kb,
    "seconds": seconds,
    "n_links": graph.n_links,
    "n_internal_links": graph.n_internal_links,
    "fingerprint": graph.fingerprint(),
}))
"""

_RANK_SCRIPT = """\
import json, resource, sys, time
import numpy as np
from repro.core.coordinator import run_distributed_pagerank
from repro.graph.io import load_webgraph
from repro.graph.partition import make_partition

cfg = json.loads(sys.argv[1])
baseline_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
t0 = time.perf_counter()
graph = load_webgraph(cfg["path"], mmap=True)
partition = make_partition(graph, cfg["n_groups"], "site")
reference = np.full(graph.n_pages, 1.0 / graph.n_pages)
res = run_distributed_pagerank(
    graph,
    n_groups=cfg["n_groups"],
    algorithm="dpr1",
    transport="indirect",
    overlay="pastry",
    t1=cfg["period"],
    t2=cfg["period"],
    seed=17,
    schedule="sync",
    sample_interval=cfg["period"],
    engine="flat",
    partition=partition,
    reference=reference,
    max_time=cfg["rounds"] * cfg["period"] + cfg["period"] / 2.0,
)
seconds = time.perf_counter() - t0
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "baseline_kb": baseline_kb,
    "peak_kb": peak_kb,
    "seconds": seconds,
    "rounds": int(res.max_outer_iterations),
    "ranks_sum": float(res.ranks.sum()),
}))
"""


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_outofcore.json once every case has run."""
    yield
    if not _RESULTS:
        return
    order = ["identity_1e5", "1e6", "1e7"]
    BENCH_JSON.write_text(
        json.dumps(
            {
                "bench": "outofcore",
                "workload": "streamed google_contest_like build -> .npy dir "
                "-> mmap load -> flat dpr1 / site / indirect / pastry",
                "gate": "phase peak RSS delta below the dense edge list "
                "(build: 16 B x internal links; rank: 16 B x total links)",
                "cases": [_RESULTS[n] for n in order if n in _RESULTS]
                + [r for n, r in _RESULTS.items() if n not in order],
            },
            indent=2,
        )
        + "\n"
    )


def _phase(script: str, cfg: dict) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script, json.dumps(cfg)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert proc.returncode == 0, f"phase subprocess failed:\n{proc.stderr}"
    return json.loads(proc.stdout.splitlines()[-1])


@pytest.mark.parametrize("case", SCALES, ids=lambda c: c["name"])
def test_outofcore_build_and_rank(case, tmp_path):
    path = str(tmp_path / f"wg_{case['name']}")

    build = _phase(
        _BUILD_SCRIPT,
        {"n_pages": case["n_pages"], "n_sites": case["n_sites"], "seed": 2003,
         "path": path},
    )
    dense_internal = 16 * build["n_internal_links"]
    dense_total = 16 * build["n_links"]
    build_delta = (build["peak_kb"] - build["baseline_kb"]) * 1024

    rank = _phase(
        _RANK_SCRIPT,
        {"path": path, "n_groups": case["n_groups"], "rounds": case["rounds"],
         "period": PERIOD},
    )
    rank_delta = (rank["peak_kb"] - rank["baseline_kb"]) * 1024

    _RESULTS[case["name"]] = {
        "name": case["name"],
        "n_pages": case["n_pages"],
        "n_sites": case["n_sites"],
        "n_groups": case["n_groups"],
        "n_links": build["n_links"],
        "n_internal_links": build["n_internal_links"],
        "fingerprint": build["fingerprint"],
        "build_seconds": round(build["seconds"], 2),
        "build_baseline_rss_mb": round(build["baseline_kb"] / 1024, 1),
        "build_peak_rss_delta_mb": round(build_delta / 2**20, 1),
        "dense_internal_edge_list_mb": round(dense_internal / 2**20, 1),
        "rank_rounds": rank["rounds"],
        "rank_seconds": round(rank["seconds"], 2),
        "rank_baseline_rss_mb": round(rank["baseline_kb"] / 1024, 1),
        "rank_peak_rss_delta_mb": round(rank_delta / 2**20, 1),
        "dense_total_edge_list_mb": round(dense_total / 2**20, 1),
        "build_under_dense": bool(build_delta < dense_internal),
        "rank_under_dense": bool(rank_delta < dense_total),
    }

    assert rank["rounds"] == case["rounds"]
    assert build_delta < dense_internal, (
        f"build peak {build_delta / 2**20:.0f} MB exceeds the dense "
        f"internal edge list ({dense_internal / 2**20:.0f} MB)"
    )
    assert rank_delta < dense_total, (
        f"rank peak {rank_delta / 2**20:.0f} MB exceeds the dense "
        f"edge list ({dense_total / 2**20:.0f} MB)"
    )


def test_mmap_identity_1e5(tmp_path):
    """mmap-loaded graphs rank bit-identically to in-memory ones."""
    import numpy as np

    from repro.core.coordinator import run_distributed_pagerank
    from repro.graph.generators import google_contest_like
    from repro.graph.io import load_webgraph, save_webgraph
    from repro.graph.partition import make_partition

    n_pages, n_sites, n_groups, rounds = 100_000, 2_000, 16, 3
    eager = google_contest_like(n_pages, n_sites, seed=2003)
    path = tmp_path / "wg_1e5"
    save_webgraph(eager, path)
    mapped = load_webgraph(path, mmap=True)

    assert mapped.fingerprint() == eager.fingerprint()

    reference = np.full(n_pages, 1.0 / n_pages)

    def run(graph):
        partition = make_partition(graph, n_groups, "site")
        return run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            algorithm="dpr1",
            transport="indirect",
            overlay="pastry",
            t1=PERIOD,
            t2=PERIOD,
            seed=17,
            schedule="sync",
            sample_interval=PERIOD,
            engine="flat",
            partition=partition,
            reference=reference,
            max_time=rounds * PERIOD + PERIOD / 2.0,
        )

    res_eager = run(eager)
    res_mapped = run(mapped)
    identical = res_eager.ranks.tobytes() == res_mapped.ranks.tobytes()

    _RESULTS["identity_1e5"] = {
        "name": "identity_1e5",
        "n_pages": n_pages,
        "rounds": rounds,
        "identical_fingerprints": True,
        "bit_identical_ranks": bool(identical),
    }
    assert identical
