"""Ablation bench: overlay routing statistics (h and g of §4.4–4.5).

Measures mean hop counts and neighbor counts for Pastry, Chord and
CAN across network sizes — the paper's h ≈ 2.5/3.5/4.0 Pastry numbers
plus the comparison that justifies choosing a logarithmic overlay.
"""

import pytest

from repro.experiments import run_overlay_hops
from repro.overlay import PastryOverlay, hop_statistics


def test_overlay_scaling(benchmark, save_result):
    result = benchmark.pedantic(
        run_overlay_hops,
        kwargs=dict(
            kinds=("pastry", "tapestry", "chord", "can"),
            ns=(100, 1_000, 10_000),
            samples=300,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("overlay_hops", result.format())

    hops = {(kind, n): mean for kind, n, mean, _, _ in result.rows()}
    # Pastry (log₁₆ N) never loses; CAN's √N growth overtakes Chord's
    # log₂ N once the network is large enough (at N=100 they tie-ish).
    for n in (100, 1_000, 10_000):
        assert hops[("pastry", n)] <= hops[("chord", n)]
        assert hops[("pastry", n)] < hops[("can", n)]
        # Pastry and Tapestry are the same digit-resolving class.
        assert abs(hops[("pastry", n)] - hops[("tapestry", n)]) < 1.0
    for n in (1_000, 10_000):
        assert hops[("chord", n)] < hops[("can", n)]
    # CAN grows ~√N: quadrupling N from 1e3 to 1e4 must grow hops
    # super-logarithmically, unlike Pastry/Chord.
    assert hops[("can", 10_000)] > 2 * hops[("can", 1_000)]

    benchmark.extra_info["pastry_hops"] = {
        n: hops[("pastry", n)] for n in (100, 1_000, 10_000)
    }


def test_pastry_paper_hop_numbers(benchmark):
    """The specific h values the paper quotes from [6]."""

    def measure():
        return {
            n: hop_statistics(PastryOverlay(n, seed=1), 300, seed=0).mean
            for n in (1_000, 10_000)
        }

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert measured[1_000] == pytest.approx(2.5, abs=0.5)
    assert measured[10_000] == pytest.approx(3.5, abs=0.5)
    benchmark.extra_info.update({f"h_{k}": v for k, v in measured.items()})
