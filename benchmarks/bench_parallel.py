"""Bench: parallel experiment harness + artifact cache, wall-clock.

Runs the full reproduction suite at a 1000-page scale three ways —
serial (``jobs=1``), across a 4-worker process pool with a cold
artifact cache, and again over the now-warm cache — asserting the
formatted report sections are byte-identical in all three, then
records the wall-clock story in ``BENCH_parallel.json``.

Two speedup numbers are reported, deliberately:

* ``measured_speedup`` — serial wall over 4-worker cold wall, exactly
  as observed.  On a single-core runner this hovers near 1.0 (there is
  nothing to parallelize onto), so it only gates CI when the host has
  at least :data:`GATE_MIN_CPUS` cores.
* ``schedule_speedup`` — the suite's task seconds scheduled onto 4
  workers by LPT (longest-processing-time first), from the *measured*
  per-task durations of the serial run.  This is the parallelism the
  task decomposition itself exposes — bounded by the largest single
  task and by Amdahl on the task bag — and is host-independent, so it
  always gates.

The warm-cache gate always applies: a rerun against the populated
cache must be at least ``GATE_MIN_WARM_SPEEDUP``× faster than the cold
run, because every sweep point, the graph, and the reference vectors
come back from content-addressed storage instead of being recomputed.
"""

import json
import os
import pathlib
import time

from repro.experiments.report import run_all
from repro.experiments.workloads import ExperimentScale
from repro.parallel.cache import ArtifactCache

import pytest

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_parallel.json"

JOBS = 4

#: CI gate: minimum LPT-schedule speedup of the task decomposition.
GATE_MIN_SCHEDULE_SPEEDUP = 2.5

#: CI gate: minimum warm-over-cold cache speedup.
GATE_MIN_WARM_SPEEDUP = 3.0

#: The measured multi-core gate only applies on hosts with this many
#: cores (a 1-core runner cannot show a wall-clock win).
GATE_MIN_CPUS = 4
GATE_MIN_MEASURED_SPEEDUP = 2.5

SCALE = ExperimentScale(n_pages=1_000, n_sites=100, seed=2003)

_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_parallel.json once the bench has run."""
    yield
    if not _RESULTS:
        return
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2) + "\n")


def _lpt_makespan(durations, workers):
    """Makespan of an LPT schedule of ``durations`` onto ``workers``."""
    loads = [0.0] * workers
    for d in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += d
    return max(loads)


def test_parallel_harness_speedups(tmp_path):
    serial_t0 = time.perf_counter()
    serial = run_all(scale=SCALE, jobs=1)
    serial_wall = time.perf_counter() - serial_t0

    cold_cache = ArtifactCache(tmp_path / "cache")
    cold_t0 = time.perf_counter()
    cold = run_all(scale=SCALE, jobs=JOBS, cache=cold_cache)
    cold_wall = time.perf_counter() - cold_t0

    warm_cache = ArtifactCache(tmp_path / "cache")
    warm_t0 = time.perf_counter()
    warm = run_all(scale=SCALE, jobs=JOBS, cache=warm_cache)
    warm_wall = time.perf_counter() - warm_t0

    # Bit-identity across execution modes is the harness's contract;
    # the speedups are meaningless without it.
    assert cold.sections == serial.sections
    assert warm.sections == serial.sections
    assert warm_cache.misses == 0 and warm_cache.hits > 0

    task_seconds = [d for ds in serial.task_durations.values() for d in ds]
    total = sum(task_seconds)
    makespan = _lpt_makespan(task_seconds, JOBS)
    schedule_speedup = total / max(makespan, 1e-9)
    measured_speedup = serial_wall / max(cold_wall, 1e-9)
    warm_speedup = cold_wall / max(warm_wall, 1e-9)
    host_cpus = os.cpu_count() or 1

    _RESULTS.update(
        {
            "bench": "parallel",
            "scale": {
                "n_pages": SCALE.n_pages,
                "n_sites": SCALE.n_sites,
                "seed": SCALE.seed,
            },
            "jobs": JOBS,
            "host_cpus": host_cpus,
            "serial_wall_s": round(serial_wall, 3),
            "parallel_cold_wall_s": round(cold_wall, 3),
            "parallel_warm_wall_s": round(warm_wall, 3),
            "measured_speedup": round(measured_speedup, 2),
            "measured_gate_applies": host_cpus >= GATE_MIN_CPUS,
            "warm_cache_speedup": round(warm_speedup, 2),
            "schedule_speedup": round(schedule_speedup, 2),
            "n_tasks": len(task_seconds),
            "task_seconds_total": round(total, 3),
            "largest_task_s": round(max(task_seconds), 3),
            "sections_identical": True,
            # Parent-process counters only: graph + reference lookups.
            # Sweep-point hits/stores happen inside pool workers, whose
            # ArtifactCache instances are separate.
            "cache_counters_note": "parent process only",
            "cold_cache": {
                "hits": cold_cache.hits,
                "misses": cold_cache.misses,
                "stores": cold_cache.stores,
            },
            "warm_cache": {
                "hits": warm_cache.hits,
                "misses": warm_cache.misses,
                "stores": warm_cache.stores,
            },
            "gates": {
                "schedule_speedup_min": GATE_MIN_SCHEDULE_SPEEDUP,
                "warm_speedup_min": GATE_MIN_WARM_SPEEDUP,
                "measured_speedup_min": GATE_MIN_MEASURED_SPEEDUP,
                "measured_gate_min_cpus": GATE_MIN_CPUS,
            },
        }
    )

    assert schedule_speedup >= GATE_MIN_SCHEDULE_SPEEDUP, (
        f"task decomposition exposes only {schedule_speedup:.2f}x parallelism "
        f"at {JOBS} workers (gate {GATE_MIN_SCHEDULE_SPEEDUP}x)"
    )
    assert warm_speedup >= GATE_MIN_WARM_SPEEDUP, (
        f"warm-cache rerun only {warm_speedup:.2f}x faster than cold "
        f"(gate {GATE_MIN_WARM_SPEEDUP}x)"
    )
    if host_cpus >= GATE_MIN_CPUS:
        assert measured_speedup >= GATE_MIN_MEASURED_SPEEDUP, (
            f"measured {JOBS}-worker speedup {measured_speedup:.2f}x fell below "
            f"the {GATE_MIN_MEASURED_SPEEDUP}x gate on a {host_cpus}-core host"
        )
