"""Ablation bench: partitioning strategies (§4.1).

Verifies the paper's argument for hash-by-site placement: with ~90%
of links intra-site, site-granularity partitioning cuts an order of
magnitude fewer links than random or URL-hash placement, and the
saving shows up one-for-one in real bytes on the simulated network.
"""

import pytest

from repro.experiments import default_graph, run_partitioning_ablation


@pytest.fixture(scope="module")
def graph(scale):
    return default_graph(scale)


def test_partitioning(benchmark, graph, save_result):
    result = benchmark.pedantic(
        run_partitioning_ablation,
        kwargs=dict(graph=graph, n_groups=16, measure_traffic=True, max_time=400.0),
        rounds=1,
        iterations=1,
    )
    save_result("partitioning", result.format())

    site = result.cut_stats["site"]["n_cut_links"]
    rand = result.cut_stats["random"]["n_cut_links"]
    url = result.cut_stats["url"]["n_cut_links"]
    assert site < 0.3 * rand
    assert site < 0.3 * url
    assert result.run_bytes["site"] < result.run_bytes["random"]

    benchmark.extra_info["cut_links"] = {
        "site": site, "random": rand, "url": url
    }
