"""Load-generator bench: the serving tier under a mutating crawl at 1e5 pages.

A :class:`RankServer` is brought up on a 100k-page crawl snapshot and
then driven through growth + churn phases: each phase the TrueWeb
churns, the crawler advances, the :class:`CrawlFeed` diffs the delta
into a mutation batch, and the server re-ranks incrementally (sparse
column swaps on the dirty stripes + a warm-started active-set solve +
one ε certification sweep) while a seeded mixed query workload
(top-k / rank-of / percentile) runs against the index.

On teardown the module writes ``BENCH_serve.json`` at the repo root
with the three CI-gated claims:

* incremental re-rank ≥ ``MIN_INCREMENTAL_SPEEDUP``× faster than a
  cold full re-solve of the same final snapshot;
* indexed top-k ≥ ``MIN_QUERY_SPEEDUP``× faster than the full-vector
  scan it replaces;
* certified staleness within the configured ε budget every phase
  (and the *measured* drift vs a fresh centralized solve below the
  certificate — the bound is honest).
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.pagerank import pagerank_open
from repro.crawl import Crawler, TrueWeb
from repro.experiments.serve import _percentile_us, run_query_mix
from repro.linalg.norms import relative_l1_error
from repro.serve import CrawlFeed, IncrementalRanker, RankServer

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_serve.json"

#: CI gates (asserted below and re-checked by the serve-smoke job).
MIN_INCREMENTAL_SPEEDUP = 3.0
MIN_QUERY_SPEEDUP = 10.0
EPSILON = 1e-3

WEB_PAGES = 120_000
CRAWL_PAGES = 100_000
N_GROUPS = 16
PHASES = 4
CHURN_PER_PHASE = 60
CRAWL_BUDGET = 150
QUERIES_PER_PHASE = 400
TOPK_SAMPLES = 200

_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_serve.json once the load run has finished."""
    yield
    if "summary" not in _RESULTS:
        return
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2) + "\n")


def run_load():
    """The full load scenario; returns (phase rows, summary)."""
    web = TrueWeb(WEB_PAGES, 800, seed=7)
    crawler = Crawler(web, seeds=[0, WEB_PAGES // 3, 2 * WEB_PAGES // 3], seed=8)
    crawler.crawl_until(CRAWL_PAGES)
    feed = CrawlFeed(crawler)
    server = RankServer(
        feed.initial_graph(), n_groups=N_GROUPS, epsilon=EPSILON
    )
    rng = np.random.default_rng(9)

    rows = []
    for phase in range(PHASES):
        web.churn(CHURN_PER_PHASE, seed=100 + phase)
        crawler.step(CRAWL_BUDGET)
        batch = feed.sync()
        t0 = time.perf_counter()
        stats = server.ranker.update(batch)
        rerank_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        if stats.changed_pages.size:
            server.index.update(stats.changed_pages, stats.changed_values)
        reindex_s = time.perf_counter() - t0

        reference = pagerank_open(
            server.ranker.current_graph(), tol=1e-12
        ).ranks
        measured = relative_l1_error(server.ranker.ranks, reference)

        indexed, scans = run_query_mix(server, QUERIES_PER_PHASE, rng)
        rows.append(
            {
                "phase": phase,
                "n_pages": server.n_pages,
                "batch_mutations": len(batch),
                "dirty_groups": stats.dirty_groups,
                "mode": stats.mode,
                "inner_sweeps": stats.inner_sweeps,
                "rerank_ms": round(rerank_s * 1e3, 2),
                "reindex_ms": round(reindex_s * 1e3, 2),
                "staleness_certified": server.staleness(),
                "staleness_measured": measured,
                "qps": round(len(indexed) / max(sum(indexed), 1e-12), 1),
                "query_p50_us": round(_percentile_us(indexed, 50.0), 1),
                "query_p99_us": round(_percentile_us(indexed, 99.0), 1),
                "scan_mean_us": round(float(np.mean(scans)) * 1e6, 1),
            }
        )

    # Cold baseline: a from-scratch certified solve of the final graph
    # with the same kernels, group count and ε budget.
    final = server.ranker.current_graph()
    t0 = time.perf_counter()
    IncrementalRanker(final, n_groups=N_GROUPS, epsilon=EPSILON)
    cold_s = time.perf_counter() - t0

    # The query gate compares like for like: indexed top-k vs the
    # O(n log n) full-vector scan answering the same query.
    topk_lat, scan_lat = [], []
    for i in range(TOPK_SAMPLES):
        t0 = time.perf_counter()
        server.top_k(10)
        topk_lat.append(time.perf_counter() - t0)
        if i % 16 == 0:
            t0 = time.perf_counter()
            server.scan_top_k(10)
            scan_lat.append(time.perf_counter() - t0)

    incr_ms = [r["rerank_ms"] for r in rows]
    summary = {
        "n_pages": server.n_pages,
        "epsilon": EPSILON,
        "cold_resolve_ms": round(cold_s * 1e3, 1),
        "incremental_mean_ms": round(float(np.mean(incr_ms)), 1),
        "incremental_speedup": round(cold_s * 1e3 / float(np.mean(incr_ms)), 2),
        "topk_indexed_us": round(float(np.mean(topk_lat)) * 1e6, 1),
        "topk_scan_us": round(float(np.mean(scan_lat)) * 1e6, 1),
        "query_speedup": round(
            float(np.mean(scan_lat)) / float(np.mean(topk_lat)), 1
        ),
        "max_staleness_certified": max(
            r["staleness_certified"] for r in rows
        ),
        "max_staleness_measured": max(r["staleness_measured"] for r in rows),
    }
    return rows, summary


def test_serve_under_load(benchmark, save_result):
    rows, summary = benchmark.pedantic(run_load, rounds=1, iterations=1)

    save_result(
        "serve",
        format_table(
            [
                "phase",
                "pages",
                "batch",
                "dirty",
                "mode",
                "rerank ms",
                "qps",
                "p50 µs",
                "p99 µs",
                "certified",
                "measured",
            ],
            [
                (
                    r["phase"],
                    r["n_pages"],
                    r["batch_mutations"],
                    f"{r['dirty_groups']}/{N_GROUPS}",
                    r["mode"],
                    r["rerank_ms"],
                    r["qps"],
                    r["query_p50_us"],
                    r["query_p99_us"],
                    f"{r['staleness_certified']:.2e}",
                    f"{r['staleness_measured']:.2e}",
                )
                for r in rows
            ],
            title=(
                f"serving tier at {summary['n_pages']} pages "
                f"(K={N_GROUPS}, ε={EPSILON:g}) — cold "
                f"{summary['cold_resolve_ms']}ms, incremental "
                f"{summary['incremental_mean_ms']}ms "
                f"({summary['incremental_speedup']}x), indexed top-k "
                f"{summary['query_speedup']}x over scan"
            ),
        ),
    )
    benchmark.extra_info.update(summary)

    # -- the three CI gates -------------------------------------------
    assert summary["incremental_speedup"] >= MIN_INCREMENTAL_SPEEDUP
    assert summary["query_speedup"] >= MIN_QUERY_SPEEDUP
    for r in rows:
        assert r["staleness_certified"] <= EPSILON
        # The certificate is honest: it dominates the measured drift.
        assert r["staleness_measured"] <= r["staleness_certified"] + 1e-12

    _RESULTS.update(
        {
            "bench": "serve",
            "workload": (
                f"TrueWeb({WEB_PAGES} pages, 800 sites), crawl of "
                f"{CRAWL_PAGES}, {PHASES} phases x (churn "
                f"{CHURN_PER_PHASE} + crawl {CRAWL_BUDGET}), "
                f"{QUERIES_PER_PHASE} queries/phase, {N_GROUPS} groups"
            ),
            "gates": {
                "min_incremental_speedup": MIN_INCREMENTAL_SPEEDUP,
                "min_query_speedup": MIN_QUERY_SPEEDUP,
                "epsilon": EPSILON,
            },
            "phases": rows,
            "summary": summary,
        }
    )
