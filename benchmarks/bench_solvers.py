"""Ablation bench: inner-solver choices for GroupPageRank.

DESIGN.md calls out the inner solver as a design choice: the paper's
Algorithm 2 is plain Jacobi; Gauss-Seidel reaches the same fixed point
in fewer sweeps (Stein-Rosenberg), and Aitken extrapolation (the
Kamvar et al. technique the paper cites as [8]) targets slow-damping
regimes.  This bench times all three on the same system and verifies
the sweep-count ordering.
"""

import numpy as np
import pytest

from repro.experiments import default_graph
from repro.linalg import (
    gauss_seidel_solve,
    jacobi_solve,
    jacobi_solve_accelerated,
    propagation_matrix,
)


@pytest.fixture(scope="module")
def system(scale):
    graph = default_graph(scale)
    p = propagation_matrix(graph, 0.85)
    f = 0.15 * np.ones(graph.n_pages)
    return p, f


def test_jacobi_solver(benchmark, system, save_result):
    p, f = system
    res = benchmark(jacobi_solve, p, f, tol=1e-12)
    assert res.converged
    benchmark.extra_info["sweeps"] = res.iterations


def test_gauss_seidel_solver(benchmark, system):
    p, f = system
    res = benchmark(gauss_seidel_solve, p, f, tol=1e-12)
    assert res.converged
    benchmark.extra_info["sweeps"] = res.iterations
    # The ablation claim: fewer sweeps than Jacobi on the same system.
    jac = jacobi_solve(p, f, tol=1e-12)
    assert res.iterations < jac.iterations
    np.testing.assert_allclose(res.x, jac.x, atol=1e-9)


def test_accelerated_jacobi_solver(benchmark, system):
    p, f = system
    res = benchmark(jacobi_solve_accelerated, p, f, tol=1e-12)
    assert res.converged
    benchmark.extra_info["sweeps"] = res.iterations
    jac = jacobi_solve(p, f, tol=1e-12)
    np.testing.assert_allclose(res.x, jac.x, atol=1e-9)
