"""Bench: regenerate Table 1 (iteration interval & node bandwidth).

Paper values: T = 7500 / 10500 / 12000 s and B = 100 / 10 / 1 KB/s at
N = 10³ / 10⁴ / 10⁵.  The bench derives the same rows twice — once
from the paper's quoted Pastry hop counts (expected to match to the
digit) and once from hop counts measured on this repo's Pastry.
"""

import pytest

from repro.experiments import run_table1

PAPER_T = {1_000: 7_500.0, 10_000: 10_500.0, 100_000: 12_000.0}
PAPER_B = {1_000: 100_000.0, 10_000: 10_000.0, 100_000: 1_000.0}


def test_table1(benchmark, save_result):
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(ns=(1_000, 10_000, 100_000), hop_samples=300),
        rounds=1,
        iterations=1,
    )
    save_result("table1", result.format())

    # With paper hops the published numbers come out exactly.
    for row in result.paper_rows:
        n = int(row["n_rankers"])
        assert row["min_iteration_interval_s"] == pytest.approx(PAPER_T[n])
        assert row["min_node_bandwidth_Bps"] == pytest.approx(PAPER_B[n])

    # With measured hops the derivation lands within 25% of published.
    for row in result.measured_rows:
        n = int(row["n_rankers"])
        assert row["min_iteration_interval_s"] == pytest.approx(PAPER_T[n], rel=0.25)

    for n, h in result.measured_hops.items():
        benchmark.extra_info[f"hops_{n}"] = h
