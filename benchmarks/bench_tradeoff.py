"""Bench: §4.5's convergence-time-vs-bandwidth trade-off, measured.

The paper derives the trade-off analytically (Table 1 caps the
iteration cadence to fit the bisection budget); this bench measures
both sides of it in simulation: slower cadence ⇒ proportionally
longer convergence but proportionally lower bandwidth *rate*, with
total traffic roughly constant.
"""

import pytest

from repro.experiments import default_graph, run_time_vs_bandwidth


@pytest.fixture(scope="module")
def graph(scale):
    return default_graph(scale)


def test_time_vs_bandwidth(benchmark, graph, save_result):
    result = benchmark.pedantic(
        run_time_vs_bandwidth,
        kwargs=dict(graph=graph, n_groups=16, wait_means=(1.0, 3.0, 9.0)),
        rounds=1,
        iterations=1,
    )
    save_result("tradeoff", result.format())

    times = result.times_to_target
    rates = result.bytes_per_time_unit
    # Longer iteration interval -> longer convergence, lower rate.
    assert times[0] < times[1] < times[2]
    assert rates[0] > rates[1] > rates[2]
    # Total bytes stays within a small factor across a 9x cadence range
    # (the work to converge is cadence-independent).
    totals = result.bytes_total
    assert max(totals) < 4 * min(totals)

    benchmark.extra_info["times"] = times
    benchmark.extra_info["rates"] = [round(r) for r in rates]
