"""Ablation bench: direct vs indirect transmission (§4.4).

Verifies both halves of the paper's trade-off, end to end:
* direct transmission sends asymptotically more messages
  (lookup + send per destination ⇒ O((h+1)N²));
* indirect transmission consumes more bytes (every record relayed
  over ~h overlay hops ⇒ O(h·l·W)).
"""

import pytest

from repro.experiments import default_graph, run_transport_comparison


@pytest.fixture(scope="module")
def graph(scale):
    return default_graph(scale)


def test_transport(benchmark, graph, save_result):
    result = benchmark.pedantic(
        run_transport_comparison,
        kwargs=dict(graph=graph, n_groups=48, max_time=400.0),
        rounds=1,
        iterations=1,
    )
    save_result("transport", result.format())

    ind = result.runs["indirect"]
    dire = result.runs["direct"]
    assert ind.converged and dire.converged
    assert dire.traffic.total_messages > ind.traffic.total_messages
    assert ind.traffic.data_bytes > dire.traffic.data_bytes
    # Formula sanity: measured indirect msgs/iter within the gN bound's
    # order of magnitude.
    pred = result.predicted_messages_per_iteration()
    iters = max(int(ind.trace.max_outer_iterations[-1]), 1)
    measured = ind.traffic.total_messages / iters
    assert measured < 5 * pred["indirect"]

    benchmark.extra_info["indirect_msgs"] = ind.traffic.total_messages
    benchmark.extra_info["direct_msgs"] = dire.traffic.total_messages
    benchmark.extra_info["indirect_bytes"] = ind.traffic.total_bytes
    benchmark.extra_info["direct_bytes"] = dire.traffic.total_bytes
