"""Shared benchmark configuration.

Benches regenerate the paper's tables/figures.  Each writes its
formatted output to ``benchmarks/results/<name>.txt`` (so the
reproduction tables survive pytest's stdout capture) and records key
numbers in ``benchmark.extra_info``.

Scale: set ``REPRO_BENCH_SCALE`` (default 1.0) to grow/shrink the
workloads; all shape assertions are scale-free.
"""

import os
import pathlib

import pytest

from repro.experiments import ExperimentScale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    base = ExperimentScale(n_pages=3000, n_sites=100, seed=2003)
    return base.scaled(bench_scale())


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
