#!/usr/bin/env python
"""Scenario: capacity-planning a planetary-scale deployment (§4.5).

The paper's Table 1 asks: to rank Google's 3-billion-page index over
N page rankers, how often can the system iterate, and what node
bandwidth does it take?  This example reproduces that analysis with
hop counts *measured* from the repository's own Pastry implementation,
then extends it: how long until convergence end to end, and where is
the direct-vs-indirect crossover for your deployment?

Run:  python examples/capacity_planning.py [web_pages] [n_rankers]
"""

import sys

from repro.analysis import CostModel, format_table
from repro.analysis.cost_model import bandwidth_crossover_n, message_crossover_n
from repro.linalg.norms import contraction_iterations_needed
from repro.overlay import PastryOverlay, hop_statistics, neighbor_statistics


def main() -> None:
    web_pages = float(sys.argv[1]) if len(sys.argv) > 1 else 3e9
    ns = (
        [int(sys.argv[2])]
        if len(sys.argv) > 2
        else [1_000, 10_000, 100_000]
    )

    model = CostModel(web_pages=web_pages)
    rows = []
    g_mean = 32.0
    for n in ns:
        overlay = PastryOverlay(n, seed=0)
        h = hop_statistics(overlay, 300, seed=0).mean
        if n <= 10_000:
            g_mean = neighbor_statistics(overlay, max_nodes=400)["mean"]
        model.mean_neighbors = g_mean
        row = model.row(n, h)
        rows.append(
            (
                n,
                round(h, 2),
                f"{row['min_iteration_interval_s'] / 3600:.2f} h",
                f"{row['min_node_bandwidth_Bps'] / 1e3:.1f} KB/s",
                f"{row['indirect_messages']:,.0f}",
                f"{row['direct_messages']:,.0f}",
            )
        )
    print(
        format_table(
            [
                "# rankers",
                "hops",
                "min iter interval",
                "node bandwidth",
                "msgs/iter indirect",
                "msgs/iter direct",
            ],
            rows,
            title=f"capacity plan for W = {web_pages:.2g} pages",
        )
    )

    # End-to-end: PageRank is a contraction with factor alpha; how many
    # iterations until the ranking is 0.01% accurate, and how long is
    # that in wall time at the bandwidth-limited cadence?
    alpha = 0.85
    iters = contraction_iterations_needed(alpha, 1.0, 1e-4)
    slowest = max(float(r[2].split()[0]) for r in rows)
    print(
        f"\nwith alpha={alpha}: ~{iters} iterations to 0.01% accuracy; "
        f"at the bandwidth-limited cadence that is ~{iters * slowest:.0f} h "
        f"({iters * slowest / 24:.1f} days) end to end."
    )

    n_msg = message_crossover_n(h=2.5, g=g_mean)
    n_bw = bandwidth_crossover_n(web_pages, h=2.5)
    print(
        f"\ntransport crossovers: direct transmission sends fewer messages "
        f"only below N ≈ {n_msg:.0f}; it consumes less bandwidth only below "
        f"N ≈ {n_bw:,.0f}."
    )


if __name__ == "__main__":
    main()
