#!/usr/bin/env python
"""Scenario: ranking under hostile network conditions (§4.2, §5).

The paper's algorithms are designed so that rankers "can start at
different time, execute at different 'speed', sleep for some time,
suspend … or even shutdown", and Y vectors may silently vanish.  This
example runs the same workload through increasingly hostile
conditions and reports how convergence time degrades — gracefully,
never fatally — reproducing the A/B/C ordering of the paper's Figs 6–7.

Run:  python examples/failure_resilience.py
"""

from repro import google_contest_like, pagerank_open
from repro.analysis import format_table
from repro.core import DistributedConfig, DistributedRun
from repro.net.failures import NodePauseInjector


def scenario(graph, reference, *, label, delivery_prob, t2, n_faults):
    config = DistributedConfig(
        n_groups=16,
        algorithm="dpr1",
        partition_strategy="site",
        delivery_prob=delivery_prob,
        t1=0.0,
        t2=t2,
        seed=21,
    )
    run = DistributedRun(graph, config, reference=reference)
    if n_faults:
        run.install_pause_injector(
            NodePauseInjector(
                n_faults=n_faults, horizon=40.0, mean_outage=15.0, seed=4
            )
        )
    result = run.run(max_time=2000.0, target_relative_error=1e-4)
    return (
        label,
        delivery_prob,
        t2,
        n_faults,
        result.time_to_target if result.converged else float("nan"),
        result.dropped_updates,
        f"{result.final_relative_error:.1e}",
    )


def main() -> None:
    graph = google_contest_like(4_000, 60, seed=9)
    reference = pagerank_open(graph, tol=1e-12).ranks

    rows = [
        scenario(graph, reference, label="calm (paper A)", delivery_prob=1.0,
                 t2=6.0, n_faults=0),
        scenario(graph, reference, label="lossy (paper B)", delivery_prob=0.7,
                 t2=6.0, n_faults=0),
        scenario(graph, reference, label="lossy+slow (paper C)",
                 delivery_prob=0.7, t2=15.0, n_faults=0),
        scenario(graph, reference, label="brutal", delivery_prob=0.5,
                 t2=15.0, n_faults=6),
    ]
    print(
        format_table(
            [
                "scenario",
                "p",
                "T2",
                "paused nodes",
                "time to 0.01% err",
                "updates lost",
                "final err",
            ],
            rows,
            title="convergence under failure (DPR1, K=16)",
        )
    )
    print(
        "\nConvergence time degrades smoothly with loss and slowness, "
        "but every scenario converges — the asynchronous-tolerance "
        "claim of the paper's §4.2."
    )


if __name__ == "__main__":
    main()
