#!/usr/bin/env python
"""Scenario: ranking a web that is still being crawled (§4.3 dynamics).

A real deployment never ranks a finished crawl: the crawlers keep
discovering pages and the web keeps editing itself.  This example runs
the full loop — crawl a batch, refresh stale pages, re-rank with every
ranker warm-started from its previous scores — against a mutating
hidden web, and shows (a) each phase converges (the paper's §4.3
conjecture for dynamic graphs) and (b) warm starts make re-ranking far
cheaper than ranking from scratch.

Run:  python examples/online_crawl_ranking.py
"""

from repro.analysis import format_table, sparkline
from repro.crawl import Crawler, TrueWeb, online_distributed_pagerank


def main() -> None:
    # The hidden web: 6 000 pages, 60 sites, closed (no external links
    # exist in *W*; the open-system boundary will be the crawl frontier).
    web = TrueWeb(6_000, 60, seed=17)
    crawler = Crawler(web, seeds=[0, 2_000, 4_000], revisit_fraction=0.2, seed=3)

    phases = online_distributed_pagerank(
        crawler,
        n_groups=12,
        phases=5,
        pages_per_phase=800,
        churn_per_phase=120,   # the web edits 120 links between phases
        target_relative_error=1e-4,
        seed=23,
    )

    rows = []
    for ph in phases:
        rows.append(
            (
                ph.phase,
                ph.n_pages,
                str(ph.converged),
                ph.time_to_target,
                round(ph.mean_outer_iterations, 1),
                f"{ph.initial_error:.1%}",
            )
        )
    print(
        format_table(
            [
                "phase",
                "pages ranked",
                "converged",
                "time to 0.01%",
                "mean iterations",
                "warm-start error",
            ],
            rows,
            title="online crawl-and-rank (12 rankers, 120 link edits/phase)",
        )
    )
    print(
        "\ncrawl growth: "
        + sparkline([ph.n_pages for ph in phases])
        + f"  ({phases[0].n_pages} → {phases[-1].n_pages} pages)"
    )
    print(
        "\nEvery phase re-converges despite growth and churn; the "
        "warm-start error column shows why incremental re-ranking is "
        "cheap — each phase starts most of the way to the new fixed "
        "point instead of at zero."
    )


if __name__ == "__main__":
    main()
