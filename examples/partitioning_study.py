#!/usr/bin/env python
"""Scenario: choosing a page-partitioning strategy (§4.1).

The paper argues that dividing pages by *site* hash dominates random
or per-URL placement because ~90% of links stay within a site.  This
example measures all three on the same crawl: the cut size (links
whose score must cross the network every iteration), the resulting
real traffic to convergence, and the load balance price site-level
placement pays.

Run:  python examples/partitioning_study.py
"""

from repro import google_contest_like, pagerank_open
from repro.analysis import format_table
from repro.core import run_distributed_pagerank
from repro.graph import make_partition, partition_cut_statistics


def main() -> None:
    graph = google_contest_like(6_000, 80, seed=13)
    reference = pagerank_open(graph, tol=1e-12).ranks
    n_groups = 16

    rows = []
    for strategy in ("random", "url", "site"):
        part = make_partition(graph, n_groups, strategy, seed=5)
        cut = partition_cut_statistics(graph, part)
        result = run_distributed_pagerank(
            graph,
            partition=part,
            n_groups=n_groups,
            partition_strategy=strategy,
            algorithm="dpr1",
            t1=2.0,
            t2=2.0,
            seed=5,
            reference=reference,
            target_relative_error=1e-4,
            max_time=600.0,
        )
        rows.append(
            (
                strategy,
                cut.n_cut_links,
                f"{cut.cut_fraction:.1%}",
                f"{part.imbalance():.2f}x",
                result.traffic.total_messages,
                f"{result.traffic.total_bytes / 1e6:.1f} MB",
            )
        )

    print(
        format_table(
            [
                "strategy",
                "cut links",
                "cut fraction",
                "imbalance",
                "messages",
                "bytes to converge",
            ],
            rows,
            title=f"partitioning strategies on {graph.n_pages:,} pages, K={n_groups}",
        )
    )
    print(
        "\nSite-hash placement cuts an order of magnitude fewer links "
        "(→ less traffic per iteration); the price is coarser load "
        "balance, since whole sites move as units — exactly the §4.1 "
        "trade-off."
    )


if __name__ == "__main__":
    main()
