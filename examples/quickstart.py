#!/usr/bin/env python
"""Quickstart: distributed PageRank in five steps.

Builds a synthetic web crawl, computes the centralized reference,
runs the paper's DPR1 algorithm over a simulated Pastry network with
indirect transmission, and verifies both agree.

Run:  python examples/quickstart.py
"""

from repro import google_contest_like, pagerank_open, run_distributed_pagerank
from repro.analysis import compare_rankings, format_table
from repro.graph import summarize


def main() -> None:
    # 1. A crawl: 5 000 pages across 60 sites, statistics matched to
    #    the paper's dataset (15 links/page, 90% intra-site, 8/15 of
    #    links pointing outside the crawl).
    graph = google_contest_like(5_000, 60, seed=1)
    print(summarize(graph))
    print()

    # 2. Centralized PageRank (the paper's open-system CPR baseline).
    centralized = pagerank_open(graph, alpha=0.85)
    print(
        f"centralized: {centralized.iterations} iterations, "
        f"mean rank {centralized.mean_rank:.4f}"
    )

    # 3. Distributed PageRank: 16 page rankers partitioned by site
    #    hash, asynchronous wake-ups, Pastry + indirect transmission.
    result = run_distributed_pagerank(
        graph,
        n_groups=16,
        algorithm="dpr1",
        partition_strategy="site",
        overlay="pastry",
        transport="indirect",
        t1=0.0,
        t2=6.0,
        seed=7,
        target_relative_error=1e-5,
        max_time=500.0,
    )
    print(
        f"distributed: converged={result.converged} at sim time "
        f"{result.time_to_target}, relative error "
        f"{result.final_relative_error:.2e}"
    )

    # 4. Agreement between the two rankings.
    cmp = compare_rankings(result.ranks, centralized.ranks)
    print(
        format_table(
            ["metric", "value"],
            [(k, v) for k, v in cmp.as_dict().items()],
            title="\ndistributed vs centralized",
        )
    )

    # 5. What it cost on the (simulated) network.
    print(
        f"\ntraffic: {result.traffic.total_messages:,} messages, "
        f"{result.traffic.total_bytes / 1e6:.1f} MB "
        f"({result.dropped_updates} updates dropped)"
    )


if __name__ == "__main__":
    main()
