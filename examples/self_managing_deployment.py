#!/usr/bin/env python
"""Scenario: a self-managing ranking deployment (no operator in the loop).

The paper's algorithms run "while true" and its experiments rely on an
omniscient observer to read global state.  A real P2P deployment has
neither an operator nor an observer; this example shows the two
mechanisms this library adds to close that gap:

1. **Quiescence termination** — rankers stop when every node's local
   step change has been tiny for several samples (Theorem 3.3 makes
   that a certificate of convergence), with no reference solution.
2. **Push-sum gossip** — after stopping, the rankers compute the
   global average rank and total rank mass among themselves, with
   only neighbor messages, and the result matches the true values.

Run:  python examples/self_managing_deployment.py
"""

import numpy as np

from repro import google_contest_like, pagerank_open
from repro.analysis import format_table
from repro.core import run_distributed_pagerank
from repro.graph import make_partition
from repro.net import PushSumProtocol
from repro.net.simulator import Simulator
from repro.overlay import PastryOverlay


def main() -> None:
    graph = google_contest_like(5_000, 60, seed=29)
    n_groups = 20

    # Phase 1: rank with self-termination. Note: no reference passed,
    # no target error — the system decides on its own when it is done.
    result = run_distributed_pagerank(
        graph,
        n_groups=n_groups,
        algorithm="dpr1",
        partition_strategy="site",
        t1=0.0,
        t2=6.0,
        seed=31,
        quiescence_delta=1e-9,
        max_time=2000.0,
    )
    print(
        f"self-terminated: {result.quiescent} at sim time "
        f"{result.quiescence_time}"
    )
    truth = pagerank_open(graph, tol=1e-13).ranks
    err = np.abs(result.ranks - truth).sum() / np.abs(truth).sum()
    print(f"actual relative error at self-detected convergence: {err:.2e}\n")

    # Phase 2: the rankers compute global statistics by gossip.
    part = make_partition(graph, n_groups, "site")
    rank_sums = np.array(
        [result.ranks[part.pages_of_group(g)].sum() for g in range(n_groups)]
    )
    page_counts = np.array(
        [float(part.pages_of_group(g).size) for g in range(n_groups)]
    )
    sim = Simulator()
    overlay = PastryOverlay(n_groups, seed=3)
    gossip_sum = PushSumProtocol(sim, overlay, rank_sums, seed=5)
    gossip_cnt = PushSumProtocol(sim, overlay, page_counts, seed=7)
    t1 = gossip_sum.run_until_accurate(1e-9, max_time=500.0)
    t2 = gossip_cnt.run_until_accurate(1e-9, max_time=500.0)

    est_total = gossip_sum.estimates()[0] * n_groups
    est_pages = gossip_cnt.estimates()[0] * n_groups
    est_mean = est_total / est_pages
    rows = [
        ("total rank mass", f"{truth.sum():.4f}", f"{est_total:.4f}"),
        ("pages ranked", f"{graph.n_pages}", f"{est_pages:.1f}"),
        ("average rank (Fig 7 metric)", f"{truth.mean():.6f}", f"{est_mean:.6f}"),
    ]
    print(
        format_table(
            ["quantity", "ground truth", "gossip estimate (node 0)"],
            rows,
            title=f"push-sum aggregation (converged in {max(t1, t2):.0f} time units, "
            f"{gossip_sum.messages_sent + gossip_cnt.messages_sent} messages)",
        )
    )
    print(
        "\nNo omniscient monitor anywhere: termination came from local "
        "step deltas (Thm 3.3) and the global statistics from neighbor "
        "gossip."
    )


if __name__ == "__main__":
    main()
