#!/usr/bin/env python
"""Scenario: a cooperative P2P search engine ranks its crawl.

This is the paper's motivating application (§1): no single machine can
rank the whole web, so K peers each crawl and rank a slice, exchanging
scores through the overlay.  The example shows what an end user of the
search engine sees — the top results — and that the distributed
ordering matches what a centralized Google-style ranker would produce,
even with messages being lost and peers pausing mid-run.

Run:  python examples/web_search_ranking.py
"""

import numpy as np

from repro import google_contest_like, pagerank_open
from repro.analysis import format_table, rank_order_correlation, topk_overlap
from repro.core import DistributedConfig, DistributedRun
from repro.net.failures import NodePauseInjector


def main() -> None:
    graph = google_contest_like(8_000, 80, seed=3)
    centralized = pagerank_open(graph, tol=1e-12).ranks

    # A realistic deployment: 24 peers, flaky network (10% loss),
    # two peers going offline for a while mid-run.
    config = DistributedConfig(
        n_groups=24,
        algorithm="dpr1",
        partition_strategy="site",
        overlay="pastry",
        transport="indirect",
        t1=0.0,
        t2=6.0,
        delivery_prob=0.9,
        seed=11,
    )
    run = DistributedRun(graph, config, reference=centralized)
    run.install_pause_injector(
        NodePauseInjector(n_faults=2, horizon=30.0, mean_outage=20.0, seed=2)
    )
    result = run.run(max_time=600.0, target_relative_error=1e-5)

    print(
        f"converged: {result.converged} "
        f"(sim time {result.time_to_target}, "
        f"{result.dropped_updates} updates lost en route)\n"
    )

    # The search-results page: top 10 by distributed rank.
    order = np.argsort(-result.ranks)
    rows = []
    central_order = {p: i + 1 for i, p in enumerate(np.argsort(-centralized))}
    for rank_pos, page in enumerate(order[:10], start=1):
        rows.append(
            (
                rank_pos,
                graph.url_of(int(page)),
                float(result.ranks[page]),
                central_order[int(page)],
            )
        )
    print(
        format_table(
            ["#", "url", "score", "centralized #"],
            rows,
            title="top-10 search results (distributed ranking)",
        )
    )

    print(
        f"\ntop-10 overlap with centralized: "
        f"{topk_overlap(result.ranks, centralized, 10):.0%}"
    )
    print(
        f"Spearman rank correlation:       "
        f"{rank_order_correlation(result.ranks, centralized):.6f}"
    )


if __name__ == "__main__":
    main()
