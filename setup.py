"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP-517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` take the
classic ``setup.py develop`` path, which needs only setuptools.
"""

from setuptools import setup

setup()
