"""repro — Distributed Page Ranking in Structured P2P Networks.

A complete, self-contained reproduction of Shi, Yu, Yang & Wang,
*"Distributed Page Ranking in Structured P2P Networks"* (ICPP 2003):
Open System PageRank, the DPR1/DPR2 asynchronous distributed
algorithms, structured overlays (Pastry / Chord / CAN), direct and
indirect score transmission, and the communication cost model —
plus the experiment harness regenerating every figure and table of
the paper's evaluation.

Quick start
-----------
>>> from repro import google_contest_like, pagerank_open, run_distributed_pagerank
>>> graph = google_contest_like(2000, 50, seed=1)
>>> centralized = pagerank_open(graph)
>>> result = run_distributed_pagerank(
...     graph, n_groups=8, algorithm="dpr1", target_relative_error=1e-4
... )
>>> result.converged
True

Package layout
--------------
``repro.graph``
    Web link graphs: the :class:`~repro.graph.webgraph.WebGraph`
    structure, synthetic generators matched to the paper's dataset,
    partitioning strategies (§4.1), statistics, persistence.
``repro.linalg``
    Sparse propagation operators, per-group block decomposition,
    Jacobi kernels, norms and the convergence bounds of Thms 3.1–3.3.
``repro.core``
    Algorithms 1–4: centralized PageRank, GroupPageRank, DPR1/DPR2
    rankers, the run coordinator and convergence instrumentation.
``repro.overlay``
    Pastry, Chord and CAN overlays with hop/neighbor statistics.
``repro.net``
    Deterministic discrete-event simulator, direct/indirect
    transports (§4.4), traffic accounting, loss and churn injection.
``repro.analysis``
    The §4.4–4.5 cost model (Table 1), ranking metrics, reporting.
``repro.experiments``
    ``run_fig6`` / ``run_fig7`` / ``run_fig8`` / ``run_table1`` and
    the ablation suite.
"""

from repro.graph import (
    WebGraph,
    google_contest_like,
    make_partition,
    Partition,
)
from repro.core import (
    pagerank_algorithm1,
    pagerank_open,
    PageRankResult,
    GroupSystem,
    group_pagerank,
    DPRNode,
    DistributedConfig,
    DistributedRun,
    RunResult,
    run_distributed_pagerank,
)
from repro.overlay import PastryOverlay, ChordOverlay, CANOverlay, build_overlay
from repro.analysis import CostModel, table1_rows

__version__ = "1.0.0"

__all__ = [
    "WebGraph",
    "google_contest_like",
    "make_partition",
    "Partition",
    "pagerank_algorithm1",
    "pagerank_open",
    "PageRankResult",
    "GroupSystem",
    "group_pagerank",
    "DPRNode",
    "DistributedConfig",
    "DistributedRun",
    "RunResult",
    "run_distributed_pagerank",
    "PastryOverlay",
    "ChordOverlay",
    "CANOverlay",
    "build_overlay",
    "CostModel",
    "table1_rows",
    "__version__",
]
