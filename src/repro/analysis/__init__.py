"""Analysis layer: the paper's cost model, metrics, and reporting.

* :mod:`~repro.analysis.cost_model` — closed-form implementations of
  formulas 4.1–4.7 and the Table 1 generator (minimum iteration
  interval and per-node bottleneck bandwidth for 10³/10⁴/10⁵ rankers).
* :mod:`~repro.analysis.metrics` — result-comparison metrics beyond
  the paper's relative error (top-k overlap, rank correlation).
* :mod:`~repro.analysis.reporting` — plain-text table/series
  formatting so benches print rows shaped like the paper's tables.
"""

from repro.analysis.cost_model import (
    CostModel,
    PASTRY_HOPS_BY_N,
    indirect_data_bytes,
    direct_data_bytes,
    indirect_messages,
    direct_messages,
    min_iteration_interval,
    min_node_bottleneck_bandwidth,
    table1_rows,
    message_crossover_n,
    bandwidth_crossover_n,
)
from repro.analysis.metrics import (
    topk_overlap,
    rank_order_correlation,
    compare_rankings,
)
from repro.analysis.reporting import format_table, format_series
from repro.analysis.viz import ascii_chart, sparkline
from repro.analysis.export import trace_to_csv, run_summary, save_run_summary
from repro.analysis.stats import (
    ConvergenceRate,
    estimate_convergence_rate,
    ReplicationSummary,
    replicate,
)

__all__ = [
    "CostModel",
    "PASTRY_HOPS_BY_N",
    "indirect_data_bytes",
    "direct_data_bytes",
    "indirect_messages",
    "direct_messages",
    "min_iteration_interval",
    "min_node_bottleneck_bandwidth",
    "table1_rows",
    "message_crossover_n",
    "bandwidth_crossover_n",
    "topk_overlap",
    "rank_order_correlation",
    "compare_rankings",
    "format_table",
    "format_series",
    "ascii_chart",
    "sparkline",
    "trace_to_csv",
    "run_summary",
    "save_run_summary",
    "ConvergenceRate",
    "estimate_convergence_rate",
    "ReplicationSummary",
    "replicate",
]
