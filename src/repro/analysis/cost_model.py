"""The communication cost model of paper §4.4–4.5.

Formulas (notation: ``W`` pages, ``N`` rankers, ``l`` bytes per link
record, ``r`` bytes per lookup message, ``h`` mean overlay hops, ``g``
mean neighbors):

* (4.1) indirect data per iteration: ``D_it = h·l·W``
* (4.2) direct data per iteration:   ``D_dt = l·W + h·r·N²``
* (4.3) indirect messages:           ``S_it = g·N``
* (4.4) direct messages:             ``S_dt = (h+1)·N²``
* (4.6) bisection constraint:        ``D_it < T · B_bisection``
* (4.7) node constraint:             ``D_it / N < T · B_node``

Worked example (paper §4.5, reproduced by :func:`table1_rows`):
W = 3·10⁹ pages (Google's 2003 index), l = 100 B, 1% of the US
backbone bisection = 100 MB/s.  With Pastry's measured hops this gives
the paper's Table 1: T ≥ 7500 s / 10500 s / 12000 s and node bandwidth
≥ 100 KB/s / 10 KB/s / 1 KB/s at N = 10³ / 10⁴ / 10⁵.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.message import LINK_RECORD_BYTES, LOOKUP_MESSAGE_BYTES
from repro.utils.validation import check_positive

__all__ = [
    "PASTRY_HOPS_BY_N",
    "indirect_data_bytes",
    "direct_data_bytes",
    "indirect_messages",
    "direct_messages",
    "min_iteration_interval",
    "min_node_bottleneck_bandwidth",
    "CostModel",
    "table1_rows",
    "message_crossover_n",
    "bandwidth_crossover_n",
]

#: Mean Pastry hop counts the paper quotes from [6] (b = 4).  The
#: overlay bench re-measures these from :class:`PastryOverlay`.
PASTRY_HOPS_BY_N: Dict[int, float] = {1_000: 2.5, 10_000: 3.5, 100_000: 4.0}

#: Paper's worked-example constants.
PAPER_WEB_PAGES = 3_000_000_000
PAPER_BISECTION_BYTES_PER_S = 100e6  # 1% of the 100 Gb/s US backbone


def indirect_data_bytes(w: float, h: float, l: float = LINK_RECORD_BYTES) -> float:
    """Formula 4.1: per-iteration bytes under indirect transmission."""
    return h * l * w


def direct_data_bytes(
    w: float, h: float, n: float, l: float = LINK_RECORD_BYTES,
    r: float = LOOKUP_MESSAGE_BYTES,
) -> float:
    """Formula 4.2: per-iteration bytes under direct transmission."""
    return l * w + h * r * n * n


def indirect_messages(n: float, g: float) -> float:
    """Formula 4.3: per-iteration messages under indirect transmission."""
    return g * n


def direct_messages(n: float, h: float) -> float:
    """Formula 4.4: per-iteration messages under direct transmission."""
    return (h + 1.0) * n * n


def min_iteration_interval(
    w: float,
    h: float,
    *,
    l: float = LINK_RECORD_BYTES,
    bisection_bytes_per_s: float = PAPER_BISECTION_BYTES_PER_S,
) -> float:
    """Formula 4.6 solved for T: minimum seconds between iterations."""
    check_positive(bisection_bytes_per_s, "bisection_bytes_per_s")
    return indirect_data_bytes(w, h, l) / bisection_bytes_per_s


def min_node_bottleneck_bandwidth(w: float, h: float, n: float, t: float, *,
                                  l: float = LINK_RECORD_BYTES) -> float:
    """Formula 4.7 solved for B: minimum per-node bytes/second."""
    check_positive(n, "n")
    check_positive(t, "t")
    return indirect_data_bytes(w, h, l) / (n * t)


def message_crossover_n(h: float, g: float) -> float:
    """N above which indirect transmission sends fewer messages.

    ``g·N < (h+1)·N²  ⇔  N > g/(h+1)`` — tiny, which is the paper's
    point: direct transmission only wins for very small networks.
    """
    return g / (h + 1.0)


def bandwidth_crossover_n(
    w: float, h: float, *, l: float = LINK_RECORD_BYTES,
    r: float = LOOKUP_MESSAGE_BYTES,
) -> float:
    """N above which direct transmission consumes *more* bytes.

    ``l·W + h·r·N² > h·l·W ⇔ N > sqrt((h−1)·l·W / (h·r))``.
    Below this N the h× relay amplification of indirect transmission
    dominates; above it the N² lookup traffic of direct does.
    """
    if h <= 1.0:
        return 0.0
    return math.sqrt((h - 1.0) * l * w / (h * r))


@dataclass
class CostModel:
    """A configured instance of the §4.5 capacity analysis.

    Parameters mirror the paper's worked example but are all
    overridable; :meth:`row` evaluates every formula at a given N.
    """

    web_pages: float = PAPER_WEB_PAGES
    link_record_bytes: float = LINK_RECORD_BYTES
    lookup_bytes: float = LOOKUP_MESSAGE_BYTES
    bisection_bytes_per_s: float = PAPER_BISECTION_BYTES_PER_S
    mean_neighbors: float = 32.0

    def row(self, n_rankers: int, hops: float) -> Dict[str, float]:
        """All §4.4/4.5 quantities for one network size."""
        t = min_iteration_interval(
            self.web_pages,
            hops,
            l=self.link_record_bytes,
            bisection_bytes_per_s=self.bisection_bytes_per_s,
        )
        return {
            "n_rankers": float(n_rankers),
            "hops": hops,
            "indirect_bytes": indirect_data_bytes(
                self.web_pages, hops, self.link_record_bytes
            ),
            "direct_bytes": direct_data_bytes(
                self.web_pages, hops, n_rankers, self.link_record_bytes, self.lookup_bytes
            ),
            "indirect_messages": indirect_messages(n_rankers, self.mean_neighbors),
            "direct_messages": direct_messages(n_rankers, hops),
            "min_iteration_interval_s": t,
            "min_node_bandwidth_Bps": min_node_bottleneck_bandwidth(
                self.web_pages, hops, n_rankers, t, l=self.link_record_bytes
            ),
        }


def table1_rows(
    hops_by_n: Optional[Dict[int, float]] = None,
    *,
    model: Optional[CostModel] = None,
) -> List[Dict[str, float]]:
    """Reproduce Table 1 of the paper.

    Each row gives the minimum time between iterations and the
    minimum per-node bottleneck bandwidth for one ranker count.  With
    the paper's hop numbers the rows evaluate to exactly the published
    values (7500 s / 100 KB/s etc.).  The Table 1 bench passes hops
    *measured* from this repo's Pastry implementation instead.
    """
    hops_by_n = dict(PASTRY_HOPS_BY_N if hops_by_n is None else hops_by_n)
    model = model if model is not None else CostModel()
    return [model.row(n, h) for n, h in sorted(hops_by_n.items())]
