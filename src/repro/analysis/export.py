"""Result persistence: CSV time series and JSON run summaries.

Figures 6–8 are time series; downstream users will want them in their
own plotting stack, so :func:`trace_to_csv` dumps any
:class:`~repro.core.convergence.ConvergenceTrace` as plain CSV.
:func:`run_summary` / :func:`save_run_summary` flatten a
:class:`~repro.core.coordinator.RunResult` into a JSON-serializable
dict of scalars (configuration echo included) for experiment logging.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import asdict
from typing import Dict, Union

import numpy as np

from repro.core.convergence import ConvergenceTrace
from repro.core.coordinator import RunResult

__all__ = ["trace_to_csv", "run_summary", "save_run_summary"]

_COLUMNS = (
    "time",
    "relative_error",
    "mean_rank",
    "max_outer_iterations",
    "mean_outer_iterations",
    "total_messages",
    "total_bytes",
)


def trace_to_csv(trace: ConvergenceTrace, path: Union[str, os.PathLike]) -> None:
    """Write a convergence trace as CSV with one row per sample."""
    arrays = trace.as_arrays()
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_COLUMNS)
        for i in range(len(trace)):
            writer.writerow([arrays[c][i] for c in _COLUMNS])


def run_summary(result: RunResult) -> Dict[str, object]:
    """Flatten a run into JSON-serializable scalars.

    Vector payloads (ranks, per-group counters) are summarized, not
    embedded — summaries are for experiment logs, the full vectors
    stay in memory or go through :mod:`repro.graph.io`-style storage.
    """
    summary: Dict[str, object] = {
        "converged": bool(result.converged),
        "time_to_target": result.time_to_target,
        "quiescent": bool(result.quiescent),
        "quiescence_time": result.quiescence_time,
        "final_relative_error": float(result.final_relative_error),
        "n_pages": int(result.ranks.size),
        "mean_rank": float(result.ranks.mean()) if result.ranks.size else 0.0,
        "outer_iterations_max": int(result.max_outer_iterations),
        "outer_iterations_mean": float(result.outer_iterations.mean())
        if result.outer_iterations.size
        else 0.0,
        "inner_sweeps_total": int(result.inner_sweeps.sum()),
        "messages": int(result.traffic.total_messages),
        "bytes": int(result.traffic.total_bytes),
        "dropped_updates": int(result.dropped_updates),
        "samples": len(result.trace),
    }
    if result.config is not None:
        cfg = asdict(result.config)
        # The E field may be an array; record only its kind.
        e = cfg.pop("e", None)
        cfg["e"] = "uniform" if e is None or np.isscalar(e) else "custom-vector"
        summary["config"] = cfg
    return summary


def save_run_summary(result: RunResult, path: Union[str, os.PathLike]) -> None:
    """Write :func:`run_summary` as pretty-printed JSON."""
    with open(path, "w") as fh:
        json.dump(run_summary(result), fh, indent=2, sort_keys=True)
        fh.write("\n")
