"""Ranking-comparison metrics.

The paper measures distributed-vs-centralized agreement only by
relative L1 error.  For a search engine the *ordering* of pages is
what matters, so this module adds two standard ordering metrics used
by the examples and tests:

* top-k overlap — fraction of the centralized top-k pages also in the
  distributed top-k (what a user of the first k results experiences);
* Spearman rank-order correlation over all pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy import stats

__all__ = ["topk_overlap", "rank_order_correlation", "compare_rankings", "RankingComparison"]


def topk_overlap(scores_a: np.ndarray, scores_b: np.ndarray, k: int) -> float:
    """|top-k(a) ∩ top-k(b)| / k.

    Ties are broken by page index (deterministically) in both rankings.
    """
    a = np.asarray(scores_a)
    b = np.asarray(scores_b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if not 1 <= k <= a.size:
        raise ValueError(f"k must be in [1, {a.size}], got {k}")
    top_a = set(np.argsort(-a, kind="stable")[:k].tolist())
    top_b = set(np.argsort(-b, kind="stable")[:k].tolist())
    return len(top_a & top_b) / k


def rank_order_correlation(scores_a: np.ndarray, scores_b: np.ndarray) -> float:
    """Spearman ρ between two score vectors (1.0 = identical order)."""
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        return 1.0
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", stats.ConstantInputWarning)
        rho = stats.spearmanr(a, b).statistic
    # Constant vectors make Spearman undefined; identical constants are
    # a perfect ordering match for our purposes.
    if np.isnan(rho):
        return 1.0 if np.allclose(a, a[0]) and np.allclose(b, b[0]) else 0.0
    return float(rho)


@dataclass
class RankingComparison:
    """Bundle of agreement metrics between two rank vectors."""

    relative_l1_error: float
    spearman: float
    top10_overlap: float
    top100_overlap: float

    def as_dict(self) -> Dict[str, float]:
        """Metrics as a flat mapping (for table rows / JSON)."""
        return {
            "relative_l1_error": self.relative_l1_error,
            "spearman": self.spearman,
            "top10_overlap": self.top10_overlap,
            "top100_overlap": self.top100_overlap,
        }


def compare_rankings(distributed: np.ndarray, centralized: np.ndarray) -> RankingComparison:
    """All agreement metrics at once (k capped at the vector length)."""
    from repro.linalg.norms import relative_l1_error

    n = np.asarray(distributed).size
    k10 = min(10, max(n, 1))
    k100 = min(100, max(n, 1))
    return RankingComparison(
        relative_l1_error=relative_l1_error(distributed, centralized),
        spearman=rank_order_correlation(distributed, centralized),
        top10_overlap=topk_overlap(distributed, centralized, k10) if n else 1.0,
        top100_overlap=topk_overlap(distributed, centralized, k100) if n else 1.0,
    )
