"""Plain-text tables and series.

Benches and examples print results shaped like the paper's tables and
figure data; these helpers keep that formatting consistent and free of
plotting dependencies (the environment is headless).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["format_table", "format_series"]

Cell = Union[str, int, float]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return f"{cell:,}"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e6 or abs(cell) < 1e-3:
            return f"{cell:.3g}"
        return f"{cell:,.4g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], *,
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["n", "t"], [[1000, 7500.0]], title="Table 1"))
    Table 1
    n      t
    -----  -----
    1,000  7,500
    """
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip())
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[Cell], ys: Sequence[Cell], *, x_label: str = "x",
    y_label: str = "y", max_points: int = 25,
) -> str:
    """Render an (x, y) series, thinning long series evenly.

    Used to print figure data (Figs 6–8) without plotting.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    n = len(xs)
    if n > max_points:
        idx = [round(i * (n - 1) / (max_points - 1)) for i in range(max_points)]
        idx = sorted(set(idx))
    else:
        idx = list(range(n))
    rows = [[xs[i], ys[i]] for i in idx]
    return format_table([x_label, y_label], rows, title=name)
