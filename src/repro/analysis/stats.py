"""Statistical analysis of convergence traces and replicated runs.

Two tools the paper's evaluation lacks but a careful reproduction
wants:

* :func:`estimate_convergence_rate` — DPR error decays geometrically
  (the iteration is a contraction), so ``log(err)`` vs time is close
  to linear; a least-squares fit yields the decay rate and a
  *time-to-x* extrapolation, letting short runs be compared
  quantitatively instead of eyeballing curves.
* :func:`replicate` / :class:`ReplicationSummary` — every simulated
  quantity (time-to-target, traffic, iterations) is a random variable
  over seeds; replication reports mean ± a normal-approximation
  confidence interval so ordering claims ("A converges before B") can
  be asserted with error bars rather than single draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.convergence import ConvergenceTrace

__all__ = [
    "ConvergenceRate",
    "estimate_convergence_rate",
    "ReplicationSummary",
    "replicate",
]


@dataclass
class ConvergenceRate:
    """Fitted geometric decay of a relative-error trace.

    ``error(t) ≈ exp(intercept) · exp(rate · t)`` with ``rate < 0``
    for a converging run.
    """

    rate: float
    intercept: float
    r_squared: float
    n_points: int

    @property
    def halving_time(self) -> float:
        """Time for the error to halve (inf if not decaying)."""
        if self.rate >= 0:
            return math.inf
        return math.log(0.5) / self.rate

    def time_to_error(self, target: float, *, initial: Optional[float] = None) -> float:
        """Extrapolated time until the fitted error reaches ``target``."""
        if target <= 0:
            raise ValueError("target must be positive")
        if self.rate >= 0:
            return math.inf
        start = math.log(initial) if initial is not None else self.intercept
        return (math.log(target) - start) / self.rate


def estimate_convergence_rate(
    trace: ConvergenceTrace, *, min_error: float = 1e-12
) -> ConvergenceRate:
    """Least-squares fit of ``log(relative error)`` against time.

    Samples at or below ``min_error`` (already at numerical floor) and
    non-finite errors are excluded.  Requires at least three usable
    samples.
    """
    times = np.asarray(trace.times, dtype=np.float64)
    errs = np.asarray(trace.relative_errors, dtype=np.float64)
    mask = np.isfinite(errs) & (errs > min_error)
    times, errs = times[mask], errs[mask]
    if times.size < 3:
        raise ValueError("need at least 3 usable samples to fit a rate")
    log_err = np.log(errs)
    slope, intercept = np.polyfit(times, log_err, 1)
    predicted = slope * times + intercept
    ss_res = float(((log_err - predicted) ** 2).sum())
    ss_tot = float(((log_err - log_err.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ConvergenceRate(
        rate=float(slope),
        intercept=float(intercept),
        r_squared=r2,
        n_points=int(times.size),
    )


@dataclass
class ReplicationSummary:
    """Mean and confidence interval of a metric over seed replicates."""

    values: List[float]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single replicate)."""
        return float(np.std(self.values, ddof=1)) if self.n > 1 else 0.0

    def ci95(self) -> float:
        """Half-width of the 95% normal-approximation interval."""
        if self.n < 2:
            return math.inf if self.n == 0 else 0.0
        return 1.96 * self.std / math.sqrt(self.n)

    def separated_from(self, other: "ReplicationSummary") -> bool:
        """True if the two 95% intervals do not overlap.

        A conservative ordering test: non-overlapping intervals imply
        a significant difference (the converse does not hold).
        """
        lo_self, hi_self = self.mean - self.ci95(), self.mean + self.ci95()
        lo_other, hi_other = other.mean - other.ci95(), other.mean + other.ci95()
        return hi_self < lo_other or hi_other < lo_self


def replicate(
    run_fn: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
) -> Dict[str, ReplicationSummary]:
    """Run ``run_fn(seed)`` per seed and summarize each returned metric.

    ``run_fn`` must return a flat ``{metric: value}`` mapping with the
    same keys for every seed; ``None`` values are skipped per metric.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    collected: Dict[str, List[float]] = {}
    for seed in seeds:
        metrics = run_fn(int(seed))
        for key, value in metrics.items():
            if value is None:
                continue
            collected.setdefault(key, []).append(float(value))
    return {key: ReplicationSummary(vals) for key, vals in collected.items()}
