"""Terminal visualization: ASCII line charts and sparklines.

The environment is headless, but Figs 6–8 are *curves*; these helpers
render them legibly in plain text so CLI/bench output shows the shape,
not just endpoints.  No plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["sparkline", "ascii_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of a numeric series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def ascii_chart(
    series: Dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more numeric series as a text line chart.

    Each series is resampled to ``width`` columns; distinct series are
    drawn with distinct marker characters and listed in a legend.
    Shared y-scale across series (that is the point of overlaying).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 3:
        raise ValueError("chart too small to draw")
    markers = "*o+x#@%&"
    all_vals = [float(v) for vals in series.values() for v in vals if vals]
    if not all_vals:
        raise ValueError("series are empty")
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for (name, vals), marker in zip(series.items(), markers):
        vals = [float(v) for v in vals]
        if not vals:
            continue
        for col in range(width):
            # Nearest-sample resampling onto the column grid.
            idx = round(col * (len(vals) - 1) / (width - 1)) if len(vals) > 1 else 0
            v = vals[idx]
            row = int((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi:.4g}"
    bottom_label = f"{lo:.4g}"
    label_w = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_w)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_w)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * label_w + "   " + legend)
    return "\n".join(lines)
