"""Command-line interface: reproduce paper results from the shell.

Usage::

    python -m repro fig6   [--pages N] [--sites N] [--groups K] [--seed S]
    python -m repro fig7   [--pages N] [--sites N] [--groups K]
    python -m repro fig8   [--pages N] [--ks 2,10,100]
    python -m repro table1 [--ns 1000,10000,100000]
    python -m repro run    [--pages N] [--groups K] [--algorithm dpr1]
                           [--transport indirect] [--overlay pastry] ...
    python -m repro summary [--pages N] [--sites N]
    python -m repro graphgen --out DIR [--pages N] [--chunk-pages C]
    python -m repro partitions [--pages N] [--groups K] [--graph DIR]
                               [--strategies site,ldg,...] [--cut-only]
    python -m repro engines [--pages N] [--groups K] [--target EPS]
                            [--engines dpr1,dpr2-event,flat,mc]
                            [--walks-per-page R]
    python -m repro chaos   [--pages N] [--groups K] [--target EPS]
                            [--engines event,hybrid]
    python -m repro serve   [--web-pages N] [--crawl N] [--groups K]
                            [--epsilon EPS] [--phases P] [--churn C]
    python -m repro compression [--pages N] [--groups K] [--target EPS]
                                [--comm-epsilon EPS] [--codecs none,delta,...]

Every subcommand prints the same text tables the benches save, so a
user can regenerate any paper artifact without touching pytest.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.reporting import format_table

__all__ = ["main", "build_parser"]


def _int_list(text: str) -> List[int]:
    return [int(x) for x in text.split(",") if x]


def _probability(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"{value} is not in [0, 1]")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0.0:
        raise argparse.ArgumentTypeError(f"{value} is not > 0")
    return value


def _non_negative_float(text: str) -> float:
    value = float(text)
    if value < 0.0:
        raise argparse.ArgumentTypeError(f"{value} is not >= 0")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"{value} is not >= 0")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"{value} is not >= 1")
    return value


def _backoff_factor(text: str) -> float:
    value = float(text)
    if value < 1.0:
        raise argparse.ArgumentTypeError(f"{value} is not >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (see module docstring for usage)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Page Ranking in Structured P2P Networks "
        "(ICPP 2003) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload(p):
        p.add_argument("--pages", type=int, default=4000, help="crawl size")
        p.add_argument("--sites", type=int, default=100, help="site count")
        p.add_argument("--seed", type=int, default=2003)

    def add_engine(p):
        p.add_argument(
            "--engine", choices=["event", "flat", "hybrid", "mc"],
            default="event",
            help="execution engine: per-message event simulation (event), "
            "vectorized bulk-synchronous rounds (flat; much faster at "
            "scale), the fault-tolerant fast path (hybrid; flat-speed "
            "rounds over a persistent fault plane — flat requests with "
            "fault knobs or --schedule async dispatch here "
            "automatically), or the Monte-Carlo random-walk estimator "
            "(mc; statistical accuracy, O(log n) rounds).  flat, hybrid "
            "and mc sample once per round; flat and mc require "
            "--schedule sync",
        )
        p.add_argument(
            "--schedule", choices=["async", "sync"], default="async",
            help="event-engine wake schedule: exponential waits (async, "
            "the paper's model) or one common fixed period (sync, "
            "bit-identical to --engine flat)",
        )

    p_fig6 = sub.add_parser("fig6", help="relative error vs time (Fig 6)")
    add_workload(p_fig6)
    add_engine(p_fig6)
    p_fig6.add_argument("--groups", type=int, default=64)
    p_fig6.add_argument("--max-time", type=float, default=90.0)

    p_fig7 = sub.add_parser("fig7", help="monotone average rank (Fig 7)")
    add_workload(p_fig7)
    add_engine(p_fig7)
    p_fig7.add_argument("--groups", type=int, default=100)
    p_fig7.add_argument("--max-time", type=float, default=90.0)

    p_fig8 = sub.add_parser("fig8", help="iterations vs #rankers (Fig 8)")
    add_workload(p_fig8)
    add_engine(p_fig8)
    p_fig8.add_argument("--ks", type=_int_list, default=[2, 10, 100, 256])
    p_fig8.add_argument("--max-time", type=float, default=4000.0)

    p_t1 = sub.add_parser("table1", help="iteration interval & bandwidth (Table 1)")
    p_t1.add_argument("--ns", type=_int_list, default=[1000, 10000, 100000])
    p_t1.add_argument("--hop-samples", type=int, default=400)

    p_run = sub.add_parser("run", help="one distributed page-ranking run")
    add_workload(p_run)
    add_engine(p_run)
    p_run.add_argument("--groups", type=int, default=16)
    p_run.add_argument("--algorithm", choices=["dpr1", "dpr2"], default="dpr1")
    p_run.add_argument(
        "--partition", choices=["site", "url", "random", "contiguous"], default="site"
    )
    p_run.add_argument("--overlay", choices=["pastry", "chord", "can"], default="pastry")
    p_run.add_argument("--transport", choices=["indirect", "direct"], default="indirect")
    p_run.add_argument("--t1", type=float, default=0.0)
    p_run.add_argument("--t2", type=float, default=6.0)
    p_run.add_argument("--delivery-prob", type=_probability, default=1.0)
    p_run.add_argument("--target", type=float, default=1e-5,
                       help="target relative error")
    p_run.add_argument("--max-time", type=float, default=1000.0)

    def add_mc(p):
        g_mc = p.add_argument_group(
            "monte-carlo", "random-walk engine knobs (--engine mc; "
            "repro.linalg.montecarlo)"
        )
        g_mc.add_argument(
            "--walks-per-page", type=_positive_int, default=16,
            help="walk tokens launched per page; relative L1 error "
            "scales as 1/sqrt(R)",
        )
        g_mc.add_argument(
            "--walk-mode", choices=["terminate", "visit"],
            default="terminate",
            help="rank estimator: credit walk terminations, or every "
            "visit scaled by 1-alpha",
        )
        g_mc.add_argument(
            "--dangling-mode", choices=["absorb", "jump"],
            default="absorb",
            help="walks at zero-out-degree pages die (absorb, the "
            "open-system reference behaviour) or restart at a random "
            "page (jump; biased vs. the centralized reference)",
        )
        return g_mc

    add_mc(p_run)

    g_rel = p_run.add_argument_group(
        "reliability", "ACK/retry transport layer (repro.net.reliable)"
    )
    g_rel.add_argument("--reliable", action="store_true",
                       help="wrap the transport in ReliableTransport")
    g_rel.add_argument("--retry-timeout", type=_positive_float, default=4.0,
                       help="initial retransmission timeout")
    g_rel.add_argument("--retry-backoff", type=_backoff_factor, default=2.0,
                       help="timeout multiplier per retry (>= 1)")
    g_rel.add_argument("--retry-jitter", type=_non_negative_float, default=0.0,
                       help="uniform jitter added to each timeout")
    g_rel.add_argument("--retry-max-timeout", type=_positive_float, default=60.0,
                       help="timeout cap across retries")
    g_rel.add_argument("--max-retries", type=_non_negative_int, default=8,
                       help="retransmissions before giving up")

    g_chaos = p_run.add_argument_group(
        "chaos", "message-level adversaries (require --reliable)"
    )
    g_chaos.add_argument("--ack-loss-prob", type=_probability, default=0.0)
    g_chaos.add_argument("--duplicate-prob", type=_probability, default=0.0)
    g_chaos.add_argument("--reorder-prob", type=_probability, default=0.0)
    g_chaos.add_argument("--reorder-max-delay", type=_non_negative_float,
                         default=0.0)

    g_churn = p_run.add_argument_group("churn", "node pause and crash injection")
    g_churn.add_argument("--pause-faults", type=_non_negative_int, default=0,
                         help="number of transient pause/resume faults")
    g_churn.add_argument("--pause-horizon", type=_non_negative_float,
                         default=20.0, help="window pauses start in")
    g_churn.add_argument("--pause-mean-outage", type=_non_negative_float,
                         default=5.0, help="mean pause duration")
    g_churn.add_argument("--crash-prob", type=_probability, default=0.0,
                         help="per-ranker permanent crash probability")
    g_churn.add_argument("--crash-after", type=_non_negative_float, default=10.0,
                         help="warmup before crashes may fire")
    g_churn.add_argument("--crash-horizon", type=_non_negative_float,
                         default=10.0, help="window crashes fire in")

    g_comp = p_run.add_argument_group(
        "compression", "wire codec and traffic suppression "
        "(repro.net.codec / repro.net.adaptive)"
    )
    g_comp.add_argument(
        "--codec", choices=["none", "delta", "delta-q16"], default="none",
        help="wire codec for cross-group score updates: flat "
        "100 B/record accounting (none), varint delta frames with "
        "float32 deltas (delta; lossless at --comm-epsilon 0), or "
        "float16 deltas (delta-q16; requires --comm-epsilon > 0)",
    )
    g_comp.add_argument(
        "--comm-epsilon", type=_non_negative_float, default=0.0,
        help="total certified error budget ε_comm in efferent L1 mass "
        "(0 = lossless); the run's rank deviation is certified at or "
        "below ε_comm / (1 - alpha)",
    )
    g_comp.add_argument(
        "--send-threshold", type=_non_negative_float, default=0.0,
        help="skip sending an efferent vector whose L1 change since "
        "the last send is at or below this threshold (0 disables; "
        "mutually exclusive with --codec)",
    )

    g_rec = p_run.add_argument_group(
        "recovery", "failure detection and checkpoint-based takeover"
    )
    g_rec.add_argument("--heartbeat-interval", type=_non_negative_float,
                       default=0.0, help="failure-detector sweep period "
                       "(0 disables)")
    g_rec.add_argument("--heartbeat-miss", type=_positive_int, default=3,
                       help="missed beats before a group is declared dead")
    g_rec.add_argument("--checkpoint-interval", type=_non_negative_float,
                       default=0.0, help="state snapshot period (0 disables)")
    g_rec.add_argument("--recovery", action="store_true",
                       help="take over detected-dead groups from checkpoints")

    p_sum = sub.add_parser("summary", help="describe a generated crawl")
    add_workload(p_sum)

    p_gen = sub.add_parser(
        "graphgen",
        help="stream-generate a crawl to an on-disk webgraph directory",
    )
    add_workload(p_gen)
    p_gen.add_argument(
        "--out", required=True,
        help="destination path: a directory for the memory-mappable "
        "format (recommended), or *.npz for the compressed archive",
    )
    p_gen.add_argument(
        "--chunk-pages", type=_positive_int, default=None,
        help="pages generated per chunk (bounds peak memory; default "
        "2**16; the emitted graph is bit-identical for every value)",
    )

    p_part = sub.add_parser(
        "partitions",
        help="partitioner bake-off: cut size, balance, traffic, and "
        "rounds-to-target for every placement strategy on one graph",
    )
    add_workload(p_part)
    p_part.add_argument("--groups", type=_positive_int, default=16, help="ranker count K")
    p_part.add_argument(
        "--strategies",
        type=lambda s: [x for x in s.split(",") if x],
        default=None,
        help="comma-separated strategy names (default: all of "
        "site,url,rendezvous,random,contiguous,ldg)",
    )
    p_part.add_argument(
        "--target", type=_positive_float, default=1e-4,
        help="relative-error target for the rounds-to-ε column",
    )
    p_part.add_argument(
        "--max-time", type=_positive_float, default=3000.0,
        help="simulated-time budget per convergence run",
    )
    p_part.add_argument(
        "--cut-only", action="store_true",
        help="skip the convergence runs (no centralized reference "
        "solve); keeps 1e7-page graphs feasible",
    )
    p_part.add_argument(
        "--graph", default=None,
        help="load this saved webgraph (directory → memory-mapped, "
        "*.npz → in-memory) instead of generating one; --pages/--sites "
        "are ignored",
    )
    p_part.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR if "
        "set, else no caching); cached tables reproduce byte-identically",
    )

    p_eng = sub.add_parser(
        "engines",
        help="engine bake-off: rounds-to-ε, L1 error, messages, and "
        "bytes for dpr1/dpr2-event/flat/mc on one identical workload",
    )
    add_workload(p_eng)
    p_eng.add_argument("--groups", type=_positive_int, default=16,
                       help="ranker count K")
    p_eng.add_argument(
        "--engines",
        type=lambda s: [x for x in s.split(",") if x],
        default=None,
        help="comma-separated contender names (default: all of "
        "dpr1,dpr2-event,flat,mc)",
    )
    p_eng.add_argument(
        "--target", type=_positive_float, default=1e-4,
        help="relative-error target ε (the Jacobi engines stop here; "
        "mc runs to walk exhaustion unless it reaches ε first)",
    )
    p_eng.add_argument(
        "--max-time", type=_positive_float, default=3000.0,
        help="simulated-time budget per run",
    )
    p_eng.add_argument(
        "--walks-per-page", type=_positive_int, default=16,
        help="mc walk tokens per page (error scales as 1/sqrt(R))",
    )
    p_eng.add_argument(
        "--graph", default=None,
        help="load this saved webgraph (directory → memory-mapped, "
        "*.npz → in-memory) instead of generating one; --pages/--sites "
        "are ignored",
    )
    p_eng.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR if "
        "set, else no caching); cached tables reproduce byte-identically",
    )

    p_serve = sub.add_parser(
        "serve",
        help="serving-tier demo: incremental re-ranking + indexed top-k "
        "queries against a crawler mutating the graph under churn",
    )
    p_serve.add_argument("--web-pages", type=_positive_int, default=3000,
                         help="TrueWeb size (the hidden full web)")
    p_serve.add_argument("--sites", type=_positive_int, default=60,
                         help="site count")
    p_serve.add_argument("--crawl", type=_positive_int, default=1200,
                         help="pages crawled before the server boots")
    p_serve.add_argument("--groups", type=_positive_int, default=8,
                         help="ranker count K")
    p_serve.add_argument("--epsilon", type=_positive_float, default=1e-3,
                         help="staleness budget ε (relative L1)")
    p_serve.add_argument("--phases", type=_positive_int, default=4,
                         help="churn-crawl-sync-query phases")
    p_serve.add_argument("--churn", type=_non_negative_int, default=80,
                         help="TrueWeb link edits per phase")
    p_serve.add_argument("--budget", type=_positive_int, default=200,
                         help="crawler fetch budget per phase")
    p_serve.add_argument("--queries", type=_positive_int, default=400,
                         help="queries fired per phase")
    p_serve.add_argument("--seed", type=int, default=2003)
    p_serve.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR if "
        "set, else no caching); cached tables reproduce byte-identically",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="chaos bake-off: the EXPERIMENTS.md churn scenario on the "
        "event engine vs the hybrid fault-tolerant fast path — same ε "
        "verdict, fault counters, and wall-clock speedup",
    )
    add_workload(p_chaos)
    p_chaos.add_argument("--groups", type=_positive_int, default=8,
                         help="ranker count K")
    p_chaos.add_argument(
        "--engines",
        type=lambda s: [x for x in s.split(",") if x],
        default=None,
        help="comma-separated engine names (default: event,hybrid)",
    )
    p_chaos.add_argument(
        "--target", type=_positive_float, default=1e-4,
        help="relative-error target ε for the verdict column",
    )
    p_chaos.add_argument(
        "--max-time", type=_positive_float, default=405.0,
        help="simulated-time budget per run (default: 40 rounds of "
        "the scenario's T=10 period plus a drain margin)",
    )
    p_chaos.add_argument(
        "--graph", default=None,
        help="load this saved webgraph (directory → memory-mapped, "
        "*.npz → in-memory) instead of generating one; --pages/--sites "
        "are ignored",
    )
    p_chaos.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR if "
        "set, else no caching); cached tables reproduce byte-identically",
    )

    p_comp = sub.add_parser(
        "compression",
        help="wire-compression bake-off: data bytes, paper-model bytes, "
        "reduction factor, certified bound vs measured deviation for "
        "each codec on one identical workload",
    )
    add_workload(p_comp)
    p_comp.add_argument("--groups", type=_positive_int, default=16,
                        help="ranker count K")
    p_comp.add_argument(
        "--codecs",
        type=lambda s: [x for x in s.split(",") if x],
        default=None,
        help="comma-separated contender names (default: all of "
        "none,delta,delta-eps,delta-q16)",
    )
    p_comp.add_argument(
        "--target", type=_positive_float, default=1e-4,
        help="relative-error target ε for the rounds-to-ε column",
    )
    p_comp.add_argument(
        "--comm-epsilon", type=_positive_float, default=1e-4,
        help="error budget ε_comm used by the lossy contenders "
        "(delta-eps and delta-q16)",
    )
    p_comp.add_argument(
        "--max-time", type=_positive_float, default=3000.0,
        help="simulated-time budget per run",
    )
    p_comp.add_argument(
        "--graph", default=None,
        help="load this saved webgraph (directory → memory-mapped, "
        "*.npz → in-memory) instead of generating one; --pages/--sites "
        "are ignored",
    )
    p_comp.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR if "
        "set, else no caching); cached tables reproduce byte-identically",
    )

    p_all = sub.add_parser("all", help="run the full reproduction suite")
    add_workload(p_all)
    p_all.add_argument(
        "--only",
        type=lambda s: [x for x in s.split(",") if x],
        default=None,
        help="comma-separated experiment names (default: all)",
    )
    p_all.add_argument("--out", default=None, help="directory for result tables")
    p_all.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the sweep (1 = serial; results are "
        "bit-identical for every value)",
    )
    p_all.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory for graphs, reference vectors and "
        "sweep-point results (default: $REPRO_CACHE_DIR if set, else no "
        "caching)",
    )

    return parser


def _make_graph(args):
    from repro.graph import google_contest_like

    return google_contest_like(args.pages, min(args.sites, args.pages), seed=args.seed)


def cmd_fig6(args) -> int:
    from repro.experiments import run_fig6

    result = run_fig6(
        _make_graph(args), n_groups=args.groups, max_time=args.max_time,
        engine=args.engine, schedule=args.schedule,
    )
    print(result.format())
    return 0


def cmd_fig7(args) -> int:
    from repro.experiments import run_fig7

    result = run_fig7(
        _make_graph(args), n_groups=args.groups, max_time=args.max_time,
        engine=args.engine, schedule=args.schedule,
    )
    print(result.format())
    return 0 if all(result.monotone.values()) else 1


def cmd_fig8(args) -> int:
    from repro.experiments import run_fig8

    result = run_fig8(
        _make_graph(args), ks=args.ks, max_time=args.max_time,
        engine=args.engine, schedule=args.schedule,
    )
    print(result.format())
    return 0


def cmd_table1(args) -> int:
    from repro.experiments import run_table1

    result = run_table1(ns=args.ns, hop_samples=args.hop_samples)
    print(result.format())
    return 0


def cmd_run(args) -> int:
    from repro.core import run_distributed_pagerank

    graph = _make_graph(args)
    try:
        result = run_distributed_pagerank(
            graph,
            n_groups=args.groups,
            engine=args.engine,
            schedule=args.schedule,
            algorithm=args.algorithm,
            partition_strategy=args.partition,
            overlay=args.overlay,
            transport=args.transport,
            t1=args.t1,
            t2=args.t2,
            delivery_prob=args.delivery_prob,
            seed=args.seed,
            walks_per_page=args.walks_per_page,
            walk_mode=args.walk_mode,
            dangling_mode=args.dangling_mode,
            reliable=args.reliable,
            retry_timeout=args.retry_timeout,
            retry_backoff=args.retry_backoff,
            retry_jitter=args.retry_jitter,
            retry_max_timeout=args.retry_max_timeout,
            max_retries=args.max_retries,
            ack_loss_prob=args.ack_loss_prob,
            duplicate_prob=args.duplicate_prob,
            reorder_prob=args.reorder_prob,
            reorder_max_delay=args.reorder_max_delay,
            pause_faults=args.pause_faults,
            pause_horizon=args.pause_horizon,
            pause_mean_outage=args.pause_mean_outage,
            crash_prob=args.crash_prob,
            crash_after=args.crash_after,
            crash_horizon=args.crash_horizon,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_miss_threshold=args.heartbeat_miss,
            checkpoint_interval=args.checkpoint_interval,
            recovery=args.recovery,
            codec=args.codec,
            comm_epsilon=args.comm_epsilon,
            send_threshold=args.send_threshold,
            target_relative_error=args.target,
            max_time=args.max_time,
        )
    except ValueError as exc:
        # Cross-field config constraints (e.g. chaos without --reliable)
        # surface as a usage error, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        ("converged", str(result.converged)),
        ("time to target", str(result.time_to_target)),
        ("final relative error", f"{result.final_relative_error:.3e}"),
        ("outer iterations (max)", result.max_outer_iterations),
        ("inner sweeps (max)", result.max_inner_sweeps),
        ("messages", result.traffic.total_messages),
        ("bytes", result.traffic.total_bytes),
        ("updates dropped", result.dropped_updates),
    ]
    if result.fidelity != "exact" or args.engine == "hybrid":
        rows += [
            ("fidelity", result.fidelity),
            ("fast rounds", result.fast_rounds),
            ("replayed rounds", result.replayed_rounds),
        ]
    if args.reliable:
        rows += [
            ("ack messages", result.traffic.ack_messages),
            ("ack bytes", result.traffic.ack_bytes),
            ("retransmits", result.retransmits),
            ("sends abandoned", result.gave_up),
            ("duplicates dropped", result.dup_drops),
            ("acks lost", result.acks_lost),
        ]
    if result.codec_stats is not None:
        cs = result.codec_stats
        rows += [
            ("codec", cs["codec"]),
            ("paper-model bytes", result.traffic.paper_data_bytes),
            ("frames / suppressed / exact",
             f"{cs['frames']} / {cs['suppressed_frames']} / "
             f"{cs['exact_flushes']}"),
            ("certified rank-error bound", f"{cs['certified_bound']:.3e}"),
        ]
    if args.crash_prob > 0 or args.heartbeat_interval > 0 or args.recovery:
        rows += [
            ("groups crashed", result.crashed_groups),
            ("deaths detected", result.deaths_detected),
            ("takeovers", result.takeovers),
            ("checkpoints written", result.checkpoint_saves),
        ]
    print(format_table(["metric", "value"], rows, title="distributed run"))
    return 0 if result.converged else 1


def cmd_summary(args) -> int:
    from repro.graph import summarize

    summary = summarize(_make_graph(args))
    rows = [(k, v) for k, v in summary.as_dict().items()]
    print(format_table(["statistic", "value"], rows, title="crawl summary"))
    return 0


def cmd_graphgen(args) -> int:
    """Stream-generate a crawl straight to disk and describe it."""
    import time

    from repro.graph import google_contest_like

    t0 = time.perf_counter()
    graph = google_contest_like(
        args.pages,
        min(args.sites, args.pages),
        seed=args.seed,
        out=args.out,
        chunk_pages=args.chunk_pages,
    )
    seconds = time.perf_counter() - t0
    rows = [
        ("path", args.out),
        ("pages", graph.n_pages),
        ("sites", graph.n_sites),
        ("internal links", graph.n_internal_links),
        ("total links", graph.n_links),
        ("fingerprint", graph.fingerprint()),
        ("build seconds", f"{seconds:.2f}"),
    ]
    print(format_table(["field", "value"], rows, title="graphgen"))
    return 0


def cmd_partitions(args) -> int:
    """Run the partitioner bake-off and print its table."""
    import contextlib

    from repro.experiments import BAKEOFF_STRATEGIES, run_partition_bakeoff
    from repro.parallel.cache import ArtifactCache, activate, cache_from_env

    if args.graph is not None:
        from repro.graph.io import load_webgraph

        graph = load_webgraph(args.graph, mmap=not str(args.graph).endswith(".npz"))
    else:
        graph = _make_graph(args)
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else cache_from_env()
    ctx = activate(cache) if cache is not None else contextlib.nullcontext()
    with ctx:
        result = run_partition_bakeoff(
            graph,
            n_groups=args.groups,
            strategies=args.strategies or BAKEOFF_STRATEGIES,
            seed=args.seed,
            target_relative_error=args.target,
            max_time=args.max_time,
            measure_rank=not args.cut_only,
        )
    print(result.format())
    return 0


def cmd_engines(args) -> int:
    """Run the engine bake-off and print its table."""
    import contextlib

    from repro.experiments import ENGINE_CONTENDERS, run_engine_bakeoff
    from repro.parallel.cache import ArtifactCache, activate, cache_from_env

    if args.graph is not None:
        from repro.graph.io import load_webgraph

        graph = load_webgraph(args.graph, mmap=not str(args.graph).endswith(".npz"))
    else:
        graph = _make_graph(args)
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else cache_from_env()
    ctx = activate(cache) if cache is not None else contextlib.nullcontext()
    with ctx:
        result = run_engine_bakeoff(
            graph,
            n_groups=args.groups,
            engines=args.engines or ENGINE_CONTENDERS,
            seed=args.seed,
            target_relative_error=args.target,
            max_time=args.max_time,
            walks_per_page=args.walks_per_page,
        )
    print(result.format())
    return 0


def cmd_serve(args) -> int:
    """Run the serving-tier demo and print its table."""
    import contextlib

    from repro.experiments import run_serve_demo
    from repro.parallel.cache import ArtifactCache, activate, cache_from_env

    cache = ArtifactCache(args.cache_dir) if args.cache_dir else cache_from_env()
    ctx = activate(cache) if cache is not None else contextlib.nullcontext()
    with ctx:
        result = run_serve_demo(
            web_pages=args.web_pages,
            web_sites=min(args.sites, args.web_pages),
            crawl_pages=min(args.crawl, args.web_pages),
            n_groups=args.groups,
            epsilon=args.epsilon,
            phases=args.phases,
            churn_per_phase=args.churn,
            crawl_budget=args.budget,
            queries_per_phase=args.queries,
            seed=args.seed,
        )
    print(result.format())
    return 0 if result.within_budget() else 1


def cmd_chaos(args) -> int:
    """Run the chaos bake-off and print its table."""
    import contextlib

    from repro.experiments import CHAOS_ENGINES, run_chaos_bakeoff
    from repro.parallel.cache import ArtifactCache, activate, cache_from_env

    if args.graph is not None:
        from repro.graph.io import load_webgraph

        graph = load_webgraph(args.graph, mmap=not str(args.graph).endswith(".npz"))
    else:
        graph = _make_graph(args)
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else cache_from_env()
    ctx = activate(cache) if cache is not None else contextlib.nullcontext()
    with ctx:
        result = run_chaos_bakeoff(
            graph,
            n_groups=args.groups,
            engines=args.engines or CHAOS_ENGINES,
            seed=args.seed,
            target_relative_error=args.target,
            max_time=args.max_time,
        )
    print(result.format())
    return 0 if result.verdicts_agree() else 1


def cmd_compression(args) -> int:
    """Run the wire-compression bake-off and print its table."""
    import contextlib

    from repro.experiments import COMPRESSION_CONTENDERS, run_compression_bakeoff
    from repro.parallel.cache import ArtifactCache, activate, cache_from_env

    if args.graph is not None:
        from repro.graph.io import load_webgraph

        graph = load_webgraph(args.graph, mmap=not str(args.graph).endswith(".npz"))
    else:
        graph = _make_graph(args)
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else cache_from_env()
    ctx = activate(cache) if cache is not None else contextlib.nullcontext()
    with ctx:
        result = run_compression_bakeoff(
            graph,
            n_groups=args.groups,
            codecs=args.codecs or COMPRESSION_CONTENDERS,
            seed=args.seed,
            target_relative_error=args.target,
            comm_epsilon=args.comm_epsilon,
            max_time=args.max_time,
        )
    print(result.format())
    return 0 if result.certified() else 1


def cmd_all(args) -> int:
    """Run every experiment and print/write the combined report."""
    from repro.experiments import ExperimentScale, run_all
    from repro.parallel.cache import ArtifactCache, cache_from_env

    scale = ExperimentScale(
        n_pages=args.pages, n_sites=min(args.sites, args.pages), seed=args.seed
    )
    cache = (
        ArtifactCache(args.cache_dir) if args.cache_dir else cache_from_env()
    )
    report = run_all(
        scale=scale, only=args.only, out_dir=args.out, jobs=args.jobs, cache=cache
    )
    print(report.format())
    return 0


COMMANDS = {
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "table1": cmd_table1,
    "run": cmd_run,
    "summary": cmd_summary,
    "graphgen": cmd_graphgen,
    "partitions": cmd_partitions,
    "engines": cmd_engines,
    "serve": cmd_serve,
    "chaos": cmd_chaos,
    "compression": cmd_compression,
    "all": cmd_all,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
