"""Command-line interface: reproduce paper results from the shell.

Usage::

    python -m repro fig6   [--pages N] [--sites N] [--groups K] [--seed S]
    python -m repro fig7   [--pages N] [--sites N] [--groups K]
    python -m repro fig8   [--pages N] [--ks 2,10,100]
    python -m repro table1 [--ns 1000,10000,100000]
    python -m repro run    [--pages N] [--groups K] [--algorithm dpr1]
                           [--transport indirect] [--overlay pastry] ...
    python -m repro summary [--pages N] [--sites N]

Every subcommand prints the same text tables the benches save, so a
user can regenerate any paper artifact without touching pytest.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.reporting import format_table

__all__ = ["main", "build_parser"]


def _int_list(text: str) -> List[int]:
    return [int(x) for x in text.split(",") if x]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (see module docstring for usage)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Page Ranking in Structured P2P Networks "
        "(ICPP 2003) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload(p):
        p.add_argument("--pages", type=int, default=4000, help="crawl size")
        p.add_argument("--sites", type=int, default=100, help="site count")
        p.add_argument("--seed", type=int, default=2003)

    p_fig6 = sub.add_parser("fig6", help="relative error vs time (Fig 6)")
    add_workload(p_fig6)
    p_fig6.add_argument("--groups", type=int, default=64)
    p_fig6.add_argument("--max-time", type=float, default=90.0)

    p_fig7 = sub.add_parser("fig7", help="monotone average rank (Fig 7)")
    add_workload(p_fig7)
    p_fig7.add_argument("--groups", type=int, default=100)
    p_fig7.add_argument("--max-time", type=float, default=90.0)

    p_fig8 = sub.add_parser("fig8", help="iterations vs #rankers (Fig 8)")
    add_workload(p_fig8)
    p_fig8.add_argument("--ks", type=_int_list, default=[2, 10, 100, 256])
    p_fig8.add_argument("--max-time", type=float, default=4000.0)

    p_t1 = sub.add_parser("table1", help="iteration interval & bandwidth (Table 1)")
    p_t1.add_argument("--ns", type=_int_list, default=[1000, 10000, 100000])
    p_t1.add_argument("--hop-samples", type=int, default=400)

    p_run = sub.add_parser("run", help="one distributed page-ranking run")
    add_workload(p_run)
    p_run.add_argument("--groups", type=int, default=16)
    p_run.add_argument("--algorithm", choices=["dpr1", "dpr2"], default="dpr1")
    p_run.add_argument(
        "--partition", choices=["site", "url", "random", "contiguous"], default="site"
    )
    p_run.add_argument("--overlay", choices=["pastry", "chord", "can"], default="pastry")
    p_run.add_argument("--transport", choices=["indirect", "direct"], default="indirect")
    p_run.add_argument("--t1", type=float, default=0.0)
    p_run.add_argument("--t2", type=float, default=6.0)
    p_run.add_argument("--delivery-prob", type=float, default=1.0)
    p_run.add_argument("--target", type=float, default=1e-5,
                       help="target relative error")
    p_run.add_argument("--max-time", type=float, default=1000.0)

    p_sum = sub.add_parser("summary", help="describe a generated crawl")
    add_workload(p_sum)

    p_all = sub.add_parser("all", help="run the full reproduction suite")
    add_workload(p_all)
    p_all.add_argument(
        "--only",
        type=lambda s: [x for x in s.split(",") if x],
        default=None,
        help="comma-separated experiment names (default: all)",
    )
    p_all.add_argument("--out", default=None, help="directory for result tables")

    return parser


def _make_graph(args):
    from repro.graph import google_contest_like

    return google_contest_like(args.pages, min(args.sites, args.pages), seed=args.seed)


def cmd_fig6(args) -> int:
    from repro.experiments import run_fig6

    result = run_fig6(_make_graph(args), n_groups=args.groups, max_time=args.max_time)
    print(result.format())
    return 0


def cmd_fig7(args) -> int:
    from repro.experiments import run_fig7

    result = run_fig7(_make_graph(args), n_groups=args.groups, max_time=args.max_time)
    print(result.format())
    return 0 if all(result.monotone.values()) else 1


def cmd_fig8(args) -> int:
    from repro.experiments import run_fig8

    result = run_fig8(_make_graph(args), ks=args.ks, max_time=args.max_time)
    print(result.format())
    return 0


def cmd_table1(args) -> int:
    from repro.experiments import run_table1

    result = run_table1(ns=args.ns, hop_samples=args.hop_samples)
    print(result.format())
    return 0


def cmd_run(args) -> int:
    from repro.core import run_distributed_pagerank

    graph = _make_graph(args)
    result = run_distributed_pagerank(
        graph,
        n_groups=args.groups,
        algorithm=args.algorithm,
        partition_strategy=args.partition,
        overlay=args.overlay,
        transport=args.transport,
        t1=args.t1,
        t2=args.t2,
        delivery_prob=args.delivery_prob,
        seed=args.seed,
        target_relative_error=args.target,
        max_time=args.max_time,
    )
    rows = [
        ("converged", str(result.converged)),
        ("time to target", str(result.time_to_target)),
        ("final relative error", f"{result.final_relative_error:.3e}"),
        ("outer iterations (max)", result.max_outer_iterations),
        ("inner sweeps (max)", result.max_inner_sweeps),
        ("messages", result.traffic.total_messages),
        ("bytes", result.traffic.total_bytes),
        ("updates dropped", result.dropped_updates),
    ]
    print(format_table(["metric", "value"], rows, title="distributed run"))
    return 0 if result.converged else 1


def cmd_summary(args) -> int:
    from repro.graph import summarize

    summary = summarize(_make_graph(args))
    rows = [(k, v) for k, v in summary.as_dict().items()]
    print(format_table(["statistic", "value"], rows, title="crawl summary"))
    return 0


def cmd_all(args) -> int:
    """Run every experiment and print/write the combined report."""
    from repro.experiments import ExperimentScale, run_all

    scale = ExperimentScale(
        n_pages=args.pages, n_sites=min(args.sites, args.pages), seed=args.seed
    )
    report = run_all(scale=scale, only=args.only, out_dir=args.out)
    print(report.format())
    return 0


COMMANDS = {
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "table1": cmd_table1,
    "run": cmd_run,
    "summary": cmd_summary,
    "all": cmd_all,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
