"""Distributed page ranking — the paper's core contribution.

Layered as the paper presents it:

* :mod:`~repro.core.pagerank` — Algorithm 1, classic centralized
  PageRank (both the paper's literal renormalizing loop and the
  open-system fixed point used as the distributed reference, "CPR").
* :mod:`~repro.core.open_system` — §3's Open System PageRank:
  per-group operators and Algorithm 2 (``GroupPageRank``).
* :mod:`~repro.core.dpr` — §4.2's DPR1 and DPR2 node state machines
  (pure computation, no networking).
* :mod:`~repro.core.ranker` — a page ranker as a simulator process:
  wake on an exponential timer, refresh X, compute, emit Y, sleep.
* :mod:`~repro.core.coordinator` — builds the whole distributed
  system (graph → partition → blocks → overlay → transport → rankers)
  and runs it to convergence, producing the traces behind Figs 6–8.
* :mod:`~repro.core.engine` — the flat bulk-synchronous execution
  engine: whole-system block SpMV rounds with analytically accounted
  traffic, bit-identical to the event engine's synchronous schedule.
* :mod:`~repro.core.convergence` — relative-error/monotonicity
  instrumentation (Theorems 4.1/4.2 checks).
* :mod:`~repro.core.recovery` — checkpointing and heartbeat-triggered
  takeover of permanently crashed rankers (§4.2's "shutdown" made
  survivable).
"""

from repro.core.pagerank import (
    PageRankResult,
    pagerank_algorithm1,
    pagerank_open,
    iterations_to_relative_error,
)
from repro.core.open_system import GroupSystem, group_pagerank
from repro.core.hits import HITSResult, hits
from repro.core.dpr import DPRNode
from repro.core.ranker import PageRanker
from repro.core.convergence import (
    ConvergenceTrace,
    Monitor,
    is_monotone_nondecreasing,
)
from repro.core.coordinator import (
    DistributedConfig,
    DistributedRun,
    RunResult,
    assemble_run_result,
    run_distributed_pagerank,
)
from repro.core.engine import SynchronousEngine

__all__ = [
    "PageRankResult",
    "pagerank_algorithm1",
    "pagerank_open",
    "iterations_to_relative_error",
    "GroupSystem",
    "group_pagerank",
    "HITSResult",
    "hits",
    "DPRNode",
    "PageRanker",
    "ConvergenceTrace",
    "Monitor",
    "is_monotone_nondecreasing",
    "DistributedConfig",
    "DistributedRun",
    "RunResult",
    "assemble_run_result",
    "run_distributed_pagerank",
    "SynchronousEngine",
]
