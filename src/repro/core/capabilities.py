"""Engine capability registry.

Four execution engines share one :class:`~repro.core.coordinator.
DistributedConfig`, and each supports a different slice of it: the
event engine simulates everything, the flat engine trades generality
for whole-system kernels, the hybrid engine recovers the fault and
async features on top of the flat kernels, and the Monte-Carlo engine
replaces the iteration entirely.  Scattering those constraints as ad
hoc ``raise ValueError`` sites (the pre-registry state of
``DistributedConfig.__post_init__``) meant every new engine re-derived
the feature list and no rejection message could say *which* engine the
user should switch to.

This module is the single source of truth instead:

* :data:`FEATURES` — every config feature an engine may lack, each
  with a predicate that decides whether a given config requests it;
* :data:`ENGINES` — one :class:`EngineProfile` per engine declaring
  its supported schedules, features, and sampling discipline;
* :func:`validate_config` — the table-driven check
  ``DistributedConfig.__post_init__`` delegates to, whose error
  messages name the engines that *do* support the offending feature;
* :func:`resolve_engine` — the default-on dispatch rule: a ``flat``
  request whose config needs features only the hybrid engine has
  (faults, async schedule) silently resolves to ``hybrid``, so the
  fast path stays the default instead of a separate opt-in.

Adding an engine or a feature means editing the two tables here; the
validation and dispatch logic never changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.coordinator import DistributedConfig

__all__ = [
    "CODEC_ENGINES",
    "ENGINES",
    "FEATURES",
    "EngineProfile",
    "codecs_supported",
    "engines_supporting",
    "requested_features",
    "resolve_engine",
    "unsupported_features",
    "validate_config",
]


@dataclass(frozen=True)
class Feature:
    """One optional config capability an engine may or may not have."""

    #: Stable identifier used in :class:`EngineProfile.features` sets.
    key: str
    #: Human-readable name used in rejection messages (matches the
    #: config field the user set).
    label: str
    #: True when a config requests this feature.
    requested: Callable[["DistributedConfig"], bool]


#: Every feature the engines differ on, in the order rejection
#: messages list them.  Chaos knobs are not listed separately: config
#: validation already forces them to ride on ``reliable``.
FEATURES: Tuple[Feature, ...] = (
    Feature(
        "loss", "delivery_prob < 1", lambda c: c.delivery_prob < 1.0
    ),
    Feature("reliable", "reliable", lambda c: c.reliable),
    Feature(
        "suppress", "suppress_tol", lambda c: c.suppress_tol > 0.0
    ),
    Feature("pause", "pause_faults", lambda c: c.pause_faults > 0),
    Feature("crash", "crash_prob", lambda c: c.crash_prob > 0.0),
    Feature(
        "heartbeat",
        "heartbeat_interval",
        lambda c: c.heartbeat_interval > 0.0,
    ),
    Feature(
        "checkpoint",
        "checkpoint_interval",
        lambda c: c.checkpoint_interval > 0.0,
    ),
    Feature("recovery", "recovery", lambda c: c.recovery),
    Feature(
        "x_delta", "x_mode='delta'", lambda c: c.x_mode == "delta"
    ),
    Feature(
        "vector_e",
        "vector-valued e",
        lambda c: isinstance(c.e, np.ndarray),
    ),
)

_FEATURE_BY_KEY: Dict[str, Feature] = {f.key: f for f in FEATURES}


@dataclass(frozen=True)
class EngineProfile:
    """What one execution engine supports.

    Attributes
    ----------
    name:
        The ``DistributedConfig.engine`` value.
    summary:
        One clause describing the engine's execution model, used as
        the lead-in of rejection messages.
    schedules:
        Supported ``DistributedConfig.schedule`` values.
    features:
        Keys into :data:`FEATURES` this engine supports.
    round_boundary_sampling:
        True when the engine only samples at round boundaries, so
        ``sample_interval`` must be a whole multiple of the
        synchronous period (the event engine samples at arbitrary
        times and is exempt).
    fidelity:
        The engine's accuracy contract relative to the event engine
        on the same config: ``"exact"`` (bit-identical where the
        config overlaps) or ``"approximate"`` (documented-tolerance
        equivalence; see DESIGN.md §13).
    """

    name: str
    summary: str
    schedules: Tuple[str, ...]
    features: frozenset
    round_boundary_sampling: bool
    fidelity: str


ENGINES: Dict[str, EngineProfile] = {
    profile.name: profile
    for profile in (
        EngineProfile(
            name="event",
            summary="simulates every message as a discrete event",
            schedules=("async", "sync"),
            features=frozenset(f.key for f in FEATURES),
            round_boundary_sampling=False,
            fidelity="exact",
        ),
        EngineProfile(
            name="flat",
            summary="runs failure-free bulk-synchronous rounds",
            schedules=("sync",),
            features=frozenset({"loss", "vector_e"}),
            round_boundary_sampling=True,
            fidelity="exact",
        ),
        EngineProfile(
            name="hybrid",
            summary=(
                "runs flat bulk-synchronous rounds over a persistent "
                "fault plane"
            ),
            schedules=("async", "sync"),
            # Everything except the node-internal delta-X maintenance,
            # which only exists inside DPRNode's running sum (the
            # hybrid re-sums afferent segments exactly; emulating the
            # delta drift would be approximating an approximation).
            features=frozenset(
                f.key for f in FEATURES if f.key != "x_delta"
            ),
            round_boundary_sampling=True,
            fidelity="approximate",
        ),
        EngineProfile(
            name="mc",
            summary="runs failure-free bulk-synchronous rounds",
            schedules=("sync",),
            features=frozenset(),
            round_boundary_sampling=True,
            fidelity="approximate",
        ),
    )
}


#: Codec × engine validity table (``DistributedConfig.codec``).  The
#: score engines all speak the delta codecs — the event engine encodes
#: in ``PageRanker._emit``, the flat/hybrid engines at their round
#: emit paths — while the Monte-Carlo engine ships walk tokens, not
#: score vectors: its frames are exact varint gap lists
#: (:func:`repro.net.codec.token_frame_bytes`), so the quantized
#: ``delta-q16`` codec has nothing to quantize and is rejected.
#: Cross-engine requirements (guaranteed delivery, no crash faults, no
#: ad-hoc ``suppress_tol``) are enforced by ``DistributedConfig``
#: itself — they restrict *configs*, not engines.
CODEC_ENGINES: Dict[str, Tuple[str, ...]] = {
    "none": ("event", "flat", "hybrid", "mc"),
    "delta": ("event", "flat", "hybrid", "mc"),
    "delta-q16": ("event", "flat", "hybrid"),
}


def codecs_supported(engine: str) -> List[str]:
    """Codec names valid for ``engine``, table order."""
    return [c for c, engines in CODEC_ENGINES.items() if engine in engines]


def engines_supporting(feature_key: str) -> List[str]:
    """Engine names supporting ``feature_key``, registry order."""
    return [
        name
        for name, profile in ENGINES.items()
        if feature_key in profile.features
    ]


def requested_features(config: "DistributedConfig") -> List[str]:
    """Keys of every feature ``config`` asks for, table order."""
    return [f.key for f in FEATURES if f.requested(config)]


def unsupported_features(
    config: "DistributedConfig", engine: str
) -> List[str]:
    """Requested feature keys the ``engine`` profile lacks."""
    profile = ENGINES[engine]
    return [
        key
        for key in requested_features(config)
        if key not in profile.features
    ]


def resolve_engine(config: "DistributedConfig") -> str:
    """Default-on dispatch: upgrade ``flat`` to ``hybrid`` when needed.

    A config that names the flat engine but requests fault features or
    the async schedule resolves to the hybrid engine, *provided* the
    hybrid supports everything requested — otherwise the flat name is
    kept so validation points at the event engine instead of failing
    twice.  Every other engine name resolves to itself: the dispatch
    is a fast-path default, not a general fallback chain (asking for
    ``mc`` with faults is a contradiction to report, not to paper
    over).
    """
    if config.engine != "flat":
        return config.engine
    needs_hybrid = config.schedule != "sync" or unsupported_features(
        config, "flat"
    )
    if not needs_hybrid:
        return "flat"
    if config.schedule in ENGINES["hybrid"].schedules and not (
        unsupported_features(config, "hybrid")
    ):
        return "hybrid"
    return "flat"


def validate_config(config: "DistributedConfig") -> None:
    """Registry-driven engine/schedule/feature validation.

    Raises ``ValueError`` with a message naming both the offending
    features and the engines that support them.
    """
    profile = ENGINES.get(config.engine)
    if profile is None:
        raise ValueError(
            f"engine must be one of {tuple(sorted(ENGINES))}, "
            f"got {config.engine!r}"
        )
    if config.schedule not in profile.schedules:
        supporters = [
            name
            for name, p in ENGINES.items()
            if config.schedule in p.schedules
        ]
        raise ValueError(
            f"engine={config.engine!r} implements only "
            f"schedule={profile.schedules[0]!r}; "
            f"schedule={config.schedule!r} is supported by "
            f"engines: {', '.join(supporters)}"
        )
    codec = getattr(config, "codec", "none")
    if codec not in CODEC_ENGINES:
        raise ValueError(
            f"codec must be one of {tuple(CODEC_ENGINES)}, got {codec!r}"
        )
    if config.engine not in CODEC_ENGINES[codec]:
        raise ValueError(
            f"engine={config.engine!r} does not support codec={codec!r} "
            f"(supported by: {', '.join(CODEC_ENGINES[codec])})"
        )
    unsupported = unsupported_features(config, config.engine)
    if unsupported:
        parts = []
        for key in unsupported:
            feature = _FEATURE_BY_KEY[key]
            supporters = engines_supporting(key)
            parts.append(
                f"{feature.label} (supported by: "
                f"{', '.join(supporters)})"
            )
        raise ValueError(
            f"engine={config.engine!r} {profile.summary} "
            f"and does not support: {'; '.join(parts)}"
        )
