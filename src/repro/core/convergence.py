"""Convergence instrumentation.

The paper's experiments track two global time series:

* **relative error** ``‖R − R*‖₁ / ‖R*‖₁`` against the centralized
  solution (Fig 6) — decreasing toward 0;
* **average rank** (Fig 7) — for DPR1 with ``R0 = 0`` this is monotone
  non-decreasing (Theorem 4.1) and bounded (Theorem 4.2), plateauing
  below ``E`` because of the open-system leak.

:class:`Monitor` samples both at a fixed cadence on the simulator and
drives convergence-triggered termination.  The module also provides
the monotonicity checker used to *test* Theorems 4.1/4.2 empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.open_system import GroupSystem
from repro.linalg.norms import relative_l1_error
from repro.net.bandwidth import TrafficAccountant
from repro.net.simulator import Simulator

__all__ = ["ConvergenceTrace", "Monitor", "is_monotone_nondecreasing"]


def is_monotone_nondecreasing(values: Sequence[float], *, tol: float = 1e-9) -> bool:
    """True if the sequence never decreases by more than ``tol``.

    The tolerance absorbs floating-point noise; Theorem 4.1's claim is
    exact in real arithmetic.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size < 2:
        return True
    return bool((np.diff(arr) >= -tol).all())


@dataclass
class ConvergenceTrace:
    """Sampled global time series of one distributed run."""

    times: List[float] = field(default_factory=list)
    relative_errors: List[float] = field(default_factory=list)
    mean_ranks: List[float] = field(default_factory=list)
    max_outer_iterations: List[int] = field(default_factory=list)
    mean_outer_iterations: List[float] = field(default_factory=list)
    total_messages: List[int] = field(default_factory=list)
    total_bytes: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.times)

    def time_to_error(self, threshold: float) -> Optional[float]:
        """First sample time at which the relative error ≤ threshold."""
        for t, err in zip(self.times, self.relative_errors):
            if err <= threshold:
                return t
        return None

    def final_error(self) -> float:
        """Relative error at the last sample (inf if never sampled)."""
        return self.relative_errors[-1] if self.relative_errors else float("inf")

    def as_arrays(self) -> dict:
        """Columns as numpy arrays (for plotting / bench reporting)."""
        return {
            "time": np.asarray(self.times),
            "relative_error": np.asarray(self.relative_errors),
            "mean_rank": np.asarray(self.mean_ranks),
            "max_outer_iterations": np.asarray(self.max_outer_iterations),
            "mean_outer_iterations": np.asarray(self.mean_outer_iterations),
            "total_messages": np.asarray(self.total_messages),
            "total_bytes": np.asarray(self.total_bytes),
        }


class Monitor:
    """Periodic global sampler running inside the simulation.

    The monitor is *omniscient* — it reads every ranker's current local
    vector without network cost.  That matches the paper's methodology:
    the error curves of Figs 6–8 are measured by the experimenter, not
    by the protocol.

    Parameters
    ----------
    target_relative_error:
        When set, :attr:`reached_target` flips as soon as a sample
        meets the threshold; the coordinator uses it to stop the run.
    quiescence_delta:
        When set, enables *reference-free* termination detection: the
        run is declared quiescent once every ranker has iterated at
        least once and every ranker's last outer-step change
        ``‖ΔR‖₁`` stays at or below this value for
        ``quiescence_samples`` consecutive samples.  Theorem 3.3 turns
        each node's step delta into a bound on its distance to the
        local fixed point, so small deltas everywhere (with no larger
        afferent updates arriving between samples) certify global
        convergence — this is the termination rule the paper's
        ``while true`` loops leave unspecified.
    """

    def __init__(
        self,
        sim: Simulator,
        system: GroupSystem,
        rankers: Sequence,
        reference: np.ndarray,
        *,
        interval: float = 1.0,
        accountant: Optional[TrafficAccountant] = None,
        target_relative_error: Optional[float] = None,
        quiescence_delta: Optional[float] = None,
        quiescence_samples: int = 3,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        if quiescence_samples < 1:
            raise ValueError("quiescence_samples must be >= 1")
        self.sim = sim
        self.system = system
        # Deliberately NOT copied: the recovery layer swaps replacement
        # rankers into the live list in place, and the monitor must
        # sample the current occupant of each group, not a stale one.
        self.rankers = rankers
        self.reference = np.asarray(reference, dtype=np.float64)
        self.interval = float(interval)
        self.accountant = accountant
        self.target = target_relative_error
        self.quiescence_delta = quiescence_delta
        self.quiescence_samples = int(quiescence_samples)
        self.trace = ConvergenceTrace()
        self.reached_target = False
        self.target_time: Optional[float] = None
        self.reached_quiescence = False
        self.quiescence_time: Optional[float] = None
        self._quiet_streak = 0
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Take a t=0 sample and begin the sampling cadence."""
        self._sample()

    def stop(self) -> None:
        """Stop scheduling further samples."""
        self._stopped = True

    def current_ranks(self) -> np.ndarray:
        """Assemble the instantaneous global rank vector."""
        return self.system.assemble([rk.node.r for rk in self.rankers])

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        if self._stopped:
            return
        ranks = self.current_ranks()
        err = relative_l1_error(ranks, self.reference)
        self.trace.times.append(self.sim.now)
        self.trace.relative_errors.append(err)
        self.trace.mean_ranks.append(float(ranks.mean()) if ranks.size else 0.0)
        outer = [rk.node.outer_iterations for rk in self.rankers]
        self.trace.max_outer_iterations.append(max(outer, default=0))
        self.trace.mean_outer_iterations.append(
            float(np.mean(outer)) if outer else 0.0
        )
        if self.accountant is not None:
            snap = self.accountant.snapshot(self.sim.now)
            self.trace.total_messages.append(snap.total_messages)
            self.trace.total_bytes.append(snap.total_bytes)
        else:
            self.trace.total_messages.append(0)
            self.trace.total_bytes.append(0)
        if self.target is not None and err <= self.target and not self.reached_target:
            self.reached_target = True
            self.target_time = self.sim.now
        if self.quiescence_delta is not None and not self.reached_quiescence:
            quiet = all(
                rk.node.outer_iterations > 0
                and rk.node.last_step_delta <= self.quiescence_delta
                for rk in self.rankers
            )
            self._quiet_streak = self._quiet_streak + 1 if quiet else 0
            if self._quiet_streak >= self.quiescence_samples:
                self.reached_quiescence = True
                self.quiescence_time = self.sim.now
        if not self.reached_target and not self.reached_quiescence:
            self.sim.schedule(self.interval, self._sample)
