"""End-to-end orchestration of a distributed page-ranking run.

:func:`run_distributed_pagerank` is the package's main entry point: it
wires graph → partition → :class:`~repro.core.open_system.GroupSystem`
→ overlay → transport → rankers → monitor, runs the event simulation
until convergence (or a time budget), and returns a
:class:`RunResult` carrying everything the paper's figures plot.

The experiment parameters mirror §5 exactly: ``K`` page groups, wait
means drawn from ``[T1, T2]``, per-node exponential waits, delivery
probability ``p``, and the 0.01% relative-error threshold of Fig 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.convergence import ConvergenceTrace, Monitor
from repro.core.dpr import DPRNode
from repro.core.open_system import GroupSystem
from repro.core.ranker import PageRanker
from repro.graph.partition import Partition, make_partition
from repro.graph.webgraph import WebGraph
from repro.net.bandwidth import TrafficAccountant, TrafficSnapshot
from repro.net.failures import BernoulliLoss, NodePauseInjector, NoLoss
from repro.net.latency import FixedLatency
from repro.net.simulator import Simulator
from repro.net.transport import build_transport
from repro.overlay import build_overlay
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_probability,
)

__all__ = ["DistributedConfig", "DistributedRun", "RunResult", "run_distributed_pagerank"]


@dataclass
class DistributedConfig:
    """Parameters of one distributed page-ranking experiment.

    Field names follow the paper: ``n_groups`` is K, ``t1``/``t2``
    bound the per-group mean waits, ``delivery_prob`` is p.
    """

    n_groups: int = 16
    algorithm: str = "dpr1"  # "dpr1" | "dpr2"
    alpha: float = 0.85
    partition_strategy: str = "site"  # "site" | "url" | "random" | "contiguous"
    overlay: str = "pastry"  # "pastry" | "chord" | "can"
    transport: str = "indirect"  # "indirect" | "direct"
    t1: float = 0.0
    t2: float = 6.0
    delivery_prob: float = 1.0
    local_tol: float = 1e-10
    max_inner: int = 1000
    inner_solver: str = "jacobi"  # "jacobi" | "gauss_seidel" (DPR1 only)
    #: Running afferent-sum maintenance policy per node: "exact"
    #: (bit-reproducible, the default) or "delta" (O(changed) updates;
    #: see repro.core.dpr module docs for the tradeoff).
    x_mode: str = "exact"
    hop_delay: float = 0.5
    aggregation_delay: float = 0.25
    suppress_tol: float = 0.0
    e: Union[float, np.ndarray, None] = None
    sample_interval: float = 1.0
    seed: int = 0
    #: Explicit per-ranker mean waits (length ``n_groups``); overrides
    #: the uniform [t1, t2] draw.  Lets experiments model deliberate
    #: stragglers / heterogeneous hardware.
    mean_waits: Optional[Sequence[float]] = None

    def __post_init__(self) -> None:
        if self.n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if self.algorithm not in ("dpr1", "dpr2"):
            raise ValueError("algorithm must be 'dpr1' or 'dpr2'")
        if self.x_mode not in ("exact", "delta"):
            raise ValueError("x_mode must be 'exact' or 'delta'")
        check_fraction(self.alpha, "alpha")
        check_non_negative(self.t1, "t1")
        check_non_negative(self.t2, "t2")
        if self.t2 < self.t1:
            raise ValueError("t2 must be >= t1")
        check_probability(self.delivery_prob, "delivery_prob")
        check_non_negative(self.hop_delay, "hop_delay")
        check_non_negative(self.aggregation_delay, "aggregation_delay")
        if self.mean_waits is not None:
            if len(self.mean_waits) != self.n_groups:
                raise ValueError(
                    f"mean_waits has {len(self.mean_waits)} entries for "
                    f"{self.n_groups} groups"
                )
            if any(w < 0 for w in self.mean_waits):
                raise ValueError("mean_waits must be non-negative")


@dataclass
class RunResult:
    """Everything a finished run reports.

    Attributes
    ----------
    ranks:
        Final global rank vector (assembled from the groups).
    reference:
        The centralized solution ``R*`` the run was measured against.
    trace:
        Sampled time series (Fig 6/7 material).
    converged:
        True when the target relative error was reached.
    time_to_target:
        Simulated time of first reaching the target (None otherwise).
    outer_iterations, inner_sweeps:
        Per-group loop/sweep counts at the end of the run.
    traffic:
        Final cumulative traffic snapshot.
    dropped_updates:
        Updates suppressed by the loss model.
    quiescent, quiescence_time:
        Whether/when reference-free termination detection fired (only
        meaningful when the run was started with ``quiescence_delta``).
    """

    ranks: np.ndarray
    reference: np.ndarray
    trace: ConvergenceTrace
    converged: bool
    time_to_target: Optional[float]
    outer_iterations: np.ndarray
    inner_sweeps: np.ndarray
    traffic: TrafficSnapshot
    dropped_updates: int
    quiescent: bool = False
    quiescence_time: Optional[float] = None
    config: DistributedConfig = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def final_relative_error(self) -> float:
        return self.trace.final_error()

    @property
    def max_outer_iterations(self) -> int:
        return int(self.outer_iterations.max()) if self.outer_iterations.size else 0

    @property
    def max_inner_sweeps(self) -> int:
        return int(self.inner_sweeps.max()) if self.inner_sweeps.size else 0


class DistributedRun:
    """A fully wired distributed page-ranking system, ready to run.

    Splitting construction from :meth:`run` lets tests and examples
    poke at the assembled parts (rankers, transport, overlay) and
    inject faults before or during execution.
    """

    def __init__(
        self,
        graph: WebGraph,
        config: DistributedConfig,
        *,
        partition: Optional[Partition] = None,
        reference: Optional[np.ndarray] = None,
    ):
        self.graph = graph
        self.config = config
        seeds = SeedSequenceFactory(config.seed)

        self.partition = (
            partition
            if partition is not None
            else make_partition(
                graph,
                config.n_groups,
                config.partition_strategy,
                seed=seeds.seed("partition"),
            )
        )
        if self.partition.n_groups != config.n_groups:
            raise ValueError("partition n_groups disagrees with config")

        self.system = GroupSystem(
            graph, self.partition, alpha=config.alpha, e=config.e
        )
        self.reference = (
            np.asarray(reference, dtype=np.float64)
            if reference is not None
            else self.system.solve_exact()
        )

        self.sim = Simulator()
        self.overlay = build_overlay(
            config.overlay, config.n_groups, seed=seeds.seed("overlay") % (2**31)
        )
        self.accountant = TrafficAccountant(config.n_groups)
        loss = (
            NoLoss()
            if config.delivery_prob >= 1.0
            else BernoulliLoss(config.delivery_prob, seed=seeds.generator("loss"))
        )
        transport_kwargs = {}
        if config.transport == "indirect":
            transport_kwargs["aggregation_delay"] = config.aggregation_delay
        self.transport = build_transport(
            config.transport,
            self.sim,
            self.overlay,
            self.accountant,
            loss=loss,
            latency=FixedLatency(config.hop_delay),
            **transport_kwargs,
        )

        wait_rng = seeds.generator("wait-means")
        self.rankers: List[PageRanker] = []
        for g in range(config.n_groups):
            node = DPRNode(
                g,
                self.system.diag(g),
                self.system.beta_e[g],
                mode=config.algorithm,
                local_tol=config.local_tol,
                max_inner=config.max_inner,
                inner_solver=config.inner_solver,
                x_mode=config.x_mode,
            )
            mean_wait = (
                float(config.mean_waits[g])
                if config.mean_waits is not None
                else float(wait_rng.uniform(config.t1, config.t2))
            )
            ranker = PageRanker(
                self.sim,
                node,
                self.system,
                self.transport,
                mean_wait=mean_wait,
                seed=seeds.generator(f"wait/{g}"),
                suppress_tol=config.suppress_tol,
            )
            self.rankers.append(ranker)
        self.transport.attach(self._deliver)
        self.monitor: Optional[Monitor] = None

    # ------------------------------------------------------------------
    def _deliver(self, dst_group: int, update) -> None:
        self.rankers[dst_group].receive(update)

    def install_pause_injector(self, injector: NodePauseInjector) -> None:
        """Add node churn to the run (must be called before :meth:`run`)."""
        injector.install(self.sim, self.rankers)

    def run(
        self,
        *,
        max_time: float = 1000.0,
        target_relative_error: Optional[float] = None,
        quiescence_delta: Optional[float] = None,
    ) -> RunResult:
        """Execute the simulation and gather results.

        The run stops at the first of: the target relative error being
        reached (sampled at ``config.sample_interval``), system-wide
        quiescence (when ``quiescence_delta`` is set — the
        reference-free termination rule; see
        :class:`~repro.core.convergence.Monitor`), or simulated time
        ``max_time``.
        """
        cfg = self.config
        self.monitor = Monitor(
            self.sim,
            self.system,
            self.rankers,
            self.reference,
            interval=cfg.sample_interval,
            accountant=self.accountant,
            target_relative_error=target_relative_error,
            quiescence_delta=quiescence_delta,
        )
        self.monitor.start()
        for ranker in self.rankers:
            ranker.start()
        monitor = self.monitor
        stop = None
        if target_relative_error is not None or quiescence_delta is not None:
            def stop() -> bool:
                return monitor.reached_target or monitor.reached_quiescence
        self.sim.run(until=max_time, stop_condition=stop)
        self.monitor.stop()

        ranks = self.monitor.current_ranks()
        return RunResult(
            ranks=ranks,
            reference=self.reference,
            trace=self.monitor.trace,
            converged=self.monitor.reached_target,
            time_to_target=self.monitor.target_time,
            outer_iterations=np.array(
                [rk.node.outer_iterations for rk in self.rankers], dtype=np.int64
            ),
            inner_sweeps=np.array(
                [rk.node.inner_sweeps for rk in self.rankers], dtype=np.int64
            ),
            traffic=self.accountant.snapshot(self.sim.now),
            dropped_updates=self.transport.dropped_updates,
            quiescent=self.monitor.reached_quiescence,
            quiescence_time=self.monitor.quiescence_time,
            config=cfg,
        )


def run_distributed_pagerank(
    graph: WebGraph,
    config: Optional[DistributedConfig] = None,
    *,
    partition: Optional[Partition] = None,
    reference: Optional[np.ndarray] = None,
    max_time: float = 1000.0,
    target_relative_error: Optional[float] = None,
    quiescence_delta: Optional[float] = None,
    **config_overrides,
) -> RunResult:
    """One-call distributed PageRank.

    Keyword overrides are applied on top of ``config`` (or the
    defaults), e.g.::

        result = run_distributed_pagerank(
            graph, n_groups=100, algorithm="dpr2", delivery_prob=0.7,
            t1=0, t2=15, target_relative_error=1e-4,
        )
    """
    if config is None:
        config = DistributedConfig(**config_overrides)
    elif config_overrides:
        from dataclasses import replace

        config = replace(config, **config_overrides)
    run = DistributedRun(graph, config, partition=partition, reference=reference)
    return run.run(
        max_time=max_time,
        target_relative_error=target_relative_error,
        quiescence_delta=quiescence_delta,
    )
