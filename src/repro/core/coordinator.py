"""End-to-end orchestration of a distributed page-ranking run.

:func:`run_distributed_pagerank` is the package's main entry point: it
wires graph → partition → :class:`~repro.core.open_system.GroupSystem`
→ overlay → transport → rankers → monitor, runs the event simulation
until convergence (or a time budget), and returns a
:class:`RunResult` carrying everything the paper's figures plot.

The experiment parameters mirror §5 exactly: ``K`` page groups, wait
means drawn from ``[T1, T2]``, per-node exponential waits, delivery
probability ``p``, and the 0.01% relative-error threshold of Fig 8.
"""

from __future__ import annotations

import math
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.capabilities import ENGINES, resolve_engine, validate_config
from repro.core.convergence import ConvergenceTrace, Monitor
from repro.core.dpr import DPRNode
from repro.core.open_system import GroupSystem
from repro.core.ranker import MIN_MEAN_WAIT, PageRanker
from repro.core.recovery import Checkpointer, CheckpointStore, RecoveryManager
from repro.graph.partition import Partition, make_partition
from repro.graph.webgraph import WebGraph
from repro.net.bandwidth import TrafficAccountant, TrafficSnapshot
from repro.net.failures import (
    BernoulliLoss,
    ChaosModel,
    NodeCrashInjector,
    NodePauseInjector,
    NoLoss,
)
from repro.net.heartbeat import HeartbeatMonitor
from repro.net.latency import FixedLatency
from repro.net.reliable import ReliableTransport, RetryPolicy
from repro.net.simulator import Simulator
from repro.net.transport import build_transport
from repro.overlay import build_overlay
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_probability,
)

__all__ = [
    "DistributedConfig",
    "DistributedRun",
    "RunResult",
    "assemble_run_result",
    "run_distributed_pagerank",
]


@dataclass
class DistributedConfig:
    """Parameters of one distributed page-ranking experiment.

    Field names follow the paper: ``n_groups`` is K, ``t1``/``t2``
    bound the per-group mean waits, ``delivery_prob`` is p.
    """

    n_groups: int = 16
    algorithm: str = "dpr1"  # "dpr1" | "dpr2"
    #: Execution engine: "event" replays every message on the
    #: discrete-event simulator; "flat" runs the same outer loops as
    #: whole-system block SpMVs with analytically accounted traffic
    #: (see :mod:`repro.core.engine`).  Under the synchronous schedule
    #: the two produce bit-identical ranks and identical traffic.
    #: "hybrid" keeps the flat kernels but runs the fault-tolerance
    #: stack (ARQ, churn, heartbeat, checkpoint/recovery) and the
    #: async schedule on a persistent event-simulated fault plane
    #: (see :mod:`repro.core.hybrid`); a "flat" request that needs
    #: those features resolves to "hybrid" automatically
    #: (:func:`repro.core.capabilities.resolve_engine`).
    #: "mc" replaces the Jacobi iteration entirely with the seeded
    #: Monte-Carlo random-walk estimator (Das Sarma et al.; see
    #: :mod:`repro.linalg.montecarlo`): statistically-toleranced
    #: ranks in O(log n) rounds, with cut-crossing walk tokens as the
    #: per-round messages.  Per-engine capabilities live in the
    #: :mod:`repro.core.capabilities` registry.
    engine: str = "event"
    #: Wake scheduling of the *event* engine: "async" draws
    #: exponential waits (the paper's timing model); "sync" makes
    #: every ranker tick at the common fixed period
    #: ``max((t1+t2)/2, MIN_MEAN_WAIT)`` — the bulk-synchronous
    #: schedule the flat engine reproduces exactly.
    schedule: str = "async"
    alpha: float = 0.85
    partition_strategy: str = "site"  # "site" | "url" | "random" | "contiguous"
    overlay: str = "pastry"  # "pastry" | "chord" | "can"
    transport: str = "indirect"  # "indirect" | "direct"
    t1: float = 0.0
    t2: float = 6.0
    delivery_prob: float = 1.0
    local_tol: float = 1e-10
    max_inner: int = 1000
    inner_solver: str = "jacobi"  # "jacobi" | "gauss_seidel" (DPR1 only)
    #: Running afferent-sum maintenance policy per node: "exact"
    #: (bit-reproducible, the default) or "delta" (O(changed) updates;
    #: see repro.core.dpr module docs for the tradeoff).
    x_mode: str = "exact"
    hop_delay: float = 0.5
    aggregation_delay: float = 0.25
    suppress_tol: float = 0.0
    #: Canonical name for the delta-suppression threshold (promoted
    #: from the compression ablation): skip sending a pair's efferent
    #: vector when it moved less than this in L1 since the last send.
    #: Writes through to ``suppress_tol`` (the historical field, kept
    #: for compatibility); setting both to different values is an
    #: error.  Mutually exclusive with a wire codec, whose budgeted
    #: suppression subsumes this ad-hoc rule.
    send_threshold: float = 0.0
    #: Wire codec for cross-group score updates: "none" (paper byte
    #: model, the default), "delta" (varint index gaps + float32
    #: deltas), or "delta-q16" (float16 deltas).  See
    #: :mod:`repro.net.codec` / :mod:`repro.net.adaptive`; validity
    #: per engine lives in ``capabilities.CODEC_ENGINES``.  Requires
    #: guaranteed delivery (``delivery_prob == 1``; the reliable layer
    #: and chaos are fine) and no crash/recovery faults — delta
    #: sessions assume the receiver replays every frame in order.
    codec: str = "none"
    #: Total error budget ε_comm (L1 efferent mass) the codec may
    #: suppress across the whole run; 0 means lossless (every shipped
    #: frame is an exact flush, delivered values bit-identical to an
    #: uncompressed run).  Requires ``codec != "none"``.
    comm_epsilon: float = 0.0
    e: Union[float, np.ndarray, None] = None
    #: Monitor sampling cadence.  ``None`` resolves in
    #: ``__post_init__``: 1.0 for the event engine, the synchronous
    #: period for the flat engine.  The flat engine only accepts
    #: intervals that are whole multiples of the period — its samples
    #: land exactly on round boundaries, so any finer cadence would
    #: silently change trip ordering and final-round traffic relative
    #: to the event engine instead of staying bit-identical.
    sample_interval: Optional[float] = None
    seed: int = 0
    #: Explicit per-ranker mean waits (length ``n_groups``); overrides
    #: the uniform [t1, t2] draw.  Lets experiments model deliberate
    #: stragglers / heterogeneous hardware.
    mean_waits: Optional[Sequence[float]] = None

    # -- Monte-Carlo engine (engine="mc"; repro.linalg.montecarlo) -----
    #: Walk tokens launched per page — the estimator's R.  Relative L1
    #: error shrinks as 1/sqrt(walks_per_page); the documented bound is
    #: :func:`repro.linalg.montecarlo.mc_error_tolerance`.
    walks_per_page: int = 16
    #: Rank estimator: "terminate" credits a page per walk termination
    #: (one count per walk, lowest variance per count); "visit" credits
    #: every round a token spends on the page, scaled by 1−α.
    walk_mode: str = "terminate"
    #: Walk behaviour at zero-out-degree pages: "absorb" (open-system,
    #: matches the centralized reference) or "jump" (classic random
    #: jump; biased vs. the open-system fixed point — opt-in).
    dangling_mode: str = "absorb"

    # -- reliability layer (ACK/retry; see repro.net.reliable) ---------
    #: Wrap the transport in ReliableTransport (seq numbers, ACKs,
    #: timeout-driven retransmission, idempotent receive-side dedup).
    reliable: bool = False
    retry_timeout: float = 4.0
    retry_backoff: float = 2.0
    retry_jitter: float = 0.0
    retry_max_timeout: float = 60.0
    max_retries: int = 8

    # -- message chaos (requires ``reliable``; repro.net.failures) -----
    ack_loss_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_max_delay: float = 0.0

    # -- node churn ----------------------------------------------------
    #: Transient pause/resume churn (§4.2 "sleep/suspend"): number of
    #: injected faults, the window they start in, and the mean outage.
    pause_faults: int = 0
    pause_horizon: float = 20.0
    pause_mean_outage: float = 5.0
    #: Permanent crashes (§4.2 "even shutdown"): per-ranker crash
    #: probability, applied in the window [crash_after, crash_after +
    #: crash_horizon].
    crash_prob: float = 0.0
    crash_after: float = 10.0
    crash_horizon: float = 10.0

    # -- failure detection & recovery ----------------------------------
    #: Heartbeat sweep period (0 disables detection).
    heartbeat_interval: float = 0.0
    heartbeat_miss_threshold: int = 3
    #: Periodic DPRNode.state_dict snapshot period (0 disables).
    checkpoint_interval: float = 0.0
    #: Checkpoint-based takeover of detected-dead groups (requires
    #: ``heartbeat_interval > 0``).
    recovery: bool = False

    def __post_init__(self) -> None:
        if self.n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if self.algorithm not in ("dpr1", "dpr2"):
            raise ValueError("algorithm must be 'dpr1' or 'dpr2'")
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {tuple(sorted(ENGINES))}, "
                f"got {self.engine!r}"
            )
        if self.schedule not in ("async", "sync"):
            raise ValueError("schedule must be 'async' or 'sync'")
        if self.x_mode not in ("exact", "delta"):
            raise ValueError("x_mode must be 'exact' or 'delta'")
        if self.walks_per_page < 1:
            raise ValueError("walks_per_page must be >= 1")
        if self.walk_mode not in ("terminate", "visit"):
            raise ValueError("walk_mode must be 'terminate' or 'visit'")
        if self.dangling_mode not in ("absorb", "jump"):
            raise ValueError("dangling_mode must be 'absorb' or 'jump'")
        check_fraction(self.alpha, "alpha")
        check_non_negative(self.t1, "t1")
        check_non_negative(self.t2, "t2")
        if self.t2 < self.t1:
            raise ValueError("t2 must be >= t1")
        check_probability(self.delivery_prob, "delivery_prob")
        check_non_negative(self.hop_delay, "hop_delay")
        check_non_negative(self.aggregation_delay, "aggregation_delay")
        if self.mean_waits is not None:
            if len(self.mean_waits) != self.n_groups:
                raise ValueError(
                    f"mean_waits has {len(self.mean_waits)} entries for "
                    f"{self.n_groups} groups"
                )
            if any(w < 0 for w in self.mean_waits):
                raise ValueError("mean_waits must be non-negative")
        if self.schedule == "sync" and self.mean_waits is not None:
            raise ValueError(
                "the sync schedule derives one common wait from (t1+t2)/2; "
                "explicit mean_waits are only meaningful under schedule='async'"
            )
        # Promote the canonical send_threshold name into the historical
        # suppress_tol field (and mirror back) before any feature
        # predicate reads it.
        check_non_negative(self.send_threshold, "send_threshold")
        check_non_negative(self.suppress_tol, "suppress_tol")
        if self.send_threshold > 0.0:
            if (
                self.suppress_tol > 0.0
                and self.suppress_tol != self.send_threshold
            ):
                raise ValueError(
                    "send_threshold and suppress_tol name the same knob; "
                    f"got conflicting values {self.send_threshold!r} and "
                    f"{self.suppress_tol!r}"
                )
            self.suppress_tol = self.send_threshold
        else:
            self.send_threshold = self.suppress_tol
        # Default-on fast-path dispatch: a "flat" request whose config
        # needs faults or the async schedule resolves to the hybrid
        # engine (which runs those features on a persistent fault
        # plane) before any capability validation happens.
        self.engine = resolve_engine(self)
        period = max(0.5 * (self.t1 + self.t2), MIN_MEAN_WAIT)
        profile = ENGINES[self.engine]
        if self.sample_interval is None:
            self.sample_interval = (
                period if profile.round_boundary_sampling else 1.0
            )
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be > 0")
        if profile.round_boundary_sampling:
            ratio = self.sample_interval / period
            if ratio < 1.0 or not float(ratio).is_integer():
                if os.environ.get("REPRO_STRICT_SAMPLING", "1") == "0":
                    # Permissive mode: round the cadence up to the
                    # next round boundary instead of refusing to run.
                    rounded = max(1, math.ceil(ratio - 1e-12)) * period
                    warnings.warn(
                        f"engine={self.engine!r} samples at round "
                        f"boundaries: rounding sample_interval "
                        f"{self.sample_interval!r} up to {rounded!r} "
                        f"(the next multiple of the synchronous "
                        f"period {period!r}); set "
                        "REPRO_STRICT_SAMPLING=1 to make this an "
                        "error",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self.sample_interval = float(rounded)
                else:
                    raise ValueError(
                        f"engine={self.engine!r} samples at round "
                        "boundaries: sample_interval must be a whole "
                        "multiple of the synchronous period "
                        f"{period!r} (got {self.sample_interval!r}); "
                        "pass sample_interval=None to use the period "
                        "itself, or set REPRO_STRICT_SAMPLING=0 to "
                        "round up with a warning"
                    )
        # Engine capability validation is table-driven; rejection
        # messages name the engines that do support each feature
        # (see repro.core.capabilities), including the codec × engine
        # validity table.
        validate_config(self)
        # Cross-engine codec requirements: delta sessions assume every
        # frame is replayed in order at the receiver.
        check_non_negative(self.comm_epsilon, "comm_epsilon")
        if self.codec == "none" and self.comm_epsilon > 0.0:
            raise ValueError(
                "comm_epsilon is the wire codec's error budget; "
                "set codec='delta' or codec='delta-q16' to use it"
            )
        if self.codec != "none":
            if self.delivery_prob < 1.0:
                raise ValueError(
                    "a delta codec needs guaranteed delivery "
                    "(delivery_prob == 1): a lost frame breaks the "
                    "pair's delta chain; run reliable=True with chaos "
                    "knobs to model bad networks under a codec"
                )
            if self.suppress_tol > 0.0:
                raise ValueError(
                    "send_threshold/suppress_tol and a wire codec are "
                    "mutually exclusive: the codec's ε_comm budget "
                    "subsumes ad-hoc threshold suppression"
                )
            if self.crash_prob > 0.0 or self.recovery:
                raise ValueError(
                    "codec != 'none' does not support crash/recovery "
                    "faults: a takeover discards receiver codec state "
                    "mid-chain (resync handshakes are future work); "
                    "pause faults are fine"
                )
            if self.engine == "mc" and self.comm_epsilon > 0.0:
                raise ValueError(
                    "the mc engine's token frames are exact by "
                    "construction; comm_epsilon must stay 0"
                )
        # Reliability / fault-tolerance knobs.
        check_non_negative(self.retry_timeout, "retry_timeout")
        if self.retry_timeout <= 0:
            raise ValueError("retry_timeout must be > 0")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        check_non_negative(self.retry_jitter, "retry_jitter")
        if self.retry_max_timeout < self.retry_timeout:
            raise ValueError("retry_max_timeout must be >= retry_timeout")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        check_probability(self.ack_loss_prob, "ack_loss_prob")
        check_probability(self.duplicate_prob, "duplicate_prob")
        check_probability(self.reorder_prob, "reorder_prob")
        check_non_negative(self.reorder_max_delay, "reorder_max_delay")
        if not self.reliable and (
            self.ack_loss_prob > 0
            or self.duplicate_prob > 0
            or self.reorder_prob > 0
        ):
            raise ValueError(
                "ack_loss_prob/duplicate_prob/reorder_prob model the "
                "reliability layer's adversaries and require reliable=True"
            )
        if self.pause_faults < 0:
            raise ValueError("pause_faults must be >= 0")
        check_non_negative(self.pause_horizon, "pause_horizon")
        check_non_negative(self.pause_mean_outage, "pause_mean_outage")
        check_probability(self.crash_prob, "crash_prob")
        check_non_negative(self.crash_after, "crash_after")
        check_non_negative(self.crash_horizon, "crash_horizon")
        check_non_negative(self.heartbeat_interval, "heartbeat_interval")
        if self.heartbeat_miss_threshold < 1:
            raise ValueError("heartbeat_miss_threshold must be >= 1")
        check_non_negative(self.checkpoint_interval, "checkpoint_interval")
        if self.recovery and self.heartbeat_interval <= 0:
            raise ValueError(
                "recovery requires failure detection: set heartbeat_interval > 0"
            )


@dataclass
class RunResult:
    """Everything a finished run reports.

    Attributes
    ----------
    ranks:
        Final global rank vector (assembled from the groups).
    reference:
        The centralized solution ``R*`` the run was measured against.
    trace:
        Sampled time series (Fig 6/7 material).
    converged:
        True when the target relative error was reached.
    time_to_target:
        Simulated time of first reaching the target (None otherwise).
    outer_iterations, inner_sweeps:
        Per-group loop/sweep counts at the end of the run.
    traffic:
        Final cumulative traffic snapshot.
    dropped_updates:
        Updates suppressed by the loss model.
    quiescent, quiescence_time:
        Whether/when reference-free termination detection fired (only
        meaningful when the run was started with ``quiescence_delta``).
    retransmits, gave_up, dup_drops, dead_drops, acks_lost:
        Reliability-layer counters (zero when ``reliable`` is off):
        timeout-driven retransmissions, sends abandoned after the
        retry budget, receive-side duplicate suppressions, deliveries
        swallowed by dead groups, and chaos-destroyed ACKs.
    crashed_groups, deaths_detected, takeovers, checkpoint_saves:
        Fault/recovery counters: permanent crashes injected, heartbeat
        death declarations, checkpoint-restored takeovers performed,
        and checkpoints written.
    fidelity:
        The engine's accuracy contract for *this* run: ``"exact"``
        (bit-identical to the event engine on the same config) or
        ``"approximate"`` (documented-tolerance equivalence — compare
        ``final_relative_error`` against the tolerance in DESIGN.md
        §13).  The hybrid engine reports ``"exact"`` when the config
        let it run the pure flat path and ``"approximate"`` when the
        fault plane or async schedule was engaged.
    fast_rounds, replayed_rounds:
        Hybrid round-split counters: rounds executed purely as flat
        sparse kernels vs. rounds whose messaging was replayed through
        the persistent event-simulated fault plane.  Both zero for the
        other engines.
    codec_stats:
        Wire-codec session counters (``None`` when ``codec="none"``):
        frames shipped / suppressed / exact-flushed, entries sent, the
        outstanding residual mass, and the certified rank-deviation
        bound ``ε_comm / (1 − α)`` (see :mod:`repro.net.adaptive`).
        Calibrated vs paper bytes live on :attr:`traffic`
        (``data_bytes`` vs ``paper_data_bytes``).
    """

    ranks: np.ndarray
    reference: np.ndarray
    trace: ConvergenceTrace
    converged: bool
    time_to_target: Optional[float]
    outer_iterations: np.ndarray
    inner_sweeps: np.ndarray
    traffic: TrafficSnapshot
    dropped_updates: int
    quiescent: bool = False
    quiescence_time: Optional[float] = None
    retransmits: int = 0
    gave_up: int = 0
    dup_drops: int = 0
    dead_drops: int = 0
    acks_lost: int = 0
    crashed_groups: int = 0
    deaths_detected: int = 0
    takeovers: int = 0
    checkpoint_saves: int = 0
    fidelity: str = "exact"
    fast_rounds: int = 0
    replayed_rounds: int = 0
    codec_stats: Optional[Dict[str, float]] = None
    config: DistributedConfig = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def final_relative_error(self) -> float:
        return self.trace.final_error()

    @property
    def max_outer_iterations(self) -> int:
        return int(self.outer_iterations.max()) if self.outer_iterations.size else 0

    @property
    def max_inner_sweeps(self) -> int:
        return int(self.inner_sweeps.max()) if self.inner_sweeps.size else 0


def assemble_run_result(
    *,
    ranks: np.ndarray,
    reference: np.ndarray,
    trace: ConvergenceTrace,
    converged: bool,
    time_to_target: Optional[float],
    outer_iterations: np.ndarray,
    inner_sweeps: np.ndarray,
    accountant: TrafficAccountant,
    now: float,
    dropped_updates: int,
    config: DistributedConfig,
    quiescent: bool = False,
    quiescence_time: Optional[float] = None,
    fidelity: str = "exact",
    **counters: int,
) -> RunResult:
    """Build a :class:`RunResult` from one finished run's pieces.

    This is the single reporting path shared by the event engine
    (:class:`DistributedRun`) and the flat engine
    (:class:`~repro.core.engine.SynchronousEngine`): the traffic
    snapshot is taken here, from the one :class:`TrafficAccountant`
    both engines feed, so reported totals always come out of the same
    counter arithmetic.  Reliability/fault counters that an engine
    does not track (the flat engine runs failure-free) default to 0
    via ``counters``.
    """
    return RunResult(
        ranks=ranks,
        reference=reference,
        trace=trace,
        converged=converged,
        time_to_target=time_to_target,
        outer_iterations=outer_iterations,
        inner_sweeps=inner_sweeps,
        traffic=accountant.snapshot(now),
        dropped_updates=dropped_updates,
        quiescent=quiescent,
        quiescence_time=quiescence_time,
        fidelity=fidelity,
        config=config,
        **counters,
    )


class DistributedRun:
    """A fully wired distributed page-ranking system, ready to run.

    Splitting construction from :meth:`run` lets tests and examples
    poke at the assembled parts (rankers, transport, overlay) and
    inject faults before or during execution.
    """

    def __init__(
        self,
        graph: WebGraph,
        config: DistributedConfig,
        *,
        partition: Optional[Partition] = None,
        reference: Optional[np.ndarray] = None,
    ):
        self.graph = graph
        self.config = config
        seeds = SeedSequenceFactory(config.seed)

        self.partition = (
            partition
            if partition is not None
            else make_partition(
                graph,
                config.n_groups,
                config.partition_strategy,
                seed=seeds.seed("partition"),
            )
        )
        if self.partition.n_groups != config.n_groups:
            raise ValueError("partition n_groups disagrees with config")

        self.system = GroupSystem(
            graph, self.partition, alpha=config.alpha, e=config.e
        )
        self.reference = (
            np.asarray(reference, dtype=np.float64)
            if reference is not None
            else self.system.solve_exact()
        )

        #: Shared wire-codec session manager (None when codec="none").
        #: One instance serves every ranker: pair state is keyed by
        #: (src, dst), and the per-pair error budget splits ε_comm over
        #: the pairs that actually exchange updates — the same count
        #: the flat engine derives from its pair table.
        self.codec = None
        if config.codec != "none":
            from repro.net.adaptive import AdaptiveCodec

            blocks = self.system.blocks
            n_pairs = sum(
                len(blocks.destinations_of(g))
                for g in range(config.n_groups)
            )
            self.codec = AdaptiveCodec(
                config.codec,
                epsilon=config.comm_epsilon,
                n_pairs=n_pairs,
            )

        self.sim = Simulator()
        self.overlay = build_overlay(
            config.overlay, config.n_groups, seed=seeds.seed("overlay") % (2**31)
        )
        self.accountant = TrafficAccountant(config.n_groups)
        loss = (
            NoLoss()
            if config.delivery_prob >= 1.0
            else BernoulliLoss(config.delivery_prob, seed=seeds.generator("loss"))
        )
        transport_kwargs = {}
        if config.transport == "indirect":
            transport_kwargs["aggregation_delay"] = config.aggregation_delay
        self.transport = build_transport(
            config.transport,
            self.sim,
            self.overlay,
            self.accountant,
            loss=loss,
            latency=FixedLatency(config.hop_delay),
            **transport_kwargs,
        )
        self.reliable: Optional[ReliableTransport] = None
        if config.reliable:
            chaos = ChaosModel(
                duplicate_prob=config.duplicate_prob,
                reorder_prob=config.reorder_prob,
                reorder_max_delay=config.reorder_max_delay,
                ack_loss_prob=config.ack_loss_prob,
                seed=seeds.generator("chaos"),
            )
            self.reliable = ReliableTransport(
                self.transport,
                retry=RetryPolicy(
                    timeout=config.retry_timeout,
                    backoff=config.retry_backoff,
                    jitter=config.retry_jitter,
                    max_timeout=config.retry_max_timeout,
                    max_retries=config.max_retries,
                ),
                chaos=chaos,
                alive=lambda g: not self.rankers[g].crashed,
                seed=seeds.generator("retry-jitter"),
            )
            # Rankers (and everything else) speak to the wrapper.
            self.transport = self.reliable

        wait_rng = seeds.generator("wait-means")
        self._seeds = seeds
        self._mean_waits: List[float] = []
        self.rankers: List[PageRanker] = []
        sync_wait = 0.5 * (config.t1 + config.t2)
        for g in range(config.n_groups):
            if config.schedule == "sync":
                # One common fixed period for every ranker; the "wait-
                # means" stream is simply not drawn from (named streams
                # are independent, so skipping it perturbs nothing).
                mean_wait = sync_wait
            elif config.mean_waits is not None:
                mean_wait = float(config.mean_waits[g])
            else:
                mean_wait = float(wait_rng.uniform(config.t1, config.t2))
            self._mean_waits.append(mean_wait)
            self.rankers.append(self._make_ranker(g, seeds.generator(f"wait/{g}")))
        self.transport.attach(self._deliver)
        self.monitor: Optional[Monitor] = None

        # -- fault injection ------------------------------------------
        self.pause_injector: Optional[NodePauseInjector] = None
        if config.pause_faults > 0:
            self.pause_injector = NodePauseInjector(
                n_faults=config.pause_faults,
                horizon=config.pause_horizon,
                mean_outage=config.pause_mean_outage,
                seed=seeds.generator("pause-injector"),
            )
            self.pause_injector.install(self.sim, self.rankers)
        self.crash_injector: Optional[NodeCrashInjector] = None
        if config.crash_prob > 0.0:
            self.crash_injector = NodeCrashInjector(
                crash_prob=config.crash_prob,
                after=config.crash_after,
                horizon=config.crash_horizon,
                seed=seeds.generator("crash-injector"),
            )
            self.crash_injector.install(self.sim, self.rankers)

        # -- failure detection, checkpointing, takeover ---------------
        self.heartbeat: Optional[HeartbeatMonitor] = None
        if config.heartbeat_interval > 0.0:
            self.heartbeat = HeartbeatMonitor(
                self.sim,
                self.rankers,
                interval=config.heartbeat_interval,
                miss_threshold=config.heartbeat_miss_threshold,
            )
        self.checkpoint_store = CheckpointStore()
        self.checkpointer: Optional[Checkpointer] = None
        if config.checkpoint_interval > 0.0:
            self.checkpointer = Checkpointer(
                self.sim,
                self.rankers,
                self.checkpoint_store,
                interval=config.checkpoint_interval,
            )
        self.recovery: Optional[RecoveryManager] = None
        if config.recovery:
            self.recovery = RecoveryManager(
                self.sim,
                self.rankers,
                self.checkpoint_store,
                self._make_replacement,
            )
            assert self.heartbeat is not None  # enforced by the config
            self.heartbeat.add_death_callback(self.recovery.on_death)

    # ------------------------------------------------------------------
    def _make_ranker(self, g: int, seed) -> PageRanker:
        cfg = self.config
        node = DPRNode(
            g,
            self.system.diag(g),
            self.system.beta_e[g],
            mode=cfg.algorithm,
            local_tol=cfg.local_tol,
            max_inner=cfg.max_inner,
            inner_solver=cfg.inner_solver,
            x_mode=cfg.x_mode,
        )
        return PageRanker(
            self.sim,
            node,
            self.system,
            self.transport,
            mean_wait=self._mean_waits[g],
            seed=seed,
            suppress_tol=cfg.suppress_tol,
            fixed_wait=cfg.schedule == "sync",
            codec=self.codec,
        )

    def _make_replacement(self, g: int, epoch: int) -> PageRanker:
        """Recovery factory: a blank ranker for group ``g`` with a
        private deterministic stream per takeover epoch."""
        return self._make_ranker(g, self._seeds.generator(f"recovery/{g}/{epoch}"))

    def _deliver(self, dst_group: int, update) -> None:
        self.rankers[dst_group].receive(update)

    def install_pause_injector(self, injector: NodePauseInjector) -> None:
        """Add node churn to the run (must be called before :meth:`run`)."""
        injector.install(self.sim, self.rankers)

    def warm_start(self, ranks: np.ndarray) -> None:
        """Seed the run with a prior global rank vector.

        Setting each node's ``r`` alone is not enough: the outer step
        recomputes ``R`` from ``βE + X``, so with empty afferent state
        the first step erases the carried ranks before they are ever
        sent.  This scatters ``ranks`` into every node *and* seeds each
        node's afferent state with the generation-0 contributions its
        sources would have sent for those ranks, so the first outer
        step refines the previous fixed point instead of starting over.
        Must be called before :meth:`run`.
        """
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.shape != (self.graph.n_pages,):
            raise ValueError(
                f"warm-start vector has shape {ranks.shape}, "
                f"want ({self.graph.n_pages},)"
            )
        pages = self.system.blocks.pages
        for g, ranker in enumerate(self.rankers):
            ranker.node.r = ranks[pages[g]].copy()
        for g, ranker in enumerate(self.rankers):
            # ``efferent`` returns views into one shared buffer;
            # ``seed_afferent`` copies before storing.
            for dst, values in self.system.efferent(g, ranker.node.r).items():
                self.rankers[dst].node.seed_afferent(g, values)

    def run(
        self,
        *,
        max_time: float = 1000.0,
        target_relative_error: Optional[float] = None,
        quiescence_delta: Optional[float] = None,
    ) -> RunResult:
        """Execute the simulation and gather results.

        The run stops at the first of: the target relative error being
        reached (sampled at ``config.sample_interval``), system-wide
        quiescence (when ``quiescence_delta`` is set — the
        reference-free termination rule; see
        :class:`~repro.core.convergence.Monitor`), or simulated time
        ``max_time``.
        """
        cfg = self.config
        self.monitor = Monitor(
            self.sim,
            self.system,
            self.rankers,
            self.reference,
            interval=cfg.sample_interval,
            accountant=self.accountant,
            target_relative_error=target_relative_error,
            quiescence_delta=quiescence_delta,
        )
        self.monitor.start()
        for ranker in self.rankers:
            ranker.start()
        if self.heartbeat is not None:
            self.heartbeat.start()
        if self.checkpointer is not None:
            self.checkpointer.start()
        monitor = self.monitor
        stop = None
        if target_relative_error is not None or quiescence_delta is not None:
            def stop() -> bool:
                return monitor.reached_target or monitor.reached_quiescence
        self.sim.run(until=max_time, stop_condition=stop)
        self.monitor.stop()
        if self.heartbeat is not None:
            self.heartbeat.stop()
        if self.checkpointer is not None:
            self.checkpointer.stop()

        rel = self.reliable
        ranks = self.monitor.current_ranks()
        return assemble_run_result(
            ranks=ranks,
            reference=self.reference,
            trace=self.monitor.trace,
            converged=self.monitor.reached_target,
            time_to_target=self.monitor.target_time,
            outer_iterations=np.array(
                [rk.node.outer_iterations for rk in self.rankers], dtype=np.int64
            ),
            inner_sweeps=np.array(
                [rk.node.inner_sweeps for rk in self.rankers], dtype=np.int64
            ),
            accountant=self.accountant,
            now=self.sim.now,
            dropped_updates=self.transport.dropped_updates,
            quiescent=self.monitor.reached_quiescence,
            quiescence_time=self.monitor.quiescence_time,
            config=cfg,
            retransmits=rel.retransmits if rel is not None else 0,
            gave_up=rel.gave_up if rel is not None else 0,
            dup_drops=rel.dup_drops if rel is not None else 0,
            dead_drops=rel.dead_drops if rel is not None else 0,
            acks_lost=rel.acks_lost if rel is not None else 0,
            # Recovered groups hold a live replacement, so count fired
            # injector crashes rather than currently-crashed slots.
            crashed_groups=(
                self.crash_injector.fired(self.sim.now)
                if self.crash_injector is not None
                else sum(1 for rk in self.rankers if rk.crashed)
            ),
            deaths_detected=(
                self.heartbeat.deaths_detected if self.heartbeat is not None else 0
            ),
            takeovers=(
                self.recovery.takeover_count if self.recovery is not None else 0
            ),
            checkpoint_saves=self.checkpoint_store.saves,
            codec_stats=(
                {
                    **self.codec.stats(),
                    "certified_bound": self.codec.certified_bound(cfg.alpha),
                }
                if self.codec is not None
                else None
            ),
        )


def run_distributed_pagerank(
    graph: WebGraph,
    config: Optional[DistributedConfig] = None,
    *,
    partition: Optional[Partition] = None,
    reference: Optional[np.ndarray] = None,
    max_time: float = 1000.0,
    target_relative_error: Optional[float] = None,
    quiescence_delta: Optional[float] = None,
    **config_overrides,
) -> RunResult:
    """One-call distributed PageRank.

    Keyword overrides are applied on top of ``config`` (or the
    defaults), e.g.::

        result = run_distributed_pagerank(
            graph, n_groups=100, algorithm="dpr2", delivery_prob=0.7,
            t1=0, t2=15, target_relative_error=1e-4,
        )
    """
    if config is None:
        config = DistributedConfig(**config_overrides)
    elif config_overrides:
        from dataclasses import replace

        config = replace(config, **config_overrides)
    if config.engine in ("flat", "mc", "hybrid"):
        # Imported lazily: the engine modules import coordinator types.
        from repro.core.engine import MonteCarloEngine, SynchronousEngine

        if config.engine == "hybrid":
            from repro.core.hybrid import HybridEngine

            cls = HybridEngine
        else:
            cls = SynchronousEngine if config.engine == "flat" else MonteCarloEngine
        return cls(
            graph, config, partition=partition, reference=reference
        ).run(
            max_time=max_time,
            target_relative_error=target_relative_error,
            quiescence_delta=quiescence_delta,
        )
    run = DistributedRun(graph, config, partition=partition, reference=reference)
    return run.run(
        max_time=max_time,
        target_relative_error=target_relative_error,
        quiescence_delta=quiescence_delta,
    )
