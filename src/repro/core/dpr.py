"""DPR1 and DPR2 node state machines (paper §4.2, Algorithms 3 & 4).

Both algorithms run the same outer loop on every ranker::

    loop:
        X ← refresh X          # newest afferent vectors received
        R ← compute            # DPR1: GroupPageRank to convergence
                               # DPR2: a single Jacobi sweep
        Y ← efferent(R); send  # handled by the ranker/transport layer
        wait

:class:`DPRNode` implements the computational part — receive/refresh/
compute — with no knowledge of timers or networking, so the identical
state machine is exercised by the event simulator, by the synchronous
test harness, and by the property-based tests.

Refresh-X semantics: the node keeps, per source group, the newest
:class:`~repro.net.message.ScoreUpdate` by generation (stale messages
arriving late are discarded), and ``X`` is the sum over sources.  With
``R0 = 0`` every group's rank sequence is monotone non-decreasing and
bounded by the centralized fixed point (Theorems 4.1/4.2) — both
properties are asserted by the test suite.

Hot-path structure
------------------
The outer loop is allocation-free: the node owns one
:class:`~repro.linalg.jacobi.JacobiWorkspace` for its lifetime (so
DPR1's warm-started inner solves sweep in ping-pong buffers and DPR2's
single sweep is one fused kernel), keeps a running afferent sum ``X``
that is maintained incrementally as updates arrive, and caches
``f = βE + X`` so a :meth:`step` with no new mail since the previous
one skips the refresh entirely (``refresh_skips`` counts these).

Two maintenance policies for the running ``X`` (``x_mode``):

* ``"exact"`` (default) — a first message from a new source is added
  to the running sum in arrival order (bit-identical to a full
  re-sum); a replacement marks ``X`` dirty and the next refresh
  rebuilds it by an in-order, in-place re-sum.  Results are
  **bit-identical** to the naive re-sum-every-step implementation,
  which the property-based tests assert on end-to-end runs.
* ``"delta"`` — the paper-suggested O(changed) update: subtract the
  superseded vector, add the new one.  Cheapest when a node has many
  sources and few change per step, at the cost of ulp-level
  floating-point drift relative to a fresh re-sum (bounded by the
  kernel-equivalence tests; use ``"exact"`` when bit-reproducibility
  matters more than the constant factor).

Received values are **defensively copied**, so a transport or test
that mutates (or reuses the buffer of) an array after send cannot
silently corrupt node state.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.linalg.jacobi import JacobiWorkspace, jacobi_solve
from repro.net.message import ScoreUpdate

__all__ = ["DPRNode"]

#: Valid maintenance policies for the running afferent sum.
X_MODES = ("exact", "delta")


class DPRNode:
    """One page ranker's algorithmic state.

    Parameters
    ----------
    group:
        This ranker's group index.
    a_group:
        The group's inner-link operator ``A_G`` (diagonal block).
    beta_e:
        The constant ``βE`` term over the group's local pages.
    mode:
        ``"dpr1"`` (solve to local convergence each outer loop) or
        ``"dpr2"`` (one sweep per outer loop).
    local_tol, max_inner:
        Termination of the inner ``GroupPageRank`` solve (DPR1 only).
    inner_solver:
        ``"jacobi"`` (the paper's Algorithm 2) or ``"gauss_seidel"``
        (extension: same fixed point, fewer sweeps — see
        :mod:`repro.linalg.acceleration`).  DPR1 only.
    r0:
        Initial local rank vector ``S``; zeros by default (the paper's
        choice for which the monotonicity theorems are stated).
    x_mode:
        Running-``X`` maintenance policy, ``"exact"`` or ``"delta"``
        (see module docs).
    """

    def __init__(
        self,
        group: int,
        a_group: sp.spmatrix,
        beta_e: np.ndarray,
        *,
        mode: str = "dpr1",
        local_tol: float = 1e-10,
        max_inner: int = 1000,
        inner_solver: str = "jacobi",
        r0: Optional[np.ndarray] = None,
        x_mode: str = "exact",
    ):
        if mode not in ("dpr1", "dpr2"):
            raise ValueError(f"mode must be 'dpr1' or 'dpr2', got {mode!r}")
        if inner_solver not in ("jacobi", "gauss_seidel"):
            raise ValueError(
                f"inner_solver must be 'jacobi' or 'gauss_seidel', got {inner_solver!r}"
            )
        if x_mode not in X_MODES:
            raise ValueError(f"x_mode must be one of {X_MODES}, got {x_mode!r}")
        self.group = int(group)
        self.a_group = a_group
        self.beta_e = np.asarray(beta_e, dtype=np.float64)
        n_local = self.beta_e.shape[0]
        if a_group.shape != (n_local, n_local):
            raise ValueError(
                f"operator shape {a_group.shape} incompatible with βE of size {n_local}"
            )
        self.mode = mode
        self.local_tol = float(local_tol)
        self.max_inner = int(max_inner)
        self.inner_solver = inner_solver
        self.x_mode = x_mode

        #: Stable local rank buffer, updated in place by :meth:`step`
        #: (copy it to retain a snapshot across steps).
        self.r = (
            np.zeros(n_local, dtype=np.float64)
            if r0 is None
            else np.array(r0, dtype=np.float64)
        )
        if self.r.shape != (n_local,):
            raise ValueError(f"r0 shape {self.r.shape}, want ({n_local},)")

        #: Newest afferent vector per source group (defensive copies).
        self._latest_values: Dict[int, np.ndarray] = {}
        self._latest_gen: Dict[int, int] = {}
        #: Running afferent sum, incrementally maintained on receive.
        self._x = np.zeros(n_local, dtype=np.float64)
        #: True when ``_x`` no longer matches ``_latest_values`` and
        #: the next refresh must re-sum (exact mode after a replace).
        self._x_dirty = False
        #: True when mail accepted since ``_f`` was last computed.
        self._mail = False
        #: Cached ``f = βE + X`` (valid whenever ``_mail`` is False).
        self._f = self.beta_e.copy()
        #: Lifetime sweep buffers — the allocation-free inner kernels.
        self._workspace = JacobiWorkspace(n_local)
        #: Outer-loop count (the "iterations" of Fig 8 for DPR2; for
        #: DPR1 one outer loop may contain many inner sweeps).
        self.outer_iterations = 0
        #: ‖R_new − R_old‖₁ of the most recent outer step — the local
        #: quantity Theorem 3.3 turns into a distance-to-fixed-point
        #: bound, used for distributed termination detection.
        self.last_step_delta = float("inf")
        #: Total Jacobi sweeps performed (inner iterations included).
        self.inner_sweeps = 0
        #: Updates discarded because a newer generation was already held.
        self.stale_updates = 0
        #: Steps that reused the cached ``f`` because no mail arrived.
        self.refresh_skips = 0

    # ------------------------------------------------------------------
    @property
    def n_local(self) -> int:
        return self.r.shape[0]

    def receive(self, update: ScoreUpdate) -> None:
        """Accept an afferent update; keep only the newest per source.

        Out-of-order delivery is expected under the asynchronous
        simulator — indirect transmission can reorder packages — and
        the generation stamp makes refresh idempotent.

        The update's values are copied before being stored, so senders
        reusing (or mutating) their buffers after the call cannot
        corrupt this node's state.  The running ``X`` is maintained
        incrementally per the node's ``x_mode`` (see module docs).
        """
        if update.dst_group != self.group:
            raise ValueError(
                f"update for group {update.dst_group} delivered to group {self.group}"
            )
        if update.values.shape != (self.n_local,):
            raise ValueError(
                f"update vector shape {update.values.shape}, want ({self.n_local},)"
            )
        src = update.src_group
        if src in self._latest_gen and update.generation <= self._latest_gen[src]:
            self.stale_updates += 1
            return
        values = np.array(update.values, dtype=np.float64)
        old = self._latest_values.get(src)
        self._latest_gen[src] = update.generation
        self._latest_values[src] = values
        if old is None:
            # Appending a new source to the running sum in arrival
            # order is the same arithmetic as re-summing, so the cache
            # stays exact in both modes.
            if not self._x_dirty:
                np.add(self._x, values, out=self._x)
        elif self.x_mode == "delta":
            np.subtract(self._x, old, out=self._x)
            np.add(self._x, values, out=self._x)
        else:
            self._x_dirty = True
        self._mail = True

    def seed_afferent(self, src: int, values: np.ndarray) -> None:
        """Install a synthetic generation-0 afferent vector from ``src``.

        The outer step recomputes ``R`` from ``βE + X``, so carrying a
        previous rank vector into ``r`` alone is erased by the first
        step before it is ever sent.  A warm start must therefore also
        seed ``X`` with the contributions each neighbour *would* have
        sent for the carried ranks (see
        :meth:`~repro.core.coordinator.DistributedRun.warm_start`); the
        first step then refines the previous fixed point instead of
        recomputing the mail-free solution.  Any real update
        (generation ≥ 1) supersedes the seed.
        """
        values = np.array(values, dtype=np.float64)
        if values.shape != (self.n_local,):
            raise ValueError(
                f"seed vector shape {values.shape}, want ({self.n_local},)"
            )
        if src in self._latest_gen:
            raise ValueError(f"afferent from source {src} already present")
        self._latest_values[src] = values
        self._latest_gen[src] = 0
        if not self._x_dirty:
            np.add(self._x, values, out=self._x)
        self._mail = True

    def _refresh(self) -> np.ndarray:
        """Bring the running ``X`` up to date; returns the live buffer."""
        if self._x_dirty:
            x = self._x
            x[:] = 0.0
            for vec in self._latest_values.values():
                np.add(x, vec, out=x)
            self._x_dirty = False
        return self._x

    def refresh_x(self) -> np.ndarray:
        """The "Refresh X" step: sum of newest per-source vectors.

        Returns a fresh copy (the live running sum stays internal).
        """
        return self._refresh().copy()

    def step(self) -> np.ndarray:
        """One outer loop: refresh X, recompute R; returns the new R.

        DPR1 runs ``GroupPageRank(R_i, X_{i+1})`` — a full Jacobi solve
        warm-started from the previous local ranks; DPR2 performs a
        single sweep ``R ← A_G R + βE + X``.  The returned array is the
        node's live ``r`` buffer, updated in place each step.
        """
        if self.n_local == 0:
            self.outer_iterations += 1
            self.last_step_delta = 0.0
            return self.r
        if self._mail:
            self._refresh()
            np.add(self.beta_e, self._x, out=self._f)
            self._mail = False
        else:
            self.refresh_skips += 1
        f = self._f
        ws = self._workspace
        if self.mode == "dpr1":
            if self.inner_solver == "gauss_seidel":
                from repro.linalg.acceleration import gauss_seidel_solve

                res = gauss_seidel_solve(
                    self.a_group, f, x0=self.r,
                    tol=self.local_tol, max_iter=self.max_inner,
                )
            else:
                res = jacobi_solve(
                    self.a_group, f, x0=self.r,
                    tol=self.local_tol, max_iter=self.max_inner,
                    workspace=ws,
                )
            self.inner_sweeps += res.iterations
            sc = ws._scratch
            np.subtract(res.x, self.r, out=sc)
            np.abs(sc, out=sc)
            self.last_step_delta = float(sc.sum())
            np.copyto(self.r, res.x)
        else:
            delta = ws.sweep_delta(self.a_group, self.r, f, out=ws._ping)
            np.copyto(self.r, ws._ping)
            self.inner_sweeps += 1
            self.last_step_delta = delta
        self.outer_iterations += 1
        return self.r

    # ------------------------------------------------------------------
    # Checkpointing (paper §4.2: nodes "may even shutdown")
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of all mutable algorithm state.

        A ranker that shuts down mid-run can persist this and, on
        restart, resume exactly where it left off — the generation
        stamps make re-delivered afferent updates harmless.
        """
        return {
            "group": self.group,
            "mode": self.mode,
            "r": self.r.copy(),
            "latest_values": {s: v.copy() for s, v in self._latest_values.items()},
            "latest_gen": dict(self._latest_gen),
            "outer_iterations": self.outer_iterations,
            "inner_sweeps": self.inner_sweeps,
            "stale_updates": self.stale_updates,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        The operator and βE term are reconstruction-time inputs (they
        derive from the graph), so only the mutable state is restored;
        group and mode must match.
        """
        if state["group"] != self.group:
            raise ValueError(
                f"checkpoint is for group {state['group']}, node is group {self.group}"
            )
        if state["mode"] != self.mode:
            raise ValueError(
                f"checkpoint mode {state['mode']!r} != node mode {self.mode!r}"
            )
        r = np.asarray(state["r"], dtype=np.float64)
        if r.shape != (self.n_local,):
            raise ValueError(f"checkpoint r has shape {r.shape}, want ({self.n_local},)")
        np.copyto(self.r, r)
        self._latest_values = {
            int(s): np.asarray(v, dtype=np.float64).copy()
            for s, v in state["latest_values"].items()
        }
        self._latest_gen = {int(s): int(g) for s, g in state["latest_gen"].items()}
        # The running sum and cached f are derived state: force both to
        # rebuild on the next refresh/step.
        self._x_dirty = True
        self._mail = True
        self.outer_iterations = int(state["outer_iterations"])
        self.inner_sweeps = int(state["inner_sweeps"])
        self.stale_updates = int(state["stale_updates"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DPRNode(group={self.group}, mode={self.mode}, pages={self.n_local}, "
            f"outer={self.outer_iterations})"
        )
