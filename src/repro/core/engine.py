"""Vectorized bulk-synchronous execution engine (the "flat" engine).

The event engine (:class:`~repro.core.coordinator.DistributedRun`)
replays every score update as a simulator event: one Python object per
(source, destination) pair per outer loop, one heap operation per
delivery, one ``DPRNode.receive`` per update.  That faithfully models
the paper's asynchronous timing, but when the *schedule* is
synchronous — every ranker ticking at the same fixed period — the
per-message machinery computes exactly one bulk-synchronous round per
tick, and the whole round collapses into dense linear algebra:

* **compute** — all K in-group operators ``A_G`` are assembled once
  into a single block-diagonal CSR, so a DPR2 outer loop over the
  entire system is *one* SpMV over the concatenated rank vector (plus
  one fused add/delta pass); DPR1 runs the same per-group warm-started
  Jacobi solves as the event engine, sharing its
  :class:`~repro.linalg.jacobi.JacobiWorkspace` kernels;
* **communicate** — all stacked per-group efferent operators are
  assembled once into a single whole-system *cut matrix*, compressed
  to its structurally nonzero rows, so every efferent vector ``Y`` of
  the round is one more SpMV over exactly the cross-link elements; at
  ``delivery_prob = 1`` delivery + afferent refresh then collapse into
  a third SpMV ``X = F·Y`` against a 0/1 *afferent matrix* whose
  per-row storage order replays the observed arrival order;
* **account** — instead of materializing ScoreUpdate objects, the
  engine replays one *calibration round* of empty-payload sends
  through the real transport classes on a scratch simulator.  That
  yields (a) the exact per-round traffic, merged into the main
  :class:`~repro.net.bandwidth.TrafficAccountant` each round via
  :meth:`~repro.net.bandwidth.TrafficAccountant.merge`, and (b) the
  exact delivery order, which fixes the afferent summation order (see
  below).  At ``delivery_prob = 1`` the calibration runs once for the
  whole run; under loss it is replayed per round over the surviving
  pairs (cost proportional to K², independent of page count).

Bit-identity
------------
The engine is not approximately equivalent to the event engine under
the synchronous schedule — it is **bit-identical**, which the
equivalence tests assert.  The reasoning:

* block-diagonal SpMV: each output row's dot product runs over the
  same stored values in the same order as the per-block SpMV, so IEEE
  non-associativity never enters;
* the cut-matrix SpMV likewise reproduces each group's stacked
  efferent product row for row; dropping the cut matrix's structurally
  *empty* rows is exact because every score is nonnegative, so the
  event engine's adds of those always-``+0.0`` elements
  (``x + 0.0 == x`` bitwise for ``x ≥ +0.0``) never change a single
  bit of any afferent sum;
* afferent sums: a :class:`~repro.core.dpr.DPRNode` re-sums its
  newest per-source vectors in *first-arrival order* (dict insertion
  order).  Under loss the engine keeps the same insertion-ordered
  dict per destination, appending sources in the delivery order
  observed on the calibration replay — the same order the event
  simulator produces, since both route through identical transports.
  At ``delivery_prob = 1`` every source re-arrives every round, so the
  whole refresh is one SpMV ``X = F·Y``: scipy's CSR kernel
  accumulates each output row over its stored entries *in storage
  order*, and ``F``'s rows are laid out in exactly the arrival order,
  so the scalar additions happen in the same sequence the node's
  vector adds produce;
* loss draws: the Bernoulli stream is consumed in (source group
  ascending, destination ascending) order, exactly the order rankers
  tick and emit in a synchronous event round.

Use ``DistributedConfig(engine="flat")`` (CLI ``--engine flat``) to
select it end to end; results come back as the same
:class:`~repro.core.coordinator.RunResult` via the shared
:func:`~repro.core.coordinator.assemble_run_result` reporting path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.convergence import ConvergenceTrace
from repro.core.coordinator import (
    DistributedConfig,
    RunResult,
    assemble_run_result,
)
from repro.core.open_system import GroupSystem
from repro.core.ranker import MIN_MEAN_WAIT
from repro.graph.partition import Partition, make_partition
from repro.graph.webgraph import WebGraph
from repro.linalg.jacobi import JacobiWorkspace, csr_matvec_into, jacobi_solve
from repro.linalg.norms import l1_norm
from repro.net.bandwidth import TrafficAccountant
from repro.net.failures import BernoulliLoss, NoLoss
from repro.net.latency import FixedLatency
from repro.net.codec import token_frame_bytes
from repro.net.message import ScoreUpdate
from repro.net.simulator import Simulator
from repro.net.transport import build_transport
from repro.overlay import build_overlay
from repro.utils.memory import trim_heap
from repro.utils.rng import SeedSequenceFactory

__all__ = ["MonteCarloEngine", "SynchronousEngine"]

#: Shared zero-length payload for calibration ScoreUpdates — the
#: transports only read routing metadata and ``n_link_records``.
_EMPTY = np.empty(0, dtype=np.float64)


def _replay_transport_round(
    config: DistributedConfig,
    overlay,
    sends: List[Tuple[int, int, int]],
) -> Tuple[List[Tuple[int, int]], TrafficAccountant]:
    """Route one round's sends through the real transport stack.

    ``sends`` lists ``(src_group, dst_group, n_records)`` triples in
    emission order (sources ascending, destinations ascending within a
    source — the order rankers tick and emit in a synchronous round).
    A send may carry an optional fourth element: the encoded frame's
    calibrated wire size, stamped onto the replay update's
    ``wire_bytes`` so the transports charge the codec's bytes as data
    while the paper-model counter keeps the flat 100 B/record charge
    (see :mod:`repro.net.bandwidth`).
    Returns the delivery order as (src, dst) in upcall sequence and a
    scratch accountant holding the round's exact traffic.  Updates are
    empty-payload (byte accounting only reads ``n_link_records``) on a
    fresh simulator, so the cost is O(sends) regardless of page count.

    Shared by the flat engine (fixed per-round record counts from the
    cross blocks, plus per-round frame sizes under a codec) and the
    Monte-Carlo engine (per-round walk-token counts, a different
    number every round).
    """
    sim = Simulator()
    acc = TrafficAccountant(config.n_groups)
    kwargs = {}
    if config.transport == "indirect":
        kwargs["aggregation_delay"] = config.aggregation_delay
    transport = build_transport(
        config.transport,
        sim,
        overlay,
        acc,
        loss=NoLoss(),
        latency=FixedLatency(config.hop_delay),
        **kwargs,
    )
    order: List[Tuple[int, int]] = []
    transport.attach(
        lambda dst, update: order.append((update.src_group, dst))
    )
    i = 0
    n = len(sends)
    while i < n:
        g = sends[i][0]
        updates = []
        while i < n and sends[i][0] == g:
            send = sends[i]
            updates.append(
                ScoreUpdate(
                    src_group=g,
                    dst_group=send[1],
                    values=_EMPTY,
                    n_link_records=send[2],
                    generation=0,
                    wire_bytes=send[3] if len(send) > 3 else -1,
                )
            )
            i += 1
        transport.send_updates(g, updates)
    sim.run()
    return order, acc


class SynchronousEngine:
    """Whole-system block-SpMV runner for failure-free synchronous runs.

    Construction mirrors :class:`~repro.core.coordinator.DistributedRun`
    (same partition, overlay, and loss streams from the same named
    seeds), then flattens the K per-group operators into two global
    matrices.  :meth:`run` executes ticks at the common period
    ``max((t1+t2)/2, MIN_MEAN_WAIT)`` until ``max_time``, a target
    error, or quiescence — the same stop conditions the event engine's
    monitor applies.

    Parameters
    ----------
    graph, config:
        The crawl and the experiment parameters.  The config must
        satisfy the ``engine="flat"`` restrictions (failure-free:
        no reliability layer, churn, or delta suppression).
    partition, reference:
        Optional precomputed partition / centralized solution, exactly
        as accepted by ``DistributedRun``.
    """

    def __init__(
        self,
        graph: WebGraph,
        config: DistributedConfig,
        *,
        partition: Optional[Partition] = None,
        reference: Optional[np.ndarray] = None,
    ):
        self.graph = graph
        self.config = config
        seeds = SeedSequenceFactory(config.seed)

        self.partition = (
            partition
            if partition is not None
            else make_partition(
                graph,
                config.n_groups,
                config.partition_strategy,
                seed=seeds.seed("partition"),
            )
        )
        if self.partition.n_groups != config.n_groups:
            raise ValueError("partition n_groups disagrees with config")

        self.system = GroupSystem(
            graph, self.partition, alpha=config.alpha, e=config.e
        )
        self.reference = (
            np.asarray(reference, dtype=np.float64)
            if reference is not None
            else self.system.solve_exact()
        )

        self.overlay = build_overlay(
            config.overlay, config.n_groups, seed=seeds.seed("overlay") % (2**31)
        )
        self.accountant = TrafficAccountant(config.n_groups)
        self._loss = (
            NoLoss()
            if config.delivery_prob >= 1.0
            else BernoulliLoss(config.delivery_prob, seed=seeds.generator("loss"))
        )
        #: Updates suppressed by the loss model (same meaning as the
        #: transports' counter of the same name).
        self.dropped_updates = 0

        k = config.n_groups
        blocks = self.system.blocks
        sizes = [blocks.group_size(g) for g in range(k)]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        self._slices = [slice(int(offsets[g]), int(offsets[g + 1])) for g in range(k)]
        n_total = int(offsets[-1])

        # One block-diagonal CSR for every in-group operator: row i of
        # group g's block becomes global row offset[g]+i with the same
        # stored values in the same order, so SpMV results match the
        # per-block products bit for bit.  Only the dpr2 sweep uses
        # it, and it duplicates every diag block — build lazily so
        # dpr1 runs (the out-of-core default) never pay the copy.
        self._a_all_cache: Optional[sp.csr_matrix] = None
        # One whole-system cut matrix: conceptually the block-diagonal
        # stack of every group's stacked efferent operator, compressed
        # to its structurally nonzero rows.  A dense efferent segment's
        # zero rows are always exactly +0.0 in the event engine too,
        # and adding +0.0 to a nonnegative score is a bitwise no-op, so
        # computing/summing only the nonzero rows is exact (see module
        # docstring).  Output segment g holds group g's efferent
        # vectors, destinations ascending.
        #
        # Assembled directly in compressed form, pair by pair: the
        # dense stack has K·n rows (gigabytes of row pointers alone at
        # 1e7 pages), while the compressed matrix is bounded by the cut
        # links.  Walking pairs in (source ascending, destination
        # ascending) order concatenates each cross block's stored data
        # verbatim in exactly the row order the block-diagonal stack
        # would produce, so the resulting matrix — and every SpMV over
        # it — is bit-identical to the dense-then-compress build.
        #
        # Alongside the matrix, per ordered (src, dst) pair in that
        # same emission order (also the event engine's loss draw
        # order): the pair's slice of the *compressed* Y vector, the
        # destination-local indices of its nonzero rows, and its
        # link-record count for byte accounting.
        idx_dtype = np.int32 if n_total <= np.iinfo(np.int32).max else np.int64
        self._pairs: List[Tuple[int, int, slice, np.ndarray, int]] = []
        data_parts: List[np.ndarray] = []
        idx_parts: List[np.ndarray] = []
        nnz_parts: List[np.ndarray] = []
        n_nz = 0
        for g in range(k):
            for h in blocks.destinations_of(g):
                block = blocks.cross[(g, h)]
                row_nnz = np.diff(block.indptr)
                local_idx = np.flatnonzero(row_nnz)
                data_parts.append(block.data)
                idx_parts.append(
                    block.indices.astype(idx_dtype) + idx_dtype(offsets[g])
                )
                nnz_parts.append(row_nnz[local_idx])
                self._pairs.append(
                    (
                        g,
                        h,
                        slice(n_nz, n_nz + int(local_idx.size)),
                        local_idx,
                        self.system.cross_records(g, h),
                    )
                )
                n_nz += int(local_idx.size)
        comp_indptr = np.zeros(n_nz + 1, dtype=idx_dtype)
        if nnz_parts:
            np.cumsum(
                np.concatenate(nnz_parts).astype(idx_dtype), out=comp_indptr[1:]
            )
        self._cut = sp.csr_matrix(
            (
                np.concatenate(data_parts)
                if data_parts
                else np.zeros(0, dtype=np.float64),
                np.concatenate(idx_parts)
                if idx_parts
                else np.zeros(0, dtype=idx_dtype),
                comp_indptr,
            ),
            shape=(n_nz, n_total),
        )
        self._pair_cslice: Dict[Tuple[int, int], slice] = {
            (g, h): csl for g, h, csl, _, _ in self._pairs
        }
        self._pair_idx: Dict[Tuple[int, int], np.ndarray] = {
            (g, h): idx for g, h, _, idx, _ in self._pairs
        }
        self._offsets = offsets
        # The cut matrix and pair tables above are the last copies the
        # engine needs of the cross-link structure; every later step
        # (calibration replay, afferent matrix, per-group solves,
        # result assembly) works off them and the diagonal blocks.
        blocks.release_cross()

        # Mutable round state.
        self._r = np.zeros(n_total, dtype=np.float64)
        # dpr2's sweep ping-pong buffers — allocated on first dpr2
        # round so dpr1 runs never carry the two extra n-vectors.
        self._ping: Optional[np.ndarray] = None
        self._scratch: Optional[np.ndarray] = None
        self._x = np.zeros(n_total, dtype=np.float64)
        # Whole-system f = βE + X is only materialized by dpr2's global
        # sweep; dpr1 assembles each group's f into one shared
        # max-group-size buffer right before its solve (same
        # elementwise add over the same slices, so same bits).
        self._f: Optional[np.ndarray] = None
        self._fbuf = np.empty(max(sizes) if sizes else 0, dtype=np.float64)
        self._y = np.zeros(n_nz, dtype=np.float64)
        # βE segment by segment straight from e_full — same products,
        # same bits as concatenating ``system.beta_e``, without forcing
        # that per-group list into existence.
        self._beta_e = np.empty(n_total, dtype=np.float64)
        for g in range(k):
            np.multiply(
                self.system.beta,
                self.system.e_full[blocks.pages[g]],
                out=self._beta_e[self._slices[g]],
            )
        #: Newest afferent vector (compressed to its nonzero elements)
        #: per source, per destination group — insertion-ordered
        #: exactly like ``DPRNode._latest_values``.  Used only under
        #: loss; the lossless path goes through :attr:`_afferent`.
        self._latest: List[Dict[int, np.ndarray]] = [{} for _ in range(k)]
        #: 0/1 afferent matrix for the lossless fast path (X = F·Y),
        #: built lazily from the first calibration's arrival order.
        self._afferent: Optional[sp.csr_matrix] = None
        #: Destinations that received mail last round (refresh set).
        self._mail: set = set()
        # Per-group solves run sequentially and copy their result out
        # before the next begins, so all K workspaces can be views of
        # one max-group-size allocation (3 vectors total, not 3·n).
        shared_ws = JacobiWorkspace(max(sizes) if sizes else 0)
        self._workspaces = [shared_ws.sliced(sizes[g]) for g in range(k)]
        self._last_delta = np.full(k, np.inf, dtype=np.float64)
        self._inner_sweeps = np.zeros(k, dtype=np.int64)
        self._rounds = 0
        #: Cached calibration for the lossless fast path: traffic of
        #: one full round plus its delivery order (computed once).
        self._calibration: Optional[Tuple[List[Tuple[int, int]], TrafficAccountant]] = None
        #: Shared wire-codec session manager (None when codec="none").
        #: One session per ordered pair, the same pair universe the
        #: event engine's DistributedRun builds, so the certified
        #: per-pair budgets — and every frame's byte size — agree
        #: across engines.
        self._codec = None
        if config.codec != "none":
            from repro.net.adaptive import AdaptiveCodec

            self._codec = AdaptiveCodec(
                config.codec,
                epsilon=config.comm_epsilon,
                n_pairs=len(self._pairs),
            )

        #: Common tick period of the synchronous schedule.
        self.period = max(0.5 * (config.t1 + config.t2), MIN_MEAN_WAIT)

        # The grouped-operator build churned through chunk temporaries
        # whose freed pages glibc retains; hand them back so the run's
        # steady-state growth starts from the live set and the process
        # high-water stays at the build peak (see repro.utils.memory).
        trim_heap()

    def _a_all(self) -> sp.csr_matrix:
        """The block-diagonal in-group operator, built on first use."""
        if self._a_all_cache is None:
            self._a_all_cache = sp.block_diag(
                self.system.blocks.diag, format="csr"
            )
        return self._a_all_cache

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Number of page groups (the paper's K)."""
        return self.config.n_groups

    def group_ranks(self) -> List[np.ndarray]:
        """Current per-group local rank vectors (views, group order)."""
        return [self._r[self._slices[g]] for g in range(self.n_groups)]

    def assemble_ranks(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Current global rank vector in original page order."""
        return self.system.assemble(self.group_ranks(), out=out)

    def calibrated_round_traffic(self):
        """Exact traffic of one lossless round as a snapshot at t=0.

        This is the per-round quantity the engine adds to its main
        accountant every round via
        :meth:`~repro.net.bandwidth.TrafficAccountant.merge` — measured
        once on the calibration replay, never by materializing real
        score updates.
        """
        if self._calibration is None:
            self._calibration = self._replay_round(self._pairs)
            self._afferent = self._build_afferent(self._calibration[0])
        return self._calibration[1].snapshot(0.0)

    def paper_round_estimate(self) -> Dict[str, float]:
        """Per-round traffic predicted by the paper's §4.4 formulas.

        Evaluates :mod:`repro.analysis.cost_model` formulas 4.1–4.4
        with this system's actual totals — W as the total cross-group
        link records, h as the mean overlay hop count over the pairs
        that actually exchange updates, g as the overlay's mean
        neighbor count, and N as the ranker count — giving the
        closed-form counterpart to :meth:`calibrated_round_traffic`
        (the formulas assume all N² pairs communicate, so they are an
        upper envelope of the measured totals on sparse cut graphs).
        """
        from repro.analysis.cost_model import (
            direct_data_bytes,
            direct_messages,
            indirect_data_bytes,
            indirect_messages,
        )

        k = self.config.n_groups
        w = float(sum(p[4] for p in self._pairs))
        hop_counts = [self.overlay.hops(g, h) for g, h, _, _, _ in self._pairs]
        h_mean = float(np.mean(hop_counts)) if hop_counts else 0.0
        if self.config.transport == "indirect":
            return {
                "data_messages": indirect_messages(
                    k, self.overlay.mean_neighbor_count()
                ),
                "data_bytes": indirect_data_bytes(w, h_mean),
            }
        return {
            "data_messages": direct_messages(k, h_mean),
            "data_bytes": direct_data_bytes(w, h_mean, k),
        }

    # ------------------------------------------------------------------
    def _replay_round(
        self, pairs: List[Tuple[int, int, slice, np.ndarray, int]]
    ) -> Tuple[List[Tuple[int, int]], TrafficAccountant]:
        """Route one round's surviving sends through the real transport.

        Returns the delivery order as (src, dst) in upcall sequence and
        a scratch accountant holding the round's exact traffic (see
        :func:`_replay_transport_round`, which the Monte-Carlo engine
        shares for its per-round walk-token traffic).
        """
        return _replay_transport_round(
            self.config, self.overlay, [(p[0], p[1], p[4]) for p in pairs]
        )

    def _build_afferent(self, order: List[Tuple[int, int]]) -> sp.csr_matrix:
        """Assemble the 0/1 afferent matrix F with X = F·Y (lossless).

        Row ``offsets[dst] + i`` holds one unit entry per source whose
        efferent segment touches destination-local element ``i``, with
        the entries *stored in the arrival order* of the calibration
        replay.  scipy's CSR matvec kernel accumulates each row
        sequentially over its stored entries, so F reproduces the
        event engine's per-destination vector-add sequence scalar for
        scalar (a stable sort by row preserves the arrival order the
        column blocks were appended in).
        """
        n_rows = self._x.size
        idx_dtype = np.int32 if self._y.size < 2**31 else np.int64
        # Two-pass counting scatter instead of a global stable argsort:
        # each pair's row list (``np.flatnonzero`` output) is unique and
        # ascending, so walking pairs in arrival order and appending at
        # per-row cursors yields each row's entries in arrival order —
        # exactly what a stable sort of the concatenated (row, col)
        # pairs by row produces — without ever materializing the
        # concatenated int64 row/col/permutation arrays.
        cnt = np.zeros(n_rows, dtype=idx_dtype)
        for src, dst in order:
            cnt[int(self._offsets[dst]) :][self._pair_idx[(src, dst)]] += 1
        nnz = int(cnt.sum())
        # Exclusive prefix sums seeded at indptr[1:] become per-row
        # write cursors; pass 2 advances them in place, leaving the
        # final (inclusive) row pointers with no separate cursor array.
        indptr = np.zeros(n_rows + 1, dtype=idx_dtype)
        if n_rows > 1:
            np.cumsum(cnt[:-1], out=indptr[2:])
        del cnt
        cursor = indptr[1:]
        cols = np.empty(nnz, dtype=idx_dtype)
        for src, dst in order:
            idx = self._pair_idx[(src, dst)]
            csl = self._pair_cslice[(src, dst)]
            cur = cursor[int(self._offsets[dst]) :]
            pos = cur[idx]
            cols[pos] = np.arange(
                csl.start, csl.start + idx.size, dtype=idx_dtype
            )
            cur[idx] += 1
        return sp.csr_matrix(
            (np.ones(nnz, dtype=np.float64), cols, indptr),
            shape=(n_rows, self._y.size),
        )

    def _communicate_codec(self) -> None:
        """Codec round: encode every pair, replay survivors, deliver.

        Config validation guarantees ``delivery_prob == 1`` under a
        codec, so there is no loss interplay: every encoded frame is
        delivered.  Each pair's compressed Y segment is encoded with
        its nonzero-row map (so frame bytes match the event engine's
        dense emissions — see :meth:`AdaptiveCodec.encode`), suppressed
        pairs ship nothing, and receivers hold copies of the codec's
        reconstruction mirror, reusing the loss path's
        insertion-ordered ``_latest``/``_mail`` refresh machinery.  At
        ε_comm = 0 the reconstruction equals the true segment bit for
        bit, so the refresh re-sums exactly the values the lossless
        SpMV path would deliver, in the same first-arrival order.
        Per-round byte totals vary with frame content, so the replay
        runs every round instead of caching one calibration.
        """
        sends = []
        for g, h, csl, idx, records in self._pairs:
            frame = self._codec.encode(g, h, self._y[csl], index_map=idx)
            if frame is None:
                continue
            sends.append((g, h, records, frame.wire_bytes))
        order, acc = _replay_transport_round(self.config, self.overlay, sends)
        self.accountant.merge(acc)
        for src, dst in order:
            seg = self._codec.recon(src, dst)
            held = self._latest[dst].get(src)
            if held is None:
                self._latest[dst][src] = seg.copy()
            else:
                np.copyto(held, seg)
            self._mail.add(dst)

    def _communicate(self) -> None:
        """Apply loss, account the round's traffic, deliver the Y slices."""
        if self._codec is not None:
            self._communicate_codec()
            return
        if isinstance(self._loss, NoLoss):
            if self._calibration is None:
                self._calibration = self._replay_round(self._pairs)
                self._afferent = self._build_afferent(self._calibration[0])
            self.accountant.merge(self._calibration[1])
            # Every source re-arrives, so the whole delivery + refresh
            # is one SpMV in arrival order (see _build_afferent).
            csr_matvec_into(self._afferent, self._y, self._x)
            return

        # One Bernoulli draw per pair in emission order — the same
        # stream consumption as the event engine's transports.
        survivors = []
        for pair in self._pairs:
            if self._loss.delivered(pair[0], pair[1]):
                survivors.append(pair)
            else:
                self.dropped_updates += 1
        order, acc = self._replay_round(survivors)
        self.accountant.merge(acc)

        by_pair = self._pair_cslice
        for src, dst in order:
            seg = self._y[by_pair[(src, dst)]]
            held = self._latest[dst].get(src)
            if held is None:
                # First arrival: append (fixes this source's position
                # in the destination's summation order for good).
                self._latest[dst][src] = seg.copy()
            else:
                np.copyto(held, seg)
            self._mail.add(dst)

    def _compute(self) -> None:
        """One outer loop for every group, as global vector kernels."""
        cfg = self.config
        # Refresh X (loss path only; lossless X was computed by the
        # afferent SpMV): re-sum each mailed destination's newest
        # compressed vectors in first-arrival order.  Scattering each
        # source's nonzero elements through its index array performs
        # the same elementwise additions as DPRNode._refresh's dense
        # vector adds — the skipped elements only ever add +0.0.
        for h in self._mail:
            xh = self._x[self._slices[h]]
            xh[:] = 0.0
            for src, vec in self._latest[h].items():
                xh[self._pair_idx[(src, h)]] += vec
        self._mail = set()

        if cfg.algorithm == "dpr2":
            # f = βE + X over the whole system (same elementwise add
            # the nodes perform per group; a cached unchanged f re-adds
            # to the same bits, so recomputing globally is safe).
            if self._f is None:
                self._f = np.empty_like(self._r)
            np.add(self._beta_e, self._x, out=self._f)
            # One whole-system sweep: R ← A·R + f, fused with the
            # per-group ‖ΔR‖₁ reductions over contiguous slices.
            if self._ping is None:
                self._ping = np.zeros_like(self._r)
                self._scratch = np.zeros_like(self._r)
            csr_matvec_into(self._a_all(), self._r, self._ping)
            np.add(self._ping, self._f, out=self._ping)
            np.subtract(self._ping, self._r, out=self._scratch)
            np.abs(self._scratch, out=self._scratch)
            for g in range(cfg.n_groups):
                sl = self._slices[g]
                if sl.stop == sl.start:
                    self._last_delta[g] = 0.0
                    continue
                self._last_delta[g] = float(self._scratch[sl].sum())
                self._inner_sweeps[g] += 1
            self._r, self._ping = self._ping, self._r
        else:
            for g in range(cfg.n_groups):
                sl = self._slices[g]
                if sl.stop == sl.start:
                    self._last_delta[g] = 0.0
                    continue
                r_g = self._r[sl]
                # Group g's f = βE + X assembled into the shared
                # buffer: the identical per-slice add the global-f
                # path performed, one group at a time.
                f_g = self._fbuf[: sl.stop - sl.start]
                np.add(self._beta_e[sl], self._x[sl], out=f_g)
                ws = self._workspaces[g]
                if cfg.inner_solver == "gauss_seidel":
                    from repro.linalg.acceleration import gauss_seidel_solve

                    res = gauss_seidel_solve(
                        self.system.diag(g), f_g, x0=r_g,
                        tol=cfg.local_tol, max_iter=cfg.max_inner,
                    )
                else:
                    res = jacobi_solve(
                        self.system.diag(g), f_g, x0=r_g,
                        tol=cfg.local_tol, max_iter=cfg.max_inner,
                        workspace=ws,
                    )
                self._inner_sweeps[g] += res.iterations
                sc = ws._scratch
                np.subtract(res.x, r_g, out=sc)
                np.abs(sc, out=sc)
                self._last_delta[g] = float(sc.sum())
                np.copyto(r_g, res.x)
        self._rounds += 1

    def _round(self) -> None:
        """One bulk-synchronous round: compute, emit Y, communicate."""
        self._compute()
        csr_matvec_into(self._cut, self._r, self._y)
        self._communicate()

    # ------------------------------------------------------------------
    # Subclass hooks (the hybrid engine overrides these; see
    # repro.core.hybrid).  The base implementations reproduce the
    # flat engine's historical behaviour exactly.
    # ------------------------------------------------------------------
    def _pre_sample(self, t: float) -> None:
        """Called at the top of every sample, before state is read."""

    def _finish(self, t: float) -> None:
        """Called once after the run loop, before result assembly."""

    def _outer_progress(self) -> Tuple[int, float]:
        """(max, mean) outer-iteration progress for the trace."""
        return self._rounds, float(self._rounds)

    def _outer_vector(self) -> np.ndarray:
        """Per-group outer iteration counts for the result."""
        return np.full(self.config.n_groups, self._rounds, dtype=np.int64)

    def _quiescent_now(self, quiescence_delta: float) -> bool:
        """One sample's quiescence verdict (streak logic is the caller's)."""
        return self._rounds > 0 and bool(
            (self._last_delta <= quiescence_delta).all()
        )

    def _dropped_total(self) -> int:
        """Loss-model drops to report (transports may hold the counter)."""
        return self.dropped_updates

    def _extra_result_fields(self, now: float) -> Dict:
        """Engine-specific RunResult fields (fidelity, fault counters)."""
        return {}

    def _codec_stats(self) -> Optional[Dict]:
        """Codec counter snapshot + certified bound (None when off)."""
        if self._codec is None:
            return None
        return {
            **self._codec.stats(),
            "certified_bound": self._codec.certified_bound(self.config.alpha),
        }

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        max_time: float = 1000.0,
        target_relative_error: Optional[float] = None,
        quiescence_delta: Optional[float] = None,
        quiescence_samples: int = 3,
    ) -> RunResult:
        """Execute rounds until a stop condition; gather a RunResult.

        Tick ``m`` runs at simulated time ``m × period`` (the exact
        float sequence the event engine's fixed waits produce), and a
        sample lands on every ``m``-th tick where
        ``sample_interval = m × period`` (config validation guarantees
        the whole-multiple ratio).  The sampling order replicates the
        event engine's :class:`~repro.core.convergence.Monitor`, whose
        sample at a tick always executes *before* that tick's ranker
        wakes (its event was scheduled a full interval earlier, so it
        carries the lower sequence number): the sample at tick ``m``
        therefore observes the rounds completed *before* it, and when
        it trips a stop condition the tick's round is never computed —
        exactly as the event simulator halts before processing the
        remaining same-time wakes.  The sample clock accumulates
        ``sample_interval`` separately from the tick clock (mirroring
        the monitor's relative rescheduling) so trace timestamps are
        bit-identical too.  Stop conditions mirror the monitor: target
        relative error, quiescence (every group's last step delta at
        or below ``quiescence_delta`` for ``quiescence_samples``
        consecutive samples), or ``max_time``.
        """
        cfg = self.config
        trace = ConvergenceTrace()
        converged = False
        target_time: Optional[float] = None
        quiescent = False
        quiescence_time: Optional[float] = None
        quiet_streak = 0

        # Sampling reuses one n-page buffer and the cached reference
        # norm so a long run allocates nothing per sample.  The error
        # below performs the exact subtract/abs/sum/divide sequence of
        # relative_l1_error (l1_norm(x - ref) / l1_norm(ref)), so the
        # recorded values are bit-identical to the event engine's; the
        # mean is taken before the in-place subtract clobbers ranks.
        ranks_buf = np.empty(self.graph.n_pages, dtype=np.float64)
        denom = l1_norm(self.reference)

        def sample(t: float) -> None:
            nonlocal converged, target_time, quiescent, quiescence_time, quiet_streak
            self._pre_sample(t)
            ranks = self.assemble_ranks(out=ranks_buf)
            mean_rank = float(ranks.mean()) if ranks.size else 0.0
            np.subtract(ranks, self.reference, out=ranks)
            np.abs(ranks, out=ranks)
            num = float(ranks.sum())
            if denom == 0.0:
                err = 0.0 if num == 0.0 else math.inf
            else:
                err = num / denom
            trace.times.append(t)
            trace.relative_errors.append(err)
            trace.mean_ranks.append(mean_rank)
            max_outer, mean_outer = self._outer_progress()
            trace.max_outer_iterations.append(max_outer)
            trace.mean_outer_iterations.append(mean_outer)
            snap = self.accountant.snapshot(t)
            trace.total_messages.append(snap.total_messages)
            trace.total_bytes.append(snap.total_bytes)
            if (
                target_relative_error is not None
                and err <= target_relative_error
                and not converged
            ):
                converged = True
                target_time = t
            if quiescence_delta is not None and not quiescent:
                quiet = self._quiescent_now(quiescence_delta)
                quiet_streak = quiet_streak + 1 if quiet else 0
                if quiet_streak >= quiescence_samples:
                    quiescent = True
                    quiescence_time = t

        interval = float(cfg.sample_interval)
        every = int(round(interval / self.period))

        sample(0.0)
        t = 0.0  # tick clock: accumulates the period like ranker waits
        t_s = 0.0  # sample clock: accumulates the monitor's interval
        k = 0
        while not converged and not quiescent:
            t_next = t + self.period
            if t_next > max_time:
                t = float(max_time)
                break
            t = t_next
            k += 1
            if k % every == 0:
                t_s = t_s + interval
                if t_s != t:
                    raise ValueError(
                        f"sample clock drifted from the tick clock "
                        f"({t_s!r} vs {t!r}): sample_interval and the "
                        "period accumulate differently in float "
                        "arithmetic; pick exactly representable values"
                    )
                sample(t_s)
                if converged or quiescent:
                    break
            self._round()

        self._finish(t)
        return assemble_run_result(
            # The sample buffer is dead after the loop, so the final
            # assembly fills it and hands it to the result outright.
            ranks=self.assemble_ranks(out=ranks_buf),
            reference=self.reference,
            trace=trace,
            converged=converged,
            time_to_target=target_time,
            outer_iterations=self._outer_vector(),
            inner_sweeps=self._inner_sweeps.copy(),
            accountant=self.accountant,
            now=t,
            dropped_updates=self._dropped_total(),
            quiescent=quiescent,
            quiescence_time=quiescence_time,
            config=cfg,
            codec_stats=self._codec_stats(),
            **self._extra_result_fields(t),
        )


class MonteCarloEngine:
    """Distributed random-walk ranking over the partitioned system.

    Construction mirrors :class:`SynchronousEngine` (same partition
    and overlay from the same named seeds, same ``RunResult`` via
    :func:`~repro.core.coordinator.assemble_run_result`), but the
    computation is the Monte-Carlo estimator of
    :mod:`repro.linalg.montecarlo` instead of Jacobi iteration: each
    bulk-synchronous round advances every alive walk token one step,
    and tokens whose step crosses the partition cut become that
    round's messages — binned per ordered (source, destination) group
    pair and replayed through the real transport stack via
    :func:`_replay_transport_round`, one link record per forwarded
    token.  Per-round traffic therefore *decays* with the alive-token
    population (geometric in the round number) instead of staying
    constant like DPR1/DPR2's cut vectors.

    The engine never builds the grouped operator: walks read the raw
    CSR, so construction is O(n) and the per-round cost is O(alive
    tokens) — the whole run touches ~``n·walks_per_page/(1−α)`` token
    steps.  Accuracy is statistical, not iterative: the final estimate
    carries the documented tolerance
    :func:`~repro.linalg.montecarlo.mc_error_tolerance` rather than a
    convergence guarantee, and the run naturally completes when every
    token has terminated (the estimate can no longer change).

    Parameters
    ----------
    graph, config:
        The crawl and experiment parameters; the config must satisfy
        the ``engine="mc"`` restrictions (synchronous schedule,
        failure-free, lossless, scalar ``e``).
    partition, reference:
        Optional precomputed partition / centralized solution.  The
        default reference is :func:`~repro.core.pagerank.pagerank_open`
        on the same graph — the fixed point the estimator is unbiased
        for under ``dangling_mode="absorb"``.
    """

    def __init__(
        self,
        graph: WebGraph,
        config: DistributedConfig,
        *,
        partition: Optional[Partition] = None,
        reference: Optional[np.ndarray] = None,
    ):
        from repro.core.pagerank import pagerank_open
        from repro.linalg.montecarlo import RandomWalkState

        self.graph = graph
        self.config = config
        seeds = SeedSequenceFactory(config.seed)

        self.partition = (
            partition
            if partition is not None
            else make_partition(
                graph,
                config.n_groups,
                config.partition_strategy,
                seed=seeds.seed("partition"),
            )
        )
        if self.partition.n_groups != config.n_groups:
            raise ValueError("partition n_groups disagrees with config")

        self.reference = (
            np.asarray(reference, dtype=np.float64)
            if reference is not None
            else pagerank_open(graph, config.alpha, e=config.e).ranks
        )

        self.overlay = build_overlay(
            config.overlay, config.n_groups, seed=seeds.seed("overlay") % (2**31)
        )
        self.accountant = TrafficAccountant(config.n_groups)
        self.dropped_updates = 0

        self.state = RandomWalkState(
            graph,
            alpha=config.alpha,
            walks_per_page=config.walks_per_page,
            walk_mode=config.walk_mode,
            dangling=config.dangling_mode,
            start_weight=1.0 if config.e is None else float(config.e),
            rng=seeds.generator("walks"),
        )
        k = config.n_groups
        self._group_of = self.partition.group_of
        self._rounds = 0
        #: Token steps executed per group — the mc analogue of the
        #: Jacobi engines' inner-sweep work counter.
        self._token_steps = np.zeros(k, dtype=np.int64)
        #: Per-group L1 growth of the estimate in the last round (the
        #: estimate is monotone, so growth == |change|) — drives the
        #: same quiescence test the other engines run.
        self._last_delta = np.full(k, np.inf, dtype=np.float64)
        # §4.4 bridge inputs, accumulated over the run: total crossing
        # link records and the set of communicating pairs.
        self._crossing_records = 0
        self._pairs_seen: set = set()
        #: Wire codec: walk tokens carry page ids, not scores, so the
        #: "delta" codec degenerates to exact varint token frames
        #: (sorted global target ids, gap-coded) — nothing to quantize
        #: and no error budget to spend (config validation rejects
        #: delta-q16 and ε_comm > 0 for this engine).
        self._codec_on = config.codec != "none"
        self._codec_frames = 0
        self._codec_entries = 0

        #: Common tick period of the synchronous schedule.
        self.period = max(0.5 * (config.t1 + config.t2), MIN_MEAN_WAIT)

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Number of page groups (the paper's K)."""
        return self.config.n_groups

    def paper_round_estimate(self) -> Dict[str, float]:
        """Per-round traffic predicted by the paper's §4.4 formulas.

        The mc counterpart of
        :meth:`SynchronousEngine.paper_round_estimate`: W is the *mean*
        walk records crossing the cut per executed round (walk traffic
        decays, so only the mean is well-defined per round), and h is
        the overlay mean hop count over the pairs that actually carried
        tokens.  Call after :meth:`run`; before any round both terms
        are zero.
        """
        from repro.analysis.cost_model import (
            direct_data_bytes,
            direct_messages,
            indirect_data_bytes,
            indirect_messages,
        )

        k = self.config.n_groups
        w = self._crossing_records / max(self._rounds, 1)
        hop_counts = [self.overlay.hops(g, h) for g, h in sorted(self._pairs_seen)]
        h_mean = float(np.mean(hop_counts)) if hop_counts else 0.0
        if self.config.transport == "indirect":
            return {
                "data_messages": indirect_messages(
                    k, self.overlay.mean_neighbor_count()
                ),
                "data_bytes": indirect_data_bytes(w, h_mean),
            }
        return {
            "data_messages": direct_messages(k, h_mean),
            "data_bytes": direct_data_bytes(w, h_mean, k),
        }

    # ------------------------------------------------------------------
    def _round(self) -> None:
        """One bulk-synchronous round: step all tokens, ship crossers."""
        k = self.config.n_groups
        pos = self.state.pos
        if pos.size:
            self._token_steps += np.bincount(self._group_of[pos], minlength=k)
        src, dst, counted = self.state.step()
        # Per-group estimate growth (quiescence signal): exactly the
        # mass credited this round, in rank units.
        if counted.size:
            self._last_delta = (
                np.bincount(self._group_of[counted], minlength=k).astype(
                    np.float64
                )
                * self.state.estimate_factor
            )
        else:
            self._last_delta = np.zeros(k, dtype=np.float64)
        # Cut-crossing tokens become this round's messages: bin them
        # per ordered (src, dst) group pair — bincount over src·K+dst
        # yields (source ascending, destination ascending), the same
        # emission order the other engines use — and replay through
        # the real transport, one link record per forwarded token.
        if src.size:
            gs = self._group_of[src]
            gd = self._group_of[dst]
            cross = gs != gd
            if cross.any():
                codes = gs[cross].astype(np.int64) * k + gd[cross]
                counts = np.bincount(codes, minlength=k * k)
                present = np.flatnonzero(counts)
                if self._codec_on:
                    # Gap-coded token frames: group the crossing
                    # targets per ordered pair, sort each pair's global
                    # page ids, and charge the exact varint frame size
                    # instead of 100 B per forwarded token.
                    targets = dst[cross][np.argsort(codes, kind="stable")]
                    bounds = np.cumsum(counts[present])
                    sends = []
                    start = 0
                    for j, c in enumerate(present):
                        ids = np.sort(targets[start : int(bounds[j])])
                        start = int(bounds[j])
                        sends.append(
                            (
                                int(c) // k,
                                int(c) % k,
                                int(counts[c]),
                                token_frame_bytes(ids),
                            )
                        )
                        self._codec_entries += int(ids.size)
                    self._codec_frames += len(sends)
                else:
                    sends = [
                        (int(c) // k, int(c) % k, int(counts[c]))
                        for c in present
                    ]
                _, acc = _replay_transport_round(
                    self.config, self.overlay, sends
                )
                self.accountant.merge(acc)
                self._crossing_records += int(counts.sum())
                self._pairs_seen.update((s[0], s[1]) for s in sends)
        self._rounds += 1

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        max_time: float = 1000.0,
        target_relative_error: Optional[float] = None,
        quiescence_delta: Optional[float] = None,
        quiescence_samples: int = 3,
    ) -> RunResult:
        """Execute rounds until a stop condition; gather a RunResult.

        The tick/sample clocks replicate :meth:`SynchronousEngine.run`
        (rounds at the common period, samples at whole multiples of
        it, the sample at a tick observing the rounds completed before
        it).  Stop conditions: target relative error, quiescence
        (every group's last-round estimate growth at or below
        ``quiescence_delta`` for ``quiescence_samples`` consecutive
        samples), ``max_time`` — plus the estimator's natural
        completion: once every token has terminated the estimate is
        final, so the run ends at the first sample that observes an
        empty ensemble.
        """
        cfg = self.config
        trace = ConvergenceTrace()
        converged = False
        target_time: Optional[float] = None
        quiescent = False
        quiescence_time: Optional[float] = None
        quiet_streak = 0

        ranks_buf = np.empty(self.graph.n_pages, dtype=np.float64)
        denom = l1_norm(self.reference)

        def sample(t: float) -> None:
            nonlocal converged, target_time, quiescent, quiescence_time, quiet_streak
            ranks = self.state.estimate(out=ranks_buf)
            mean_rank = float(ranks.mean()) if ranks.size else 0.0
            np.subtract(ranks, self.reference, out=ranks)
            np.abs(ranks, out=ranks)
            num = float(ranks.sum())
            if denom == 0.0:
                err = 0.0 if num == 0.0 else math.inf
            else:
                err = num / denom
            trace.times.append(t)
            trace.relative_errors.append(err)
            trace.mean_ranks.append(mean_rank)
            trace.max_outer_iterations.append(self._rounds)
            trace.mean_outer_iterations.append(float(self._rounds))
            snap = self.accountant.snapshot(t)
            trace.total_messages.append(snap.total_messages)
            trace.total_bytes.append(snap.total_bytes)
            if (
                target_relative_error is not None
                and err <= target_relative_error
                and not converged
            ):
                converged = True
                target_time = t
            if quiescence_delta is not None and not quiescent:
                quiet = self._rounds > 0 and bool(
                    (self._last_delta <= quiescence_delta).all()
                )
                quiet_streak = quiet_streak + 1 if quiet else 0
                if quiet_streak >= quiescence_samples:
                    quiescent = True
                    quiescence_time = t

        interval = float(cfg.sample_interval)
        every = int(round(interval / self.period))

        sample(0.0)
        t = 0.0
        t_s = 0.0
        k = 0
        exhausted = self.state.alive == 0
        while not converged and not quiescent and not exhausted:
            t_next = t + self.period
            if t_next > max_time:
                t = float(max_time)
                break
            t = t_next
            k += 1
            if k % every == 0:
                t_s = t_s + interval
                sample(t_s)
                if converged or quiescent:
                    break
                if self.state.alive == 0:
                    # Every token terminated and the final estimate is
                    # on the trace; further rounds are no-ops.
                    exhausted = True
                    break
            self._round()

        codec_stats = None
        if self._codec_on:
            # Token frames are exact, so the certificate is trivially 0.
            codec_stats = {
                "codec": cfg.codec,
                "epsilon": 0.0,
                "pairs": len(self._pairs_seen),
                "frames": self._codec_frames,
                "suppressed_frames": 0,
                "exact_flushes": self._codec_frames,
                "entries_sent": self._codec_entries,
                "resyncs": 0,
                "residual_mass": 0.0,
                "certified_bound": 0.0,
            }
        return assemble_run_result(
            ranks=self.state.estimate(out=ranks_buf),
            reference=self.reference,
            trace=trace,
            converged=converged,
            time_to_target=target_time,
            outer_iterations=np.full(cfg.n_groups, self._rounds, dtype=np.int64),
            inner_sweeps=self._token_steps.copy(),
            accountant=self.accountant,
            now=t,
            dropped_updates=self.dropped_updates,
            quiescent=quiescent,
            quiescence_time=quiescence_time,
            config=cfg,
            codec_stats=codec_stats,
        )
