"""HITS — Kleinberg's hubs & authorities (paper ref [1]).

The paper's introduction positions HITS as the other seminal
link-analysis algorithm and notes that "simply scaling HITS or
PageRank algorithms to distributed environment … is not a trivial
thing".  This centralized implementation serves as the comparison
baseline the intro implies: like Algorithm 1 it is an iterative
eigenvector computation with a per-step normalization — exactly the
synchronization-hungry structure the paper's open-system
reformulation removes for PageRank.

Scores are L2-normalized each iteration (Kleinberg's original
formulation); the fixed points are the principal eigenvectors of
``AᵀA`` (authorities) and ``AAᵀ`` (hubs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.graph.webgraph import WebGraph
from repro.utils.validation import check_positive

__all__ = ["HITSResult", "hits"]


@dataclass
class HITSResult:
    """Hub and authority scores with iteration accounting."""

    hubs: np.ndarray
    authorities: np.ndarray
    iterations: int
    converged: bool
    final_delta: float
    deltas: List[float] = field(default_factory=list)

    def top_authorities(self, k: int = 10) -> np.ndarray:
        """Page ids of the k highest-authority pages."""
        return np.argsort(-self.authorities, kind="stable")[:k]

    def top_hubs(self, k: int = 10) -> np.ndarray:
        """Page ids of the k highest-hub pages."""
        return np.argsort(-self.hubs, kind="stable")[:k]


def hits(
    graph: WebGraph,
    *,
    tol: float = 1e-10,
    max_iter: int = 1000,
    record_history: bool = False,
) -> HITSResult:
    """Run HITS on the internal link structure of ``graph``.

    External links play no role: HITS is defined on the observed
    subgraph (a hub confers authority only to pages we crawled).

    Returns all-zero scores for an empty or linkless graph rather than
    dividing by a zero norm.
    """
    check_positive(tol, "tol")
    n = graph.n_pages
    if n == 0 or graph.n_internal_links == 0:
        zeros = np.zeros(n)
        return HITSResult(zeros, zeros.copy(), 0, True, 0.0)

    adj = graph.adjacency()  # (u, v) = link count u -> v
    adj_t = adj.T.tocsr()
    hubs = np.ones(n) / np.sqrt(n)
    auths = np.ones(n) / np.sqrt(n)
    deltas: List[float] = []
    delta = np.inf
    iterations = 0
    for iterations in range(1, max_iter + 1):
        new_auths = adj_t @ hubs
        norm = np.linalg.norm(new_auths)
        if norm > 0:
            new_auths /= norm
        new_hubs = adj @ new_auths
        norm = np.linalg.norm(new_hubs)
        if norm > 0:
            new_hubs /= norm
        delta = float(
            np.abs(new_auths - auths).sum() + np.abs(new_hubs - hubs).sum()
        )
        auths, hubs = new_auths, new_hubs
        if record_history:
            deltas.append(delta)
        if delta <= tol:
            return HITSResult(hubs, auths, iterations, True, delta, deltas)
    return HITSResult(hubs, auths, iterations, False, float(delta), deltas)
