"""Hybrid flat/event execution engine — the fault-tolerant fast path.

The flat engine (:class:`~repro.core.engine.SynchronousEngine`) runs a
bulk-synchronous round as three sparse kernels but is failure-free;
the event engine (:class:`~repro.core.coordinator.DistributedRun`)
simulates every fault subsystem but pays one Python event per message.
:class:`HybridEngine` combines them: **compute stays flat** (the same
per-group Jacobi/DPR2 kernels over one concatenated rank vector) while
**messaging and faults run on a persistent event-simulated "fault
plane"** — a real :class:`~repro.net.simulator.Simulator` carrying the
real transport stack (:func:`~repro.net.transport.build_transport`,
optionally wrapped in :class:`~repro.net.reliable.ReliableTransport`),
the crash/pause injectors, the heartbeat detector, and the
checkpoint/recovery layer, all driven over lightweight *shadow
rankers* that bridge the flat engine's state slices.

Execution model (one round at tick ``t``):

1. advance the fault plane to ``t`` — crashes, pauses, heartbeat
   sweeps, checkpoints, takeovers, retransmissions, and in-flight
   deliveries up to the tick all land exactly as the event engine
   would interleave them (they share one timeline, so a crash firing
   mid-delivery-window swallows exactly the deliveries the event
   engine drops);
2. step every *eligible* group (alive, unpaused, and — under the
   async schedule — due per its rate credit) with the flat per-group
   kernels, mirroring :meth:`repro.core.dpr.DPRNode.step` bit for bit;
3. emit each stepping group's compressed cut segments as real
   :class:`~repro.net.message.ScoreUpdate` payloads through the fault
   plane's transport (byte accounting reads ``n_link_records``, so
   compressed payloads cost exactly what dense ones do), where loss,
   chaos, ARQ, and sequence numbering behave identically to the event
   engine.

When the config needs no fault plane and no approximation (sync
schedule, no faults, no suppression) the engine *is* the flat engine:
every round runs the inherited three-kernel path and the result is
bit-identical to ``engine="flat"`` — and therefore to the event
engine.  Rounds are counted either way (``fast_rounds`` vs
``replayed_rounds`` in the :class:`~repro.core.coordinator.RunResult`).

Equivalence contracts (verified by ``tests/test_hybrid.py``; see
DESIGN.md §13 for the full argument):

* **exact** — sync fault-free configs: bit-identical ranks, traffic,
  and trace versus both the flat and event engines;
* **approximate** — faulted or async configs: the run reports
  ``fidelity="approximate"`` and reconverges to the same ε verdict as
  the event engine.  The known divergence sources are all timing
  artifacts, not state corruption: recovered replacements re-step on
  the round grid instead of the event engine's off-grid wake chain,
  async wake jitter is replaced by a per-group rate credit
  (``period / mean_wait`` steps per round on average, at most one
  step per round), and exact event-time ties (a retransmit timer
  landing precisely on a wake) may order differently.

Async approximation: each group accumulates ``period / mean_wait_g``
of *credit* per round and steps when credit reaches 1 (consuming it);
credit is capped at 1 so a paused or crashed group cannot bank a
burst, and paused/crashed groups still consume due credit, matching
the event engine's paused rankers burning their wake chain.  Mean
waits come from ``config.mean_waits`` or the same named
``"wait-means"`` stream the event engine draws.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.coordinator import DistributedConfig
from repro.core.engine import SynchronousEngine, _replay_transport_round
from repro.core.ranker import MIN_MEAN_WAIT
from repro.core.recovery import Checkpointer, CheckpointStore, RecoveryManager
from repro.graph.partition import Partition
from repro.graph.webgraph import WebGraph
from repro.linalg.jacobi import csr_matvec_into, jacobi_solve
from repro.net.bandwidth import TrafficAccountant
from repro.net.failures import (
    ChaosModel,
    NodeCrashInjector,
    NodePauseInjector,
    NoLoss,
)
from repro.net.heartbeat import HeartbeatMonitor
from repro.net.latency import FixedLatency
from repro.net.message import (
    ACK_MESSAGE_BYTES,
    LINK_RECORD_BYTES,
    LOOKUP_MESSAGE_BYTES,
    PACKAGE_HEADER_BYTES,
    ScoreUpdate,
)
from repro.net.reliable import ReliableTransport, RetryPolicy
from repro.net.simulator import Simulator
from repro.net.transport import build_transport
from repro.utils.rng import SeedSequenceFactory

__all__ = ["HybridEngine"]


class _ShadowNode:
    """DPRNode-shaped view of one group's slice of the flat state.

    Implements exactly the :class:`~repro.core.dpr.DPRNode`
    ``state_dict``/``load_state_dict`` contract the checkpoint and
    recovery layers consume, reading and writing the engine's global
    arrays in place.  Snapshots keep afferent vectors in the engine's
    *compressed* (nonzero-row) form — the format only has to round-trip
    within the hybrid engine, and the compressed scatter re-sums to the
    same bits as the dense refresh (see the flat engine's docstring).
    """

    __slots__ = ("engine", "group")

    def __init__(self, engine: "HybridEngine", group: int):
        self.engine = engine
        self.group = group

    @property
    def outer_iterations(self) -> int:
        return int(self.engine._outer[self.group])

    @property
    def inner_sweeps(self) -> int:
        return int(self.engine._inner_sweeps[self.group])

    def state_dict(self) -> dict:
        eng, g = self.engine, self.group
        return {
            "group": g,
            "mode": eng.config.algorithm,
            "r": eng._r[eng._slices[g]].copy(),
            "latest_values": {
                src: vec.copy() for src, vec in eng._latest[g].items()
            },
            "latest_gen": dict(eng._gen_latest[g]),
            "outer_iterations": int(eng._outer[g]),
            "inner_sweeps": int(eng._inner_sweeps[g]),
            "stale_updates": int(eng._stale[g]),
        }

    def load_state_dict(self, state: dict) -> None:
        eng, g = self.engine, self.group
        np.copyto(eng._r[eng._slices[g]], state["r"])
        eng._latest[g] = {
            src: np.array(vec, dtype=np.float64)
            for src, vec in state["latest_values"].items()
        }
        eng._gen_latest[g] = dict(state["latest_gen"])
        eng._outer[g] = int(state["outer_iterations"])
        eng._inner_sweeps[g] = int(state["inner_sweeps"])
        eng._stale[g] = int(state["stale_updates"])
        # Force an X refresh from the restored afferent vectors on the
        # group's next step (DPRNode.load_state_dict marks X dirty).
        eng._mail.add(g)


class _ShadowRanker:
    """PageRanker-shaped façade over one group for the fault plane.

    Satisfies the duck-typed contract shared by the injectors
    (writable ``paused``/``crashed``), the heartbeat monitor
    (``crashed``), the checkpointer (``group``, ``node``), and the
    recovery manager (``node``, ``start``).  It owns no wake chain —
    the engine's round loop decides who steps — so ``start`` only
    marks the shadow live.
    """

    __slots__ = ("node", "group", "paused", "crashed", "started")

    def __init__(self, engine: "HybridEngine", group: int):
        self.node = _ShadowNode(engine, group)
        self.group = group
        self.paused = False
        self.crashed = False
        self.started = False

    def start(self, *, initial_delay: Optional[float] = None) -> None:
        self.started = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"_ShadowRanker(group={self.group}, paused={self.paused}, "
            f"crashed={self.crashed})"
        )


class _ReplayARQ:
    """Round-granular ARQ protocol replay for reliable+direct configs.

    Running the reliable transport on the fault plane is *exact* but
    pays one simulator event per transmission, retransmission, and ACK
    — at 1e5-page churn that costs nearly as much as the full event
    engine.  This replay collapses each logical message's whole ARQ
    conversation (attempts, chaos duplicates, ACKs, ACK losses,
    retransmissions, give-ups) into a tight loop at the *sending round*
    instead of spreading it along the timeout/backoff timeline:

    * every wire attempt re-rolls the origin loss model and is
      accounted exactly as :class:`~repro.net.transport.DirectTransport`
      would (per-send DHT lookup from a per-pair hop cache, one
      end-to-end data message, one ACK per live delivery);
    * chaos draws (duplicate, ACK-loss, reorder) come from the same
      named streams the event engine seeds, so the replay is
      deterministic — but consumed in round order rather than timer
      order, which is the documented ε-level divergence of counters
      like ``retransmits`` on faulted configs;
    * sequence numbers advance one per logical message per (src, dst)
      pair, identical to :class:`~repro.net.reliable.ReliableTransport`
      numbering, and :meth:`window_state` reports the same shape for
      the continuity tests.

    Rank-state fidelity: with ARQ a payload reaches any *live*
    destination with probability ``1 - p_fail^(1+max_retries)`` ≈ 1;
    the replay applies it in the sending round, whereas the event
    engine's retransmitted copies can spill past a round boundary.
    DPR's staleness tolerance (Theorems 4.1/4.2) bounds the effect —
    this is the same approximation class as the async rate credit.
    """

    def __init__(
        self,
        *,
        loss,
        chaos: ChaosModel,
        retry: RetryPolicy,
        accountant,
        overlay,
        jitter_rng,
    ):
        self.loss = loss
        self.chaos = chaos
        self.retry = retry
        self.accountant = accountant
        self.overlay = overlay
        self._rng = jitter_rng
        #: Deterministic per-pair hop counts (static overlay routes).
        self._hops: Dict[Tuple[int, int], int] = {}
        self._next_seq: Dict[Tuple[int, int], int] = {}
        # Same counter names as ReliableTransport.stats().
        self.retransmits = 0
        self.gave_up = 0
        self.dup_drops = 0
        self.dead_drops = 0
        self.acks_lost = 0
        self.chaos_duplicates = 0
        self.stale_acks = 0
        #: Origin-loss drops across all attempts (inner-transport view).
        self.dropped_updates = 0

    def _hops_for(self, src: int, dst: int) -> int:
        hops = self._hops.get((src, dst))
        if hops is None:
            hops = self.overlay.hops(src, dst)
            self._hops[(src, dst)] = hops
        return hops

    def _transmission(
        self, src: int, dst: int, payload_bytes: int, alive: bool,
        delivered_before: bool, paper_bytes: Optional[int] = None,
    ) -> Tuple[bool, bool]:
        """One wire attempt; returns (delivered fresh, ACK got back)."""
        if not self.loss.delivered(src, dst):
            self.dropped_updates += 1
            return False, False
        acc = self.accountant
        if src != dst:
            acc.record_lookup(
                src, self._hops_for(src, dst), LOOKUP_MESSAGE_BYTES
            )
        acc.record_data_message(
            src,
            dst,
            PACKAGE_HEADER_BYTES + payload_bytes,
            paper_bytes=(
                None
                if paper_bytes is None
                else PACKAGE_HEADER_BYTES + paper_bytes
            ),
        )
        if not alive:
            self.dead_drops += 1
            return False, False
        fresh = not delivered_before
        if not fresh:
            self.dup_drops += 1
        # ACK unconditionally (duplicates included), as the receiver does.
        acc.record_ack(dst, src, ACK_MESSAGE_BYTES)
        if self.chaos.active and self.chaos.ack_lost():
            self.acks_lost += 1
            return fresh, False
        return fresh, True

    def send(
        self,
        src: int,
        dst: int,
        payload_bytes: int,
        alive: bool,
        paper_bytes: Optional[int] = None,
    ) -> bool:
        """Replay one logical message's full ARQ chain.

        Returns True when the payload reached a live destination on any
        attempt (at-least-once delivery with an idempotent receiver).
        ``paper_bytes`` carries the flat §4.4 payload charge when
        ``payload_bytes`` is an encoded frame size (codec runs); every
        attempt — retransmissions and chaos duplicates included —
        resends the same frame, so both charges ride the whole chain.
        """
        pair = (src, dst)
        self._next_seq[pair] = self._next_seq.get(pair, 0) + 1
        chaos = self.chaos
        delivered = False
        acked = False
        attempts = 0
        while True:
            if chaos.active:
                chaos.reorder_delay()  # timing-only draw (stream parity)
            fresh, got_ack = self._transmission(
                src, dst, payload_bytes, alive, delivered, paper_bytes
            )
            delivered = delivered or fresh
            acked = acked or got_ack
            if chaos.active and chaos.duplicate():
                self.chaos_duplicates += 1
                fresh, got_ack = self._transmission(
                    src, dst, payload_bytes, alive, delivered, paper_bytes
                )
                delivered = delivered or fresh
                acked = acked or got_ack
            # The event engine arms an ACK timer per staged attempt.
            self.retry.delay(attempts, self._rng)
            if acked:
                return delivered
            if attempts >= self.retry.max_retries:
                self.gave_up += 1
                return delivered
            attempts += 1
            self.retransmits += 1

    def window_state(self) -> Dict[Tuple[int, int], Dict[str, object]]:
        """ReliableTransport-shaped window snapshot.

        Every ARQ conversation resolves inside its sending round, so
        ``pending`` is always empty; ``next_seq`` advances exactly as
        the event engine's per-pair numbering.
        """
        return {
            pair: {"next_seq": nxt, "pending": []}
            for pair, nxt in self._next_seq.items()
        }


class HybridEngine(SynchronousEngine):
    """Flat-kernel rounds over a persistent event-simulated fault plane.

    Select with ``DistributedConfig(engine="hybrid")`` — or simply ask
    for ``engine="flat"`` with fault knobs or ``schedule="async"``;
    :func:`~repro.core.capabilities.resolve_engine` dispatches here
    automatically.  Construction mirrors the flat engine (same
    partition/overlay/loss from the same named seed streams), then
    adds the fault plane only when the config needs it.
    """

    def __init__(
        self,
        graph: WebGraph,
        config: DistributedConfig,
        *,
        partition: Optional[Partition] = None,
        reference: Optional[np.ndarray] = None,
    ):
        super().__init__(
            graph, config, partition=partition, reference=reference
        )
        cfg = config
        k = cfg.n_groups

        #: Fault-plane processes (injectors/heartbeat/checkpoint/recovery)
        #: that need the persistent simulator regardless of data path.
        self._plane = bool(
            cfg.pause_faults > 0
            or cfg.crash_prob > 0.0
            or cfg.heartbeat_interval > 0.0
            or cfg.checkpoint_interval > 0.0
            or cfg.recovery
        )
        self._fault_world = bool(cfg.reliable or self._plane)
        #: Reliable+direct data traffic runs the round-granular ARQ
        #: replay (the fast path the chaos bench gates); reliable over
        #: the indirect transport keeps full world-mode fidelity.
        self._arq_mode = bool(cfg.reliable and cfg.transport == "direct")
        self._async = cfg.schedule == "async"
        self._approx = (
            self._async or self._fault_world or cfg.suppress_tol > 0.0
        )
        #: Rounds run on the pure inherited flat path.
        self._fast_rounds = 0
        #: Rounds whose messaging went through the fault plane or the
        #: transport replay (the approximate paths).
        self._replayed_rounds = 0

        self._fsim: Optional[Simulator] = None
        self._transport = None
        self._reliable: Optional[ReliableTransport] = None
        self._arq: Optional[_ReplayARQ] = None
        self._pause_injector: Optional[NodePauseInjector] = None
        self._crash_injector: Optional[NodeCrashInjector] = None
        self._heartbeat: Optional[HeartbeatMonitor] = None
        self._checkpoint_store = CheckpointStore()
        self._checkpointer: Optional[Checkpointer] = None
        self._recovery: Optional[RecoveryManager] = None

        if not self._approx:
            # Pure flat path: the inherited engine runs every round and
            # the result is bit-identical to engine="flat".
            return

        # A second factory over the same seed reproduces the event
        # engine's named streams exactly ("wait-means", "chaos",
        # "retry-jitter", injector streams); the streams the base
        # constructor already consumed (partition/overlay/loss) are
        # name-derived and independent, so nothing is double-drawn.
        seeds = SeedSequenceFactory(cfg.seed)
        self._seeds = seeds

        # Per-group outer counters and afferent bookkeeping replace the
        # flat engine's single round counter once groups step unevenly.
        self._outer = np.zeros(k, dtype=np.int64)
        self._gen_latest: List[Dict[int, int]] = [{} for _ in range(k)]
        self._stale = np.zeros(k, dtype=np.int64)
        self._dropped_while_crashed = 0
        self._suppressed_sends = 0
        self._last_sent: Dict[Tuple[int, int], np.ndarray] = {}
        #: Tick clock mirroring the run loop's float-add sequence.
        self._clock = 0.0
        #: Per-source emission pairs: (dst, compressed slice, records),
        #: destinations ascending (the ranker emission order).
        self._pairs_by_src: List[List[Tuple[int, slice, int]]] = [
            [] for _ in range(k)
        ]
        for g, h, csl, _idx, records in self._pairs:
            self._pairs_by_src[g].append((h, csl, records))
        #: Calibration cache for the non-world approx path, keyed by
        #: the round's surviving (src, dst) send set (lossless only —
        #: under loss every round replays its own survivor set).
        self._partial_cal: Dict[
            Tuple, Tuple[List[Tuple[int, int]], TrafficAccountant]
        ] = {}

        # Async rate credits (sync runs at rate 1: every group steps
        # each round unless paused/crashed).
        sync_wait = 0.5 * (cfg.t1 + cfg.t2)
        if not self._async:
            waits = [sync_wait] * k
        elif cfg.mean_waits is not None:
            waits = [float(w) for w in cfg.mean_waits]
        else:
            wait_rng = seeds.generator("wait-means")
            waits = [
                float(wait_rng.uniform(cfg.t1, cfg.t2)) for _ in range(k)
            ]
        self._mean_waits = waits
        self._rates = np.array(
            [self.period / max(w, MIN_MEAN_WAIT) for w in waits],
            dtype=np.float64,
        )
        self._credit = np.zeros(k, dtype=np.float64)

        self._shadows: List[_ShadowRanker] = [
            _ShadowRanker(self, g) for g in range(k)
        ]

        if not self._fault_world:
            return

        retry = RetryPolicy(
            timeout=cfg.retry_timeout,
            backoff=cfg.retry_backoff,
            jitter=cfg.retry_jitter,
            max_timeout=cfg.retry_max_timeout,
            max_retries=cfg.max_retries,
        ) if cfg.reliable else None
        chaos = ChaosModel(
            duplicate_prob=cfg.duplicate_prob,
            reorder_prob=cfg.reorder_prob,
            reorder_max_delay=cfg.reorder_max_delay,
            ack_loss_prob=cfg.ack_loss_prob,
            seed=seeds.generator("chaos"),
        ) if cfg.reliable else None

        if self._arq_mode:
            # Reliable+direct: data traffic runs the round-granular ARQ
            # replay; only the fault-plane *processes* (if any) need the
            # persistent simulator.
            self._arq = _ReplayARQ(
                loss=self._loss,
                chaos=chaos,
                retry=retry,
                accountant=self.accountant,
                overlay=self.overlay,
                jitter_rng=seeds.generator("retry-jitter"),
            )
            if not self._plane:
                return
            self._fsim = Simulator()
        else:
            # ---- the fault plane carries the real transport ----------
            fsim = Simulator()
            self._fsim = fsim
            transport_kwargs = {}
            if cfg.transport == "indirect":
                transport_kwargs["aggregation_delay"] = cfg.aggregation_delay
            # The inner transport reuses the base constructor's loss
            # model instance, so the "loss" stream is consumed exactly
            # once, per send attempt, in the same order as the event
            # engine's stack.  It records into the *main* accountant at
            # event-simulated send and delivery times — the same counter
            # arithmetic as the event engine, ACK bytes included.
            transport = build_transport(
                cfg.transport,
                fsim,
                self.overlay,
                self.accountant,
                loss=self._loss,
                latency=FixedLatency(cfg.hop_delay),
                **transport_kwargs,
            )
            if cfg.reliable:
                shadows = self._shadows
                self._reliable = ReliableTransport(
                    transport,
                    retry=retry,
                    chaos=chaos,
                    alive=lambda g: not shadows[g].crashed,
                    seed=seeds.generator("retry-jitter"),
                )
                transport = self._reliable
            self._transport = transport
            transport.attach(self._on_deliver)
        fsim = self._fsim

        if cfg.pause_faults > 0:
            self._pause_injector = NodePauseInjector(
                n_faults=cfg.pause_faults,
                horizon=cfg.pause_horizon,
                mean_outage=cfg.pause_mean_outage,
                seed=seeds.generator("pause-injector"),
            )
            self._pause_injector.install(fsim, self._shadows)
        if cfg.crash_prob > 0.0:
            self._crash_injector = NodeCrashInjector(
                crash_prob=cfg.crash_prob,
                after=cfg.crash_after,
                horizon=cfg.crash_horizon,
                seed=seeds.generator("crash-injector"),
            )
            self._crash_injector.install(fsim, self._shadows)

        if cfg.heartbeat_interval > 0.0:
            self._heartbeat = HeartbeatMonitor(
                fsim,
                self._shadows,
                interval=cfg.heartbeat_interval,
                miss_threshold=cfg.heartbeat_miss_threshold,
            )
        if cfg.checkpoint_interval > 0.0:
            self._checkpointer = Checkpointer(
                fsim,
                self._shadows,
                self._checkpoint_store,
                interval=cfg.checkpoint_interval,
            )
        if cfg.recovery:
            self._recovery = RecoveryManager(
                fsim,
                self._shadows,
                self._checkpoint_store,
                self._make_replacement,
            )
            assert self._heartbeat is not None  # enforced by the config
            self._heartbeat.add_death_callback(self._recovery.on_death)
        # Started here (fsim.now == 0) rather than in run(): identical
        # to the event engine starting them before its sim advances.
        if self._heartbeat is not None:
            self._heartbeat.start()
        if self._checkpointer is not None:
            self._checkpointer.start()

    # ------------------------------------------------------------------
    # Fault-plane callbacks
    # ------------------------------------------------------------------
    def _make_replacement(self, g: int, epoch: int) -> _ShadowRanker:
        """Recovery factory: reset group ``g`` to blank-node state.

        Mirrors the event engine's fresh :class:`DPRNode` (zero ranks,
        empty afferent memory, zeroed counters); the recovery manager
        restores the latest checkpoint on top, if one exists.
        """
        sl = self._slices[g]
        self._r[sl] = 0.0
        self._x[sl] = 0.0
        self._latest[g] = {}
        self._gen_latest[g] = {}
        self._outer[g] = 0
        self._inner_sweeps[g] = 0
        self._stale[g] = 0
        self._last_delta[g] = np.inf
        self._credit[g] = 0.0
        self._mail.discard(g)
        if self.config.suppress_tol > 0.0:
            # A fresh ranker has sent nothing yet.
            for h, _csl, _records in self._pairs_by_src[g]:
                self._last_sent.pop((g, h), None)
        return _ShadowRanker(self, g)

    def _apply_values(self, src: int, dst: int, values, generation: int) -> None:
        """DPRNode.receive semantics over flat state (gen check, first-
        arrival summation order, mail flag)."""
        gens = self._gen_latest[dst]
        prev_gen = gens.get(src)
        if prev_gen is not None and generation <= prev_gen:
            self._stale[dst] += 1
            return
        gens[src] = generation
        held = self._latest[dst].get(src)
        if held is None:
            # First arrival fixes this source's position in the
            # destination's re-summation order for good (dict order).
            self._latest[dst][src] = np.array(values, dtype=np.float64)
        else:
            np.copyto(held, values)
        self._mail.add(dst)

    def _on_deliver(self, dst: int, update: ScoreUpdate) -> None:
        """Transport upcall: DPRNode.receive semantics over flat state."""
        shadow = self._shadows[dst]
        if self._reliable is None and shadow.crashed:
            # Plain transports deliver into the dead group's ranker,
            # which drops on the floor (PageRanker.receive); the
            # reliable wrapper's alive-oracle already dead-dropped.
            self._dropped_while_crashed += 1
            return
        self._apply_values(
            update.src_group, dst, update.values, update.generation
        )

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def _stepping_groups(self) -> List[int]:
        """Groups that step this round: due, alive, and unpaused."""
        k = self.config.n_groups
        if self._async:
            np.add(self._credit, self._rates, out=self._credit)
            due = self._credit >= 1.0
            # Due groups consume their credit whether or not they are
            # eligible — a paused event ranker burns its wakes too.
            self._credit[due] -= 1.0
            np.clip(self._credit, 0.0, 1.0, out=self._credit)
        out: List[int] = []
        for g in range(k):
            if self._async and not due[g]:
                continue
            shadow = self._shadows[g]
            if shadow.crashed or shadow.paused:
                continue
            out.append(g)
        return out

    def _compute_masked(self, stepping: List[int]) -> None:
        """Step each eligible group exactly as DPRNode.step would."""
        cfg = self.config
        for g in stepping:
            sl = self._slices[g]
            if sl.stop == sl.start:
                self._last_delta[g] = 0.0
                self._outer[g] += 1
                continue
            if g in self._mail:
                # Refresh X: re-sum the newest compressed afferent
                # vectors in first-arrival order (same elementwise adds
                # as DPRNode._refresh; skipped rows only ever add +0.0).
                xh = self._x[sl]
                xh[:] = 0.0
                for src, vec in self._latest[g].items():
                    xh[self._pair_idx[(src, g)]] += vec
                self._mail.discard(g)
            r_g = self._r[sl]
            f_g = self._fbuf[: sl.stop - sl.start]
            np.add(self._beta_e[sl], self._x[sl], out=f_g)
            ws = self._workspaces[g]
            if cfg.algorithm == "dpr2":
                delta = ws.sweep_delta(
                    self.system.diag(g), r_g, f_g, out=ws._ping
                )
                np.copyto(r_g, ws._ping)
                self._last_delta[g] = float(delta)
                self._inner_sweeps[g] += 1
            else:
                if cfg.inner_solver == "gauss_seidel":
                    from repro.linalg.acceleration import gauss_seidel_solve

                    res = gauss_seidel_solve(
                        self.system.diag(g), f_g, x0=r_g,
                        tol=cfg.local_tol, max_iter=cfg.max_inner,
                    )
                else:
                    res = jacobi_solve(
                        self.system.diag(g), f_g, x0=r_g,
                        tol=cfg.local_tol, max_iter=cfg.max_inner,
                        workspace=ws,
                    )
                self._inner_sweeps[g] += res.iterations
                sc = ws._scratch
                np.subtract(res.x, r_g, out=sc)
                np.abs(sc, out=sc)
                self._last_delta[g] = float(sc.sum())
                np.copyto(r_g, res.x)
            self._outer[g] += 1

    def _emit_pairs(self, g: int) -> List[Tuple[int, slice, int]]:
        """Group ``g``'s non-suppressed sends this round."""
        cfg = self.config
        out: List[Tuple[int, slice, int]] = []
        for h, csl, records in self._pairs_by_src[g]:
            seg = self._y[csl]
            if cfg.suppress_tol > 0.0:
                prev = self._last_sent.get((g, h))
                if (
                    prev is not None
                    and float(np.abs(seg - prev).sum()) <= cfg.suppress_tol
                ):
                    # Compressed diff == dense diff: structurally-zero
                    # rows are +0.0 on both sides.
                    self._suppressed_sends += 1
                    continue
                self._last_sent[(g, h)] = seg.copy()
            out.append((h, csl, records))
        return out

    def _emit_world(self, stepping: List[int], t: float) -> None:
        """Send this round's updates through the fault plane.

        Under a codec each pair's compressed segment is encoded first:
        the update carries a copy of the reconstruction mirror (the
        receiver's exact post-frame state, safe against retransmission
        because every resend ships the same object) with the frame's
        calibrated ``wire_bytes``; codec-suppressed pairs send nothing.
        """
        transport = self._transport
        for g in stepping:
            gen = int(self._outer[g])
            updates = []
            for h, csl, records in self._emit_pairs(g):
                wire_bytes = -1
                if self._codec is not None:
                    frame = self._codec.encode(
                        g, h, self._y[csl],
                        index_map=self._pair_idx[(g, h)],
                    )
                    if frame is None:
                        self._suppressed_sends += 1
                        continue
                    values = frame.values.copy()
                    wire_bytes = frame.wire_bytes
                else:
                    # Copied: self._y is reused next round, and the ARQ
                    # layer must retransmit the *original* payload.
                    values = self._y[csl].copy()
                updates.append(
                    ScoreUpdate(
                        src_group=g,
                        dst_group=h,
                        values=values,
                        n_link_records=records,
                        generation=gen,
                        sent_at=t,
                        wire_bytes=wire_bytes,
                    )
                )
            if updates:
                transport.send_updates(g, updates)

    def _emit_arq(self, stepping: List[int]) -> None:
        """Reliable+direct fast path: per-message ARQ protocol replay.

        Payloads that reach a live destination apply in the sending
        round (segments straight from ``self._y``, no per-message
        copies — the chain resolves before the buffer is reused).
        """
        arq = self._arq
        shadows = self._shadows
        for g in stepping:
            gen = int(self._outer[g])
            for h, csl, records in self._emit_pairs(g):
                alive = not shadows[h].crashed
                paper = records * LINK_RECORD_BYTES
                if self._codec is not None:
                    frame = self._codec.encode(
                        g, h, self._y[csl],
                        index_map=self._pair_idx[(g, h)],
                    )
                    if frame is None:
                        self._suppressed_sends += 1
                        continue
                    if arq.send(
                        g, h, frame.wire_bytes, alive, paper_bytes=paper
                    ):
                        # _apply_values copies immediately, so the
                        # mirror view is safe to hand over.
                        self._apply_values(g, h, frame.values, gen)
                    continue
                if arq.send(g, h, paper, alive):
                    self._apply_values(g, h, self._y[csl], gen)

    def _emit_replay(self, stepping: List[int]) -> None:
        """Faultless approx path: loss draws + calibration-style replay.

        Used when the round set is perturbed only by the async credit
        mask and/or suppression: the surviving sends are replayed
        through the real transport on a scratch simulator (exact
        per-round traffic, merged via ``TrafficAccountant.merge``) and
        the segments are applied in the observed delivery order.
        """
        sent: List[Tuple] = []
        for g in stepping:
            for h, csl, records in self._emit_pairs(g):
                if self._codec is not None:
                    # Codec configs are lossless by validation; the
                    # frame size rides as the send's fourth element.
                    frame = self._codec.encode(
                        g, h, self._y[csl],
                        index_map=self._pair_idx[(g, h)],
                    )
                    if frame is None:
                        self._suppressed_sends += 1
                        continue
                    sent.append((g, h, records, frame.wire_bytes))
                    continue
                if not self._loss.delivered(g, h):
                    self.dropped_updates += 1
                    continue
                sent.append((g, h, records))
        # Per-round frame sizes vary under a codec, so its rounds never
        # reuse a cached calibration.
        lossless = isinstance(self._loss, NoLoss) and self._codec is None
        key = tuple((s[0], s[1]) for s in sent) if lossless else None
        cached = self._partial_cal.get(key) if key is not None else None
        if cached is None:
            cached = _replay_transport_round(self.config, self.overlay, sent)
            if key is not None:
                self._partial_cal[key] = cached
        order, acc = cached
        self.accountant.merge(acc)
        for src, dst in order:
            if self._codec is not None:
                seg = self._codec.recon(src, dst)
            else:
                seg = self._y[self._pair_cslice[(src, dst)]]
            held = self._latest[dst].get(src)
            if held is None:
                self._latest[dst][src] = seg.copy()
            else:
                np.copyto(held, seg)
            self._mail.add(dst)

    def _round(self) -> None:
        if not self._approx:
            super()._round()
            self._fast_rounds += 1
            return
        # Same float-add sequence as the run loop's tick clock, so the
        # fault plane's "now" is bitwise the loop's t at every round.
        self._clock += self.period
        t = self._clock
        if self._fsim is not None:
            # Everything scheduled before this tick lands first:
            # deliveries, crashes, pauses, heartbeats, checkpoints,
            # takeovers, ACK timeouts — in event order.
            self._fsim.run(until=t)
        stepping = self._stepping_groups()
        self._compute_masked(stepping)
        csr_matvec_into(self._cut, self._r, self._y)
        if self._arq is not None:
            self._emit_arq(stepping)
        elif self._fsim is not None:
            self._emit_world(stepping, t)
            # Zero-delay deliveries (hop_delay=0) land at t, exactly as
            # the event simulator keeps draining same-time events.
            self._fsim.run(until=t)
        else:
            self._emit_replay(stepping)
        self._rounds += 1
        self._replayed_rounds += 1

    # ------------------------------------------------------------------
    # Run-loop hooks (see SynchronousEngine)
    # ------------------------------------------------------------------
    def _pre_sample(self, t: float) -> None:
        # The event engine's monitor samples after every event strictly
        # before t has been processed; drain the fault plane so traffic
        # snapshots and delivered state agree.  Idempotent with the
        # round's own advance (Simulator.run(until=now) is a no-op).
        if self._approx and self._fsim is not None:
            self._fsim.run(until=t)

    def _finish(self, t: float) -> None:
        # Drain in-flight fault-plane work to the run's final time, as
        # the event engine runs its one simulator to the stop time.
        if self._approx and self._fsim is not None:
            self._fsim.run(until=t)

    def _outer_progress(self) -> Tuple[int, float]:
        if not self._approx:
            return super()._outer_progress()
        if not self._outer.size:
            return 0, 0.0
        return int(self._outer.max()), float(self._outer.mean())

    def _outer_vector(self) -> np.ndarray:
        if not self._approx:
            return super()._outer_vector()
        return self._outer.copy()

    def _quiescent_now(self, quiescence_delta: float) -> bool:
        if not self._approx:
            return super()._quiescent_now(quiescence_delta)
        # The monitor's per-node rule: every group has stepped at least
        # once and its last step delta is at or below the threshold.
        return bool(
            (self._outer > 0).all()
            and (self._last_delta <= quiescence_delta).all()
        )

    def _dropped_total(self) -> int:
        if self._transport is not None:
            # World mode: origin loss fires inside the real transport.
            return int(self._transport.dropped_updates)
        if self._arq is not None:
            # ARQ replay: origin loss re-rolls per wire attempt.
            return self._arq.dropped_updates
        return self.dropped_updates

    def _extra_result_fields(self, now: float) -> Dict:
        fields: Dict = {
            "fidelity": "approximate" if self._approx else "exact",
            "fast_rounds": self._fast_rounds,
            "replayed_rounds": self._replayed_rounds,
        }
        rel = self._reliable if self._reliable is not None else self._arq
        if rel is not None:
            fields.update(
                retransmits=rel.retransmits,
                gave_up=rel.gave_up,
                dup_drops=rel.dup_drops,
                dead_drops=rel.dead_drops,
                acks_lost=rel.acks_lost,
            )
        if self._fault_world:
            fields["crashed_groups"] = (
                self._crash_injector.fired(now)
                if self._crash_injector is not None
                else sum(1 for s in self._shadows if s.crashed)
            )
            fields["deaths_detected"] = (
                self._heartbeat.deaths_detected
                if self._heartbeat is not None
                else 0
            )
            fields["takeovers"] = (
                self._recovery.takeover_count
                if self._recovery is not None
                else 0
            )
            fields["checkpoint_saves"] = self._checkpoint_store.saves
        return fields
