"""Open System PageRank (paper §3).

A *page group* is the set of pages one ranker owns.  For page ``v`` in
group ``G`` the paper decomposes rank into three sources::

    R(v) = I(v) + V(v) + X(v)
         = α Σ_{u∈Bv∩G} R(u)/d(u)   (inner links, eq. 3.1)
         + β E(v)                    (virtual links, eq. 3.2)
         + X(v)                      (afferent links)

yielding the per-group fixed point ``R = A_G R + (βE + X)`` (eq. 3.4),
where ``A_G`` is the group's diagonal block with entries ``α/d(u)``.
Algorithm 2 (``GroupPageRank``) solves it by Jacobi iteration —
guaranteed to converge because ``ρ(A_G) ≤ ‖·‖ ≤ α < 1``
(Theorems 3.1–3.2).

Efferent ranks ``Y`` (eq. 3.5) are computed from the cross blocks.
The paper prints the efferent matrix entry as ``β/d(u)``; as recorded
in DESIGN.md this must be ``α/d(u)`` for the distributed fixed point to
match centralized PageRank (β is already consumed by the virtual-link
term), and that is what :class:`~repro.linalg.operators.GroupBlocks`
builds.

:class:`GroupSystem` packages everything a set of rankers needs:
blocks, per-group ``βE`` terms, and assembly helpers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.graph.partition import Partition
from repro.graph.webgraph import WebGraph
from repro.linalg.jacobi import JacobiResult, jacobi_solve
from repro.linalg.operators import GroupBlocks, group_blocks
from repro.utils.validation import check_fraction

__all__ = ["GroupSystem", "group_pagerank"]


def group_pagerank(
    a_group: sp.spmatrix,
    beta_e: np.ndarray,
    x: np.ndarray,
    r0: Optional[np.ndarray] = None,
    *,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> JacobiResult:
    """Algorithm 2: ``GroupPageRank(R0, X)``.

    Iterates ``R ← A_G R + βE + X`` from ``r0`` until the L1 step
    difference drops to ``tol``.  (The paper's listing prints the
    termination test as ``until δ > ε`` — an obvious inversion of
    Algorithm 1's ``while δ > ε``; we stop when ``δ ≤ ε``.)
    """
    if beta_e.shape != x.shape:
        raise ValueError(f"βE shape {beta_e.shape} != X shape {x.shape}")
    return jacobi_solve(a_group, beta_e + x, x0=r0, tol=tol, max_iter=max_iter)


class GroupSystem:
    """The open-system decomposition of a partitioned web graph.

    Construction builds every group's diagonal block, every cross
    block, and the per-group ``βE`` constant terms, all in vectorized
    passes.  This object is shared read-only by all rankers (in a real
    deployment each ranker holds just its own slice; the tests verify
    slices never interact except through explicit updates).

    Parameters
    ----------
    graph, partition:
        The crawl and its assignment to rankers.
    alpha:
        Damping factor (the paper's α; ``β = 1 − α``).
    e:
        Rank source: scalar (default 1, the paper's choice) or a
        per-page vector for personalized ranking.
    """

    def __init__(
        self,
        graph: WebGraph,
        partition: Partition,
        *,
        alpha: float = 0.85,
        e: Union[float, np.ndarray, None] = None,
    ):
        check_fraction(alpha, "alpha")
        if partition.n_pages != graph.n_pages:
            raise ValueError("partition and graph disagree on n_pages")
        self.graph = graph
        self.partition = partition
        self.alpha = float(alpha)
        self.beta = 1.0 - self.alpha
        self.blocks: GroupBlocks = group_blocks(graph, partition, alpha)

        n = graph.n_pages
        if e is None:
            e_full = np.ones(n, dtype=np.float64)
        elif np.isscalar(e):
            e_full = np.full(n, float(e), dtype=np.float64)
        else:
            e_full = np.asarray(e, dtype=np.float64)
            if e_full.shape != (n,):
                raise ValueError(f"E must be scalar or shape ({n},)")
        self.e_full = e_full
        self._beta_e: Optional[List[np.ndarray]] = None

    @property
    def beta_e(self) -> List[np.ndarray]:
        """Per-group constant term ``βE`` of eq. 3.4 (built on first use).

        The event engine hands one segment to each node; the flat
        engine assembles its own concatenated copy straight from
        ``e_full`` and never forces this list into existence.
        """
        if self._beta_e is None:
            self._beta_e = [
                self.beta * self.e_full[self.blocks.pages[g]]
                for g in range(self.n_groups)
            ]
        return self._beta_e

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return self.blocks.n_groups

    @property
    def n_pages(self) -> int:
        return self.graph.n_pages

    def group_size(self, g: int) -> int:
        """Number of pages owned by group ``g``."""
        return self.blocks.group_size(g)

    def diag(self, g: int) -> sp.csr_matrix:
        """Group ``g``'s inner-link operator ``A_G``."""
        return self.blocks.diag[g]

    def efferent(self, g: int, r: np.ndarray) -> Dict[int, np.ndarray]:
        """Group ``g``'s efferent contributions ``Y`` per destination.

        One SpMV over the group's stacked efferent operator; the dict
        values are views into a single fresh output array (see
        :meth:`GroupBlocks.efferent <repro.linalg.operators.GroupBlocks.efferent>`).
        """
        return self.blocks.efferent(g, r)

    def efferent_into(
        self, g: int, r: np.ndarray, out: np.ndarray
    ) -> Dict[int, np.ndarray]:
        """Allocation-free :meth:`efferent` into a caller-owned buffer.

        ``out`` must have length ``blocks.efferent_rows(g)`` (use
        ``blocks.efferent_buffer(g)`` to allocate it once); the
        returned views are valid until ``out`` is reused.
        """
        return self.blocks.efferent_into(g, r, out)

    def destinations_of(self, g: int) -> List[int]:
        """Groups that receive rank from group ``g`` (precomputed)."""
        return self.blocks.destinations_of(g)

    def sources_of(self, h: int) -> List[int]:
        """Groups that send rank to group ``h`` (precomputed)."""
        return self.blocks.sources_of(h)

    def cross_records(self, g: int, h: int) -> int:
        """Number of link records group ``g`` ships to group ``h``."""
        block = self.blocks.cross.get((g, h))
        return int(block.nnz) if block is not None else 0

    # ------------------------------------------------------------------
    def assemble(
        self, group_ranks: List[np.ndarray], out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Scatter per-group local vectors back into a global vector.

        ``out`` may supply a reusable ``(n_pages,)`` float64 buffer:
        the groups partition the page set, so every element is
        overwritten and no clearing is needed.
        """
        if len(group_ranks) != self.n_groups:
            raise ValueError(
                f"expected {self.n_groups} group vectors, got {len(group_ranks)}"
            )
        if out is None:
            out = np.zeros(self.n_pages, dtype=np.float64)
        elif out.shape != (self.n_pages,) or out.dtype != np.float64:
            raise ValueError(f"out must be float64 of shape ({self.n_pages},)")
        for g, r in enumerate(group_ranks):
            pages = self.blocks.pages[g]
            if r.shape != (pages.size,):
                raise ValueError(f"group {g} vector has shape {r.shape}, want ({pages.size},)")
            out[pages] = r
        return out

    def exact_afferent(self, group_ranks: List[np.ndarray]) -> List[np.ndarray]:
        """Ground-truth afferent vectors ``X`` given every group's ranks.

        Used by tests to verify that the message-passing system delivers
        exactly what the algebra says it should.
        """
        xs = [np.zeros(self.group_size(h)) for h in range(self.n_groups)]
        for (g, h), block in self.blocks.cross.items():
            xs[h] += block @ group_ranks[g]
        return xs

    def solve_exact(self, *, tol: float = 1e-12, max_iter: int = 10_000) -> np.ndarray:
        """Centralized reference solution ``R = αAR + βE`` on the full graph."""
        from repro.linalg.operators import propagation_matrix

        p = propagation_matrix(self.graph, self.alpha)
        res = jacobi_solve(p, self.beta * self.e_full, tol=tol, max_iter=max_iter)
        return res.x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GroupSystem(n_pages={self.n_pages}, n_groups={self.n_groups}, "
            f"alpha={self.alpha})"
        )
