"""Centralized PageRank (paper §2, Algorithm 1).

Two variants are provided because the paper itself uses two:

* :func:`pagerank_algorithm1` — the literal Algorithm 1 of §2:
  ``R ← A R``, measure the lost L1 mass ``D``, add ``D·E`` back.  This
  is the *closed-system* formulation where total rank is conserved at
  every step.
* :func:`pagerank_open` — the *open-system* fixed point
  ``R = αAR + (1−α)E`` that §3 derives and the experiments use as the
  centralized reference ("CPR"): rank is allowed to leak through
  external links, so on a crawl where many links point outside the
  dataset the converged mean rank settles below ``E`` (the paper
  observes ≈0.3 with E=1 — reproduced by the Fig 7 bench).

Both report full iteration accounting so Fig 8's "number of
iterations" axis is directly comparable with the distributed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.graph.webgraph import WebGraph
from repro.linalg.jacobi import jacobi_solve, jacobi_sweep
from repro.linalg.norms import l1_norm, relative_l1_error
from repro.linalg.operators import propagation_matrix
from repro.utils.validation import check_fraction, check_positive

__all__ = [
    "PageRankResult",
    "pagerank_algorithm1",
    "pagerank_open",
    "iterations_to_relative_error",
]


@dataclass
class PageRankResult:
    """Outcome of a centralized PageRank computation.

    Attributes
    ----------
    ranks:
        Final rank vector (one entry per crawled page).
    iterations:
        Sweeps performed.
    converged:
        Whether the termination test fired within ``max_iter``.
    final_delta:
        ``‖R_m − R_{m−1}‖₁`` at exit (the paper's δ).
    deltas:
        Per-iteration δ history when recorded.
    """

    ranks: np.ndarray
    iterations: int
    converged: bool
    final_delta: float
    deltas: List[float] = field(default_factory=list)

    @property
    def mean_rank(self) -> float:
        """Average page rank (Fig 7's y-axis)."""
        return float(self.ranks.mean()) if self.ranks.size else 0.0


def _expand_e(e: Union[float, np.ndarray, None], n: int) -> np.ndarray:
    """Normalize the rank-source parameter into a dense vector.

    ``None`` and scalars broadcast (the paper assumes ``E(v)=1`` for
    all pages); an array enables personalized PageRank (paper §3,
    citing [5, 9]).
    """
    if e is None:
        return np.ones(n, dtype=np.float64)
    if np.isscalar(e):
        return np.full(n, float(e), dtype=np.float64)
    arr = np.asarray(e, dtype=np.float64)
    if arr.shape != (n,):
        raise ValueError(f"E must be scalar or shape ({n},), got {arr.shape}")
    if (arr < 0).any():
        raise ValueError("E must be non-negative")
    return arr.copy()


def pagerank_algorithm1(
    graph: WebGraph,
    *,
    eps: float = 1e-10,
    max_iter: int = 10_000,
    e: Union[float, np.ndarray, None] = None,
    s: Union[float, np.ndarray, None] = None,
    record_history: bool = False,
) -> PageRankResult:
    """Paper Algorithm 1, verbatim (closed-system, mass-conserving).

    ``R_{i+1} = A·R_i``; ``D = ‖R_i‖₁ − ‖R_{i+1}‖₁`` (mass lost to
    dangling pages and external links); ``R_{i+1} += D·Ê`` where ``Ê``
    is ``E`` normalized to unit L1 mass; stop when ``δ = ‖ΔR‖₁ ≤ ε``.

    Note the propagation step here is *undamped* (``A[v,u] = 1/d(u)``):
    Algorithm 1 as printed reinjects only the lost mass.  Damping (the
    ``c`` of formula 2.1) is the province of :func:`pagerank_open`.
    """
    check_positive(eps, "eps")
    n = graph.n_pages
    if n == 0:
        return PageRankResult(np.zeros(0), 0, True, 0.0)
    # Undamped propagation operator: use alpha scaling trick with α→1
    # by rescaling a damped matrix (avoids duplicating the builder).
    p = propagation_matrix(graph, 0.5) * 2.0
    e_hat = _expand_e(e, n)
    total = e_hat.sum()
    if total <= 0:
        raise ValueError("E must have positive total mass")
    e_hat /= total

    r = _expand_e(s, n) if s is not None else np.full(n, 1.0 / n)
    deltas: List[float] = []
    delta = np.inf
    iterations = 0
    for iterations in range(1, max_iter + 1):
        r_next = p.dot(r)
        lost = l1_norm(r) - l1_norm(r_next)
        r_next = r_next + lost * e_hat
        delta = l1_norm(r_next - r)
        r = r_next
        if record_history:
            deltas.append(delta)
        if delta <= eps:
            return PageRankResult(r, iterations, True, delta, deltas)
    return PageRankResult(r, iterations, False, float(delta), deltas)


def pagerank_open(
    graph: WebGraph,
    alpha: float = 0.85,
    *,
    e: Union[float, np.ndarray, None] = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    r0: Optional[np.ndarray] = None,
    dangling: str = "leak",
    record_history: bool = False,
) -> PageRankResult:
    """Open-system centralized PageRank: solve ``R = αAR + (1−α)E``.

    This is the fixed point the distributed algorithms provably
    approach (Thm 4.2 bounds them by it; Fig 6 shows convergence to
    it), and the "CPR" baseline of Fig 8.  ``E`` defaults to the
    all-ones vector, matching the paper's convention ``E(v)=1``.

    Parameters
    ----------
    dangling:
        ``"leak"`` (default) — pages without out-links forward nothing,
        the paper's open-system behaviour.  ``"redistribute"`` — the
        classic alternative: each sweep spreads the dangling pages'
        α-mass over all pages proportionally to ``E``.  Redistribution
        couples every page to every dangling page, so it exists only
        for this centralized baseline; the distributed decomposition
        (and the paper) use "leak".
    """
    check_fraction(alpha, "alpha")
    if dangling not in ("leak", "redistribute"):
        raise ValueError(f"dangling must be 'leak' or 'redistribute', got {dangling!r}")
    n = graph.n_pages
    if n == 0:
        return PageRankResult(np.zeros(0), 0, True, 0.0)
    p = propagation_matrix(graph, alpha)
    e_vec = _expand_e(e, n)
    f = (1.0 - alpha) * e_vec
    if dangling == "leak":
        res = jacobi_solve(
            p, f, x0=r0, tol=tol, max_iter=max_iter, record_history=record_history
        )
        return PageRankResult(
            res.x, res.iterations, res.converged, res.final_delta, res.deltas
        )

    # Redistribution: R ← P R + α·(Σ_{dangling} R(u))·ê + f, with ê the
    # E-proportional distribution.  One extra rank-1 term per sweep.
    from repro.linalg.norms import l1_norm

    is_dangling = np.zeros(n, dtype=bool)
    is_dangling[graph.dangling_pages()] = True
    e_hat = e_vec / e_vec.sum()
    r = np.zeros(n) if r0 is None else np.array(r0, dtype=np.float64)
    deltas = []
    delta = np.inf
    iterations = 0
    for iterations in range(1, max_iter + 1):
        dangling_mass = alpha * float(r[is_dangling].sum())
        r_next = p.dot(r) + dangling_mass * e_hat + f
        delta = l1_norm(r_next - r)
        r = r_next
        if record_history:
            deltas.append(delta)
        if delta <= tol:
            return PageRankResult(r, iterations, True, delta, deltas)
    return PageRankResult(r, iterations, False, float(delta), deltas)


def iterations_to_relative_error(
    graph: WebGraph,
    reference: np.ndarray,
    threshold: float,
    *,
    alpha: float = 0.85,
    e: Union[float, np.ndarray, None] = None,
    r0: Optional[np.ndarray] = None,
    max_iter: int = 10_000,
) -> int:
    """Sweeps CPR needs until ``‖R_i − R*‖₁/‖R*‖₁ ≤ threshold``.

    This is exactly how Fig 8 counts centralized iterations (threshold
    0.01% in the paper).  Starts from zeros by default, matching the
    distributed algorithms' ``R0 = 0``.
    """
    check_positive(threshold, "threshold")
    n = graph.n_pages
    p = propagation_matrix(graph, alpha)
    f = (1.0 - alpha) * _expand_e(e, n)
    r = np.zeros(n) if r0 is None else np.array(r0, dtype=np.float64)
    if relative_l1_error(r, reference) <= threshold:
        return 0
    for i in range(1, max_iter + 1):
        r = jacobi_sweep(p, r, f)
        if relative_l1_error(r, reference) <= threshold:
            return i
    raise RuntimeError(
        f"did not reach relative error {threshold} within {max_iter} iterations"
    )
