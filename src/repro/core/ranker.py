"""A page ranker as an asynchronous simulator process.

Implements the outer loops of Algorithms 3/4 on the event simulator
with the paper's experimental timing model (§5):

* each group ``u`` draws a *mean* waiting time uniformly from
  ``[T1, T2]`` once, then waits ``Tw(u, m) ~ Exponential(mean_u)``
  before every loop step ``m``;
* rankers start at independent random times, run at different speeds,
  and may be paused ("sleep … suspend … or even shutdown", §4.2) —
  pausing skips whole loop steps while the inbox keeps accumulating;
* after computing, the ranker emits its efferent vectors through
  whichever transport it was wired to; the transport applies loss.

Extension (paper's "future work" on reducing traffic): when
``suppress_tol > 0`` a destination is skipped if the efferent vector
changed by less than the threshold since it was last sent — delta
suppression, measured by the compression ablation bench.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.dpr import DPRNode
from repro.core.open_system import GroupSystem
from repro.net.message import ScoreUpdate
from repro.net.simulator import Simulator
from repro.net.transport import Transport
from repro.utils.rng import as_generator, RngLike
from repro.utils.validation import check_non_negative

__all__ = ["PageRanker"]

#: Waits are clamped below to keep a mean of exactly 0 (possible when
#: T1 = T2 = 0) from livelocking the event loop at one instant.
MIN_MEAN_WAIT = 1e-3


class PageRanker:
    """Simulator process wrapping one :class:`DPRNode`.

    Parameters
    ----------
    sim, node, system, transport:
        The event engine, the algorithmic state, the shared group
        decomposition, and the wire.
    mean_wait:
        This ranker's mean waiting time (drawn from ``[T1, T2]`` by the
        coordinator).
    seed:
        Seeds the ranker's private exponential-wait stream.
    suppress_tol:
        Delta-suppression threshold (0 disables; see module docs).
    fixed_wait:
        When True, every wait is exactly ``mean_wait`` instead of an
        exponential draw — the *synchronous schedule* used to verify
        the flat execution engine against the event engine (all
        rankers tick in lockstep; see :mod:`repro.core.engine`).
    codec:
        Shared :class:`~repro.net.adaptive.AdaptiveCodec` session
        manager (None disables).  When set, every emission is
        delta-encoded against the pair's reconstruction mirror: the
        shipped values are the receiver's exact post-frame state, the
        update's ``wire_bytes`` carries the calibrated frame size, and
        emissions the budget lets the codec suppress entirely count in
        :attr:`suppressed_sends`.  Mutually exclusive with
        ``suppress_tol`` (enforced by config validation).
    """

    def __init__(
        self,
        sim: Simulator,
        node: DPRNode,
        system: GroupSystem,
        transport: Transport,
        *,
        mean_wait: float = 1.0,
        seed: RngLike = 0,
        suppress_tol: float = 0.0,
        fixed_wait: bool = False,
        codec=None,
    ):
        self.sim = sim
        self.node = node
        self.system = system
        self.transport = transport
        self.mean_wait = max(check_non_negative(mean_wait, "mean_wait"), MIN_MEAN_WAIT)
        self.suppress_tol = check_non_negative(suppress_tol, "suppress_tol")
        self.codec = codec
        self.fixed_wait = bool(fixed_wait)
        self._rng = as_generator(seed)
        self.paused = False
        #: Permanent failure (§4.2's "shutdown"): a crashed ranker's
        #: wake chain dies, its inbox goes dark, and it never comes
        #: back — recovery happens by *replacement*, not resumption
        #: (see repro.core.recovery).
        self.crashed = False
        self.started = False
        #: Last efferent vector sent per destination (delta suppression).
        self._last_sent: Dict[int, np.ndarray] = {}
        #: Sends skipped because the vector hadn't changed enough.
        self.suppressed_sends = 0
        #: Loop steps skipped while paused.
        self.skipped_wakes = 0
        #: Updates that arrived after this ranker crashed (dropped).
        self.dropped_while_crashed = 0

    # ------------------------------------------------------------------
    @property
    def group(self) -> int:
        return self.node.group

    def start(self, *, initial_delay: Optional[float] = None) -> None:
        """Schedule the first wake-up.

        By default the first wake is one exponential wait out, so
        rankers start at independent random times as in the paper's
        setup.
        """
        if self.started:
            raise RuntimeError("ranker already started")
        self.started = True
        delay = self._draw_wait() if initial_delay is None else float(initial_delay)
        self.sim.schedule(delay, self._on_wake)

    def receive(self, update: ScoreUpdate) -> None:
        """Transport upcall: stash an afferent update for the next refresh."""
        if self.crashed:
            self.dropped_while_crashed += 1
            return
        self.node.receive(update)

    # ------------------------------------------------------------------
    def _draw_wait(self) -> float:
        if self.fixed_wait:
            return self.mean_wait
        return float(self._rng.exponential(self.mean_wait))

    def _on_wake(self) -> None:
        if self.crashed:
            # Permanent: do not reschedule — the wake chain ends here.
            return
        if self.paused:
            # A paused ranker does nothing this round — not even send —
            # but keeps its timer alive so it resumes naturally.
            self.skipped_wakes += 1
            self.sim.schedule(self._draw_wait(), self._on_wake)
            return
        r = self.node.step()
        self._emit(r)
        self.sim.schedule(self._draw_wait(), self._on_wake)

    def _emit(self, r: np.ndarray) -> None:
        """Compute Y per destination and hand it to the transport.

        ``system.efferent`` is one stacked SpMV; the per-destination
        vectors are views into one fresh array per emit, which is safe
        to hand to in-flight messages (the array is never reused — a
        double-buffered ``efferent_into`` would alias updates still
        sitting in transport queues).
        """
        updates = []
        for dst, values in self.system.efferent(self.group, r).items():
            wire_bytes = -1
            if self.codec is not None:
                frame = self.codec.encode(self.group, dst, values)
                if frame is None:
                    self.suppressed_sends += 1
                    continue
                # The mirror mutates on the pair's next encode, and the
                # update may still be in flight then — copy at send.
                values = frame.values.copy()
                wire_bytes = frame.wire_bytes
            elif self.suppress_tol > 0.0:
                prev = self._last_sent.get(dst)
                if prev is not None and np.abs(values - prev).sum() <= self.suppress_tol:
                    self.suppressed_sends += 1
                    continue
                self._last_sent[dst] = values.copy()
            updates.append(
                ScoreUpdate(
                    src_group=self.group,
                    dst_group=dst,
                    values=values,
                    n_link_records=self.system.cross_records(self.group, dst),
                    generation=self.node.outer_iterations,
                    wire_bytes=wire_bytes,
                )
            )
        if updates:
            self.transport.send_updates(self.group, updates)
