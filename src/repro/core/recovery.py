"""Checkpoint-based ranker takeover.

The missing half of §4.2's fault story: the paper lets rankers
"even shutdown" and proves the *algorithm* tolerates staleness, but a
permanently dead ranker freezes its page group's slice of the rank
vector forever — no amount of tolerance at the survivors recovers the
lost state.  This module closes the loop:

* :class:`CheckpointStore` — the durable-store stand-in: latest
  :meth:`~repro.core.dpr.DPRNode.state_dict` snapshot per group.
* :class:`Checkpointer` — a periodic simulator process snapshotting
  every live ranker's node into the store.
* :class:`RecoveryManager` — subscribed to the heartbeat detector's
  death callbacks; on a death it picks the next live group as the
  *successor* (the DHT convention: the crashed key range is adopted by
  its overlay neighbor), builds a replacement
  :class:`~repro.core.ranker.PageRanker` for the dead group, restores
  the last checkpoint into it, swaps it into the live ranker list, and
  starts its wake loop.

Why this converges to the centralized fixed point: the restored state
is merely *stale*, never *wrong* — it is a valid (R, X, generation)
tuple from the run's own past.  DPR's refresh-X semantics (newest
generation per source wins) make the replacement catch up as soon as
each peer's next update arrives, and Theorems 4.1/4.2 monotonicity is
preserved because the restored R is a lower bound the node only ever
improves.  Senders' in-flight retransmissions to the dead group are
ACKed by the replacement (same group id, same sequence space is *not*
assumed — the reliable transport dedups per seq, and a seq the dead
ranker never ACKed is simply delivered to the replacement).

The recovery layer is duck-typed over its "ranker" entries so the
hybrid engine (:mod:`repro.core.hybrid`) can drive the *same*
Checkpointer/RecoveryManager over lightweight shadow objects bridging
the flat engine's state slices.  A ranker entry must expose:

* ``.group`` — the group index it ranks;
* ``.crashed`` — writable liveness flag the injectors/heartbeat read;
* ``.node`` — an object with ``state_dict()``/``load_state_dict()``
  (the :class:`~repro.core.dpr.DPRNode` contract);
* ``.start()`` — begin (or for shadows, mark eligible for) work.

:class:`~repro.core.ranker.PageRanker` is the canonical implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.simulator import Simulator

__all__ = ["CheckpointStore", "Checkpointer", "RecoveryManager"]

#: Builds a fresh, state-restored-able ranker for ``group`` (epoch
#: disambiguates the replacement's private random stream).  Returns
#: any object satisfying the duck-typed ranker contract above.
RankerFactory = Callable[[int, int], "object"]


class CheckpointStore:
    """Latest checkpoint per group (a reliable-store stand-in).

    A real deployment would write these to the DHT itself (replicated
    under the group's key) or to stable storage; the simulation keeps
    them in memory because the store's *availability* is not the
    phenomenon under test — recovery correctness is.
    """

    def __init__(self):
        self._snapshots: Dict[int, Tuple[float, dict]] = {}
        self.saves = 0

    def save(self, group: int, time: float, state: dict) -> None:
        """Replace group's checkpoint (the store keeps only the newest)."""
        self._snapshots[group] = (float(time), state)
        self.saves += 1

    def latest(self, group: int) -> Optional[Tuple[float, dict]]:
        """(time, state_dict) of the newest checkpoint, if any."""
        return self._snapshots.get(group)

    def __len__(self) -> int:
        return len(self._snapshots)


class Checkpointer:
    """Periodically snapshots every live ranker into the store."""

    def __init__(
        self,
        sim: Simulator,
        rankers: Sequence,
        store: CheckpointStore,
        *,
        interval: float,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.sim = sim
        self.rankers = rankers
        self.store = store
        self.interval = float(interval)
        self._stopped = False
        self._started = False

    def start(self) -> None:
        """Begin the periodic snapshot chain (raises on double-start)."""
        if self._started:
            raise RuntimeError("checkpointer already started")
        self._started = True
        self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Stop scheduling further snapshots."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        for ranker in self.rankers:
            if not ranker.crashed:
                self.store.save(
                    ranker.group, self.sim.now, ranker.node.state_dict()
                )
        self.sim.schedule(self.interval, self._tick)


class RecoveryManager:
    """Restores crashed groups from checkpoints onto successor rankers.

    Parameters
    ----------
    sim, rankers, store:
        Event engine, the *live* ranker list (entries are replaced in
        place — every component holding this list sees takeovers), and
        the checkpoint store.
    factory:
        ``factory(group, epoch) -> PageRanker`` building a blank
        replacement wired to the same transport/system; ``epoch``
        counts takeovers of that group so each replacement gets an
        independent deterministic random stream.
    """

    def __init__(
        self,
        sim: Simulator,
        rankers: List,
        store: CheckpointStore,
        factory: RankerFactory,
    ):
        self.sim = sim
        self.rankers = rankers
        self.store = store
        self.factory = factory
        #: (group, successor_group, sim time, restored_from_checkpoint).
        self.takeovers: List[tuple] = []
        #: Deaths observed with no live successor left (run is lost).
        self.unrecoverable = 0

    # ------------------------------------------------------------------
    @property
    def takeover_count(self) -> int:
        return len(self.takeovers)

    def successor_of(self, group: int) -> Optional[int]:
        """Next live group after ``group`` in ring order, if any."""
        k = len(self.rankers)
        for step in range(1, k):
            cand = (group + step) % k
            if not self.rankers[cand].crashed:
                return cand
        return None

    def on_death(self, group: int) -> None:
        """Heartbeat-death callback: rebuild ``group`` on a successor.

        The successor's role here is organisational (it is the ranker
        that *hosts* the revived group's process in a real deployment);
        computationally the revived group keeps its own identity, so
        transport routing and the group decomposition are untouched.
        """
        successor = self.successor_of(group)
        if successor is None:
            self.unrecoverable += 1
            return
        epoch = sum(1 for t in self.takeovers if t[0] == group)
        replacement = self.factory(group, epoch)
        snapshot = self.store.latest(group)
        if snapshot is not None:
            _, state = snapshot
            replacement.node.load_state_dict(state)
        self.rankers[group] = replacement
        replacement.start()
        self.takeovers.append(
            (group, successor, self.sim.now, snapshot is not None)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecoveryManager(takeovers={self.takeover_count})"
