"""Crawling substrate: the hidden web and incremental crawlers.

Paper Fig 1 distinguishes three scopes: the whole web **W**, the pages
crawled by the search engine **C**, and a page group **G** on one
ranker.  Everything in :mod:`repro.graph` models **C** directly; this
package models **W** and the process that turns it into a growing
**C**:

* :class:`~repro.crawl.trueweb.TrueWeb` — a full (closed) web that
  exists independently of what has been crawled, supporting link
  churn over time (pages edit their links).
* :class:`~repro.crawl.crawler.Crawler` — an incremental frontier
  crawler over a TrueWeb: seeds, per-step page budgets, and *revisits*
  that refresh stale pages (the behaviour §4.1 cites as the reason
  random partitioning is unusable).  Its :meth:`snapshot` is a
  :class:`~repro.graph.webgraph.WebGraph` whose ``external_out``
  counts are exactly the links from crawled to not-yet-crawled pages —
  the paper's open-system boundary arises from the crawl frontier
  itself rather than being synthesized.
* :func:`~repro.crawl.online.online_distributed_pagerank` — the
  "doing more experiments … with dynamic link graphs" future-work
  item: ranks a crawl *while it grows*, warm-starting each phase from
  the previous ranks, and reports how tracking error evolves.
"""

from repro.crawl.trueweb import TrueWeb
from repro.crawl.crawler import Crawler, CrawlStats
from repro.crawl.online import OnlinePhase, online_distributed_pagerank

__all__ = [
    "TrueWeb",
    "Crawler",
    "CrawlStats",
    "OnlinePhase",
    "online_distributed_pagerank",
]
