"""Incremental frontier crawler over a :class:`TrueWeb`.

Behaviour modelled on the assumptions the paper makes about its
crawler(s):

* **Incremental discovery.**  The crawl starts from seed pages and
  fetches a budgeted number of pages per step; newly seen link targets
  join the frontier.  The crawled set **C** grows monotonically.
* **Revisits.**  "Crawler(s) may revisit pages in order to detect
  changes and refresh the downloaded collection" (§4.1).  A fraction
  of each step's budget re-fetches the stalest crawled pages and picks
  up any link edits the TrueWeb has made since.
* **Open-system views.**  :meth:`Crawler.snapshot` materializes the
  current crawled view as a :class:`WebGraph`: links between crawled
  pages are internal; links from crawled pages to uncrawled targets
  become ``external_out`` — the precise boundary of paper Fig 1, with
  page ids stable across snapshots (crawl order), which is what lets
  online ranking warm-start between snapshots.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.crawl.trueweb import TrueWeb
from repro.graph.webgraph import WebGraph
from repro.utils.rng import as_generator, RngLike

__all__ = ["Crawler", "CrawlStats"]


@dataclass
class CrawlStats:
    """Progress counters after a crawl step."""

    pages_crawled: int
    frontier_size: int
    fetches: int
    refreshes: int
    stale_detected: int


class Crawler:
    """Budgeted frontier crawler with revisit-based refresh.

    Parameters
    ----------
    web:
        The hidden :class:`TrueWeb`.
    seeds:
        Pages the crawl starts from (defaults to page 0).
    revisit_fraction:
        Share of each step's fetch budget spent re-fetching the
        stalest already-crawled pages.
    """

    def __init__(
        self,
        web: TrueWeb,
        *,
        seeds: Optional[List[int]] = None,
        revisit_fraction: float = 0.2,
        seed: RngLike = 0,
    ):
        if not 0.0 <= revisit_fraction < 1.0:
            raise ValueError("revisit_fraction must be in [0, 1)")
        self.web = web
        self.revisit_fraction = float(revisit_fraction)
        self._rng = as_generator(seed)
        #: true-web page id -> crawl-order id (stable across snapshots).
        self.crawl_id: Dict[int, int] = {}
        #: crawl-order id -> true-web page id.
        self.true_id: List[int] = []
        #: Observed out-links per crawled page (true-web ids).
        self._observed: List[List[int]] = []
        #: TrueWeb version at last fetch, per crawled page.
        self._fetched_version: List[int] = []
        self.frontier: deque = deque()
        self._in_frontier = set()
        self.total_fetches = 0
        self.total_refreshes = 0
        for s in seeds if seeds is not None else [0]:
            self._enqueue(s)

    # ------------------------------------------------------------------
    @property
    def n_crawled(self) -> int:
        return len(self.true_id)

    def is_crawled(self, true_page: int) -> bool:
        """True if the crawler has fetched ``true_page`` at least once."""
        return true_page in self.crawl_id

    def _enqueue(self, true_page: int) -> None:
        if true_page not in self.crawl_id and true_page not in self._in_frontier:
            self.frontier.append(true_page)
            self._in_frontier.add(true_page)

    def _fetch(self, true_page: int) -> None:
        """First fetch of a page: assign a crawl id, record its links."""
        cid = len(self.true_id)
        self.crawl_id[true_page] = cid
        self.true_id.append(true_page)
        links = self.web.out_links(true_page)
        self._observed.append(links)
        self._fetched_version.append(self.web.page_version(true_page))
        self.total_fetches += 1
        for target in links:
            self._enqueue(target)

    def _refresh(self, cid: int) -> bool:
        """Re-fetch a crawled page; True if its links had changed."""
        true_page = self.true_id[cid]
        current = self.web.page_version(true_page)
        self.total_refreshes += 1
        if current == self._fetched_version[cid]:
            return False
        self._observed[cid] = self.web.out_links(true_page)
        self._fetched_version[cid] = current
        for target in self._observed[cid]:
            self._enqueue(target)
        return True

    # ------------------------------------------------------------------
    def step(self, budget: int = 100) -> CrawlStats:
        """Spend ``budget`` fetches: new pages first, stalest revisits.

        Revisit order is by staleness (lowest fetched version first),
        the standard freshness-driven recrawl policy.
        """
        if budget < 1:
            raise ValueError("budget must be >= 1")
        n_revisit = int(budget * self.revisit_fraction)
        n_new = budget - n_revisit
        fetched = 0
        while fetched < n_new and self.frontier:
            page = self.frontier.popleft()
            self._in_frontier.discard(page)
            if page not in self.crawl_id:
                self._fetch(page)
                fetched += 1
        stale = 0
        refreshes = 0
        if n_revisit and self.n_crawled:
            order = np.argsort(np.asarray(self._fetched_version))[:n_revisit]
            for cid in order:
                if self._refresh(int(cid)):
                    stale += 1
                refreshes += 1
        return CrawlStats(
            pages_crawled=self.n_crawled,
            frontier_size=len(self.frontier),
            fetches=fetched,
            refreshes=refreshes,
            stale_detected=stale,
        )

    def crawl_until(self, n_pages: int, *, budget_per_step: int = 200) -> None:
        """Step until ``n_pages`` are crawled or the frontier empties."""
        while self.n_crawled < n_pages and self.frontier:
            self.step(budget_per_step)

    def refresh(self, budget: int) -> CrawlStats:
        """Spend the whole budget re-fetching the stalest crawled pages.

        The pure-revisit counterpart of :meth:`step`: no new pages are
        fetched, so the crawled set is unchanged while link edits the
        :class:`TrueWeb` made since the last fetch become visible.
        This is what a *mutation-only* online phase runs — the crawl
        has stopped growing but the web underneath keeps churning.
        """
        if budget < 1:
            raise ValueError("budget must be >= 1")
        stale = 0
        refreshes = 0
        if self.n_crawled:
            order = np.argsort(np.asarray(self._fetched_version))[:budget]
            for cid in order:
                if self._refresh(int(cid)):
                    stale += 1
                refreshes += 1
        return CrawlStats(
            pages_crawled=self.n_crawled,
            frontier_size=len(self.frontier),
            fetches=0,
            refreshes=refreshes,
            stale_detected=stale,
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> WebGraph:
        """The current crawled view **C** as an open-system WebGraph.

        Page ``i`` of the snapshot is the ``i``-th page ever crawled,
        so earlier snapshots are prefixes of later ones — ranks carry
        over positionally when the crawl grows.
        """
        n = self.n_crawled
        src: List[int] = []
        dst: List[int] = []
        external = np.zeros(n, dtype=np.int64)
        for cid in range(n):
            for target in self._observed[cid]:
                tcid = self.crawl_id.get(target)
                if tcid is None:
                    external[cid] += 1
                else:
                    src.append(cid)
                    dst.append(tcid)
        site_of = np.array(
            [self.web.site_of[self.true_id[cid]] for cid in range(n)],
            dtype=np.int64,
        )
        return WebGraph(
            n,
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            site_of=site_of,
            external_out=external,
            site_names=self.web.site_names,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Crawler(crawled={self.n_crawled}/{self.web.n_pages}, "
            f"frontier={len(self.frontier)})"
        )
