"""Online distributed ranking over a growing crawl.

The paper's future work asks for "more experiments (and using larger
datasets) to discover more interesting phenomena" and §4.3 conjectures
that DPR converges on *dynamic* link graphs.  This module implements
the natural deployment loop:

    repeat:
        crawl more pages / refresh stale ones
        re-partition the enlarged crawl (site hash: stable, so almost
            every already-placed page stays put)
        run distributed page ranking, warm-starting every ranker from
            the ranks of the previous phase
        record tracking error against the current crawl's centralized
            solution

Warm starting is the payoff of Theorem 4.1's machinery: old ranks are
a good (under-)estimate of the new fixed point, so each phase needs
far fewer iterations than ranking from scratch — which the ablation
bench quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.coordinator import DistributedConfig, DistributedRun
from repro.core.pagerank import pagerank_open
from repro.crawl.crawler import Crawler
from repro.graph.partition import make_partition

__all__ = ["OnlinePhase", "online_distributed_pagerank"]


@dataclass
class OnlinePhase:
    """Outcome of one crawl-then-rank phase."""

    phase: int
    n_pages: int
    converged: bool
    time_to_target: Optional[float]
    mean_outer_iterations: float
    initial_error: float
    ranks: np.ndarray


def online_distributed_pagerank(
    crawler: Crawler,
    *,
    n_groups: int = 8,
    phases: int = 4,
    pages_per_phase: int = 500,
    churn_per_phase: int = 0,
    target_relative_error: float = 1e-4,
    max_time_per_phase: float = 2000.0,
    config: Optional[DistributedConfig] = None,
    warm_start: bool = True,
    seed: int = 0,
) -> List[OnlinePhase]:
    """Crawl and rank in alternating phases; see module docstring.

    Parameters
    ----------
    crawler:
        Positioned anywhere (fresh or mid-crawl).
    pages_per_phase:
        Crawl growth per phase.  ``0`` makes phases *mutation-only*:
        the crawled set stays fixed while the crawler re-fetches every
        page to pick up churn — the steady-state regime of a crawl
        that has exhausted its frontier over a web that keeps moving.
    churn_per_phase:
        Link edits applied to the underlying TrueWeb between phases
        (0 = static web, growth only).
    config:
        Base distributed configuration; ``n_groups`` and seeds are
        overridden per call.
    warm_start:
        Carry each phase's ranks into the next (the default).
        ``False`` ranks every phase from scratch — the cold baseline
        the warm-start ablation (``BENCH_online.json``) measures
        against.

    Returns one :class:`OnlinePhase` per phase.
    """
    if phases < 1:
        raise ValueError("phases must be >= 1")
    if pages_per_phase < 0:
        raise ValueError("pages_per_phase must be >= 0")
    if churn_per_phase < 0:
        raise ValueError("churn_per_phase must be >= 0")
    base = config if config is not None else DistributedConfig(t1=1.0, t2=1.0)
    results: List[OnlinePhase] = []
    prev_ranks: Optional[np.ndarray] = None

    for phase in range(phases):
        if churn_per_phase and phase > 0:
            crawler.web.churn(churn_per_phase, seed=seed + phase)
        if pages_per_phase:
            crawler.crawl_until(crawler.n_crawled + pages_per_phase)
        elif crawler.n_crawled:
            # Mutation-only phase: same pages, fresh links.
            crawler.refresh(crawler.n_crawled)
        graph = crawler.snapshot()
        if graph.n_pages == 0:
            raise ValueError(
                "crawler has no crawled pages and pages_per_phase=0: "
                "nothing to rank (crawl first, or set pages_per_phase > 0)"
            )
        partition = make_partition(graph, n_groups, "site")

        from dataclasses import replace

        cfg = replace(base, n_groups=n_groups, seed=seed + phase)
        reference = pagerank_open(graph, alpha=cfg.alpha, e=cfg.e, tol=1e-12).ranks
        run = DistributedRun(graph, cfg, partition=partition, reference=reference)

        # Warm start: copy forward the previous phase's ranks.  Crawl
        # ids are stable, so page i of the old snapshot is page i of
        # the new one; freshly crawled pages start at 0 (Theorem 4.1's
        # R0 = 0 choice, so the *new* mass still grows monotonically).
        # Mutation-only phases have an empty delta (same page count),
        # so the copy is the identity on the page set.  ``warm_start``
        # seeds the afferent state too — setting ``node.r`` alone is
        # erased by the first outer step (R is recomputed from βE + X).
        if warm_start and prev_ranks is not None:
            warm = np.zeros(graph.n_pages)
            m = min(prev_ranks.shape[0], graph.n_pages)
            warm[:m] = prev_ranks[:m]
            run.warm_start(warm)

        initial = _initial_error(
            run, prev_ranks if warm_start else None, graph.n_pages
        )
        res = run.run(
            max_time=max_time_per_phase,
            target_relative_error=target_relative_error,
        )
        prev_ranks = res.ranks
        results.append(
            OnlinePhase(
                phase=phase,
                n_pages=graph.n_pages,
                converged=res.converged,
                time_to_target=res.time_to_target,
                mean_outer_iterations=float(res.outer_iterations.mean()),
                initial_error=initial,
                ranks=res.ranks,
            )
        )
    return results


def _initial_error(run: DistributedRun, prev_ranks, n_pages: int) -> float:
    """Relative error of the warm-started state before any iteration.

    Robust to a shrinking or empty delta: the carried vector is
    truncated to the current page count (mutation-only phases carry
    exactly as many ranks as there are pages, and a replayed crawl
    prefix can legitimately carry *more*), and an empty carried vector
    is the cold start.
    """
    from repro.linalg.norms import relative_l1_error

    warm = np.zeros(n_pages)
    if prev_ranks is not None and prev_ranks.shape[0]:
        m = min(prev_ranks.shape[0], n_pages)
        warm[:m] = prev_ranks[:m]
    return relative_l1_error(warm, run.reference)
