"""The hidden full web **W** (paper Fig 1).

A :class:`TrueWeb` is the ground truth the crawler explores: a
multi-site directed graph over *all* pages, which continues to change
while being crawled (pages gain and lose links).  It is deliberately a
thin mutable adjacency structure, not a :class:`WebGraph`: the
immutable CSR form with external-link counts is the *crawled view*,
produced by :meth:`repro.crawl.crawler.Crawler.snapshot`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.generators import google_contest_like
from repro.utils.rng import as_generator, RngLike

__all__ = ["TrueWeb"]


class TrueWeb:
    """A mutable multi-site web of ``n_pages`` pages.

    Parameters
    ----------
    n_pages, n_sites, seed:
        Passed to the contest-like generator, with
        ``internal_link_fraction=1.0``: the *whole* web has no
        "external" links — externality is a property of a crawl's
        frontier, not of W itself.
    """

    def __init__(
        self,
        n_pages: int = 5000,
        n_sites: int = 50,
        *,
        mean_out_degree: float = 15.0,
        intra_site_fraction: float = 0.9,
        seed: RngLike = 0,
    ):
        base = google_contest_like(
            n_pages,
            n_sites,
            mean_out_degree=mean_out_degree,
            internal_link_fraction=1.0,
            intra_site_fraction=intra_site_fraction,
            seed=seed,
        )
        self.n_pages = base.n_pages
        self.site_of = base.site_of.copy()
        self.site_names = base.site_names
        #: Adjacency as mutable per-page target lists.
        self.links: List[List[int]] = [
            base.successors(p).tolist() for p in range(self.n_pages)
        ]
        #: Monotone edit counter; crawler revisits compare against it.
        self.version = 0
        self._page_version = np.zeros(self.n_pages, dtype=np.int64)

    # ------------------------------------------------------------------
    def out_links(self, page: int) -> List[int]:
        """Current out-links of ``page`` (what a fetch would observe)."""
        return list(self.links[page])

    def page_version(self, page: int) -> int:
        """Edit version of ``page`` (bumped on every link change)."""
        return int(self._page_version[page])

    # ------------------------------------------------------------------
    # Mutation (the web changes under the crawler's feet)
    # ------------------------------------------------------------------
    def add_link(self, src: int, dst: int) -> None:
        """Page ``src`` gains a link to ``dst``."""
        self._check(src)
        self._check(dst)
        self.links[src].append(dst)
        self._bump(src)

    def remove_link(self, src: int, dst: int) -> bool:
        """Remove one ``src -> dst`` link; False if absent."""
        self._check(src)
        try:
            self.links[src].remove(dst)
        except ValueError:
            return False
        self._bump(src)
        return True

    def churn(self, n_edits: int, *, seed: RngLike = None) -> List[Tuple[str, int, int]]:
        """Apply ``n_edits`` random link edits (half adds, half removes).

        Returns the edit log ``[(op, src, dst), ...]`` for test
        introspection.
        """
        rng = as_generator(seed)
        log: List[Tuple[str, int, int]] = []
        for _ in range(n_edits):
            src = int(rng.integers(0, self.n_pages))
            if self.links[src] and rng.random() < 0.5:
                dst = self.links[src][int(rng.integers(0, len(self.links[src])))]
                self.remove_link(src, dst)
                log.append(("remove", src, dst))
            else:
                dst = int(rng.integers(0, self.n_pages))
                self.add_link(src, dst)
                log.append(("add", src, dst))
        return log

    # ------------------------------------------------------------------
    def _bump(self, page: int) -> None:
        self.version += 1
        self._page_version[page] = self.version

    def _check(self, page: int) -> None:
        if not 0 <= page < self.n_pages:
            raise IndexError(f"page {page} out of range [0, {self.n_pages})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_links = sum(len(l) for l in self.links)
        return f"TrueWeb(n_pages={self.n_pages}, links={n_links}, version={self.version})"
