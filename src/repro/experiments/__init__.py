"""Experiment harness: one module per paper table/figure plus ablations.

Every experiment returns a result object with ``rows()`` (raw data)
and ``format()`` (a paper-shaped text table), so tests can assert on
shapes and benches can print the reproduction next to the published
values.

Scaling: the paper's runs use ~1M pages and up to 10 000 rankers; the
defaults here are scaled down (see DESIGN.md §2) and every size is a
parameter — pass ``scale`` or explicit sizes to go bigger.
"""

from repro.experiments.workloads import default_graph, DEFAULT_CONFIGS, ExperimentScale
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.ablations import (
    PartitioningResult,
    run_partitioning_ablation,
    TransportResult,
    run_transport_comparison,
    CompressionResult,
    run_compression_ablation,
    OverlayHopsResult,
    run_overlay_hops,
    TradeoffResult,
    run_time_vs_bandwidth,
)
from repro.experiments.engines import (
    ENGINE_CONTENDERS,
    EngineBakeoffResult,
    run_engine_bakeoff,
)
from repro.experiments.chaos import (
    CHAOS_ENGINES,
    ChaosBakeoffResult,
    run_chaos_bakeoff,
)
from repro.experiments.compression import (
    COMPRESSION_CONTENDERS,
    CompressionBakeoffResult,
    run_compression_bakeoff,
)
from repro.experiments.serve import (
    ServeDemoResult,
    run_serve_demo,
)
from repro.experiments.partitions import (
    BAKEOFF_STRATEGIES,
    PartitionBakeoffResult,
    run_partition_bakeoff,
)
from repro.experiments.report import ReproductionReport, run_all, EXPERIMENTS

__all__ = [
    "default_graph",
    "DEFAULT_CONFIGS",
    "ExperimentScale",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8",
    "Table1Result",
    "run_table1",
    "PartitioningResult",
    "run_partitioning_ablation",
    "TransportResult",
    "run_transport_comparison",
    "CompressionResult",
    "run_compression_ablation",
    "OverlayHopsResult",
    "run_overlay_hops",
    "TradeoffResult",
    "run_time_vs_bandwidth",
    "BAKEOFF_STRATEGIES",
    "PartitionBakeoffResult",
    "run_partition_bakeoff",
    "ENGINE_CONTENDERS",
    "EngineBakeoffResult",
    "run_engine_bakeoff",
    "CHAOS_ENGINES",
    "ChaosBakeoffResult",
    "run_chaos_bakeoff",
    "COMPRESSION_CONTENDERS",
    "CompressionBakeoffResult",
    "run_compression_bakeoff",
    "ServeDemoResult",
    "run_serve_demo",
    "ReproductionReport",
    "run_all",
    "EXPERIMENTS",
]
