"""Ablation experiments backing the paper's design arguments.

* :func:`run_partitioning_ablation` — §4.1's claim that hash-by-site
  partitioning slashes cross-ranker traffic relative to random or
  URL-hash placement.
* :func:`run_transport_comparison` — §4.4's message/byte trade-off
  between direct and indirect transmission, measured end-to-end and
  compared with formulas 4.1–4.4.
* :func:`run_compression_ablation` — the paper's future-work note on
  reducing traffic, realized as delta suppression (only re-send an
  efferent vector when it changed by more than a threshold).
* :func:`run_overlay_hops` — hop/neighbor scaling of the four
  overlay families (the ``h`` and ``g`` inputs of the cost model).
* :func:`run_time_vs_bandwidth` — §4.5's convergence-time-vs-bandwidth
  trade-off, measured in simulation rather than derived analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.cost_model import (
    direct_messages,
    indirect_messages,
)
from repro.analysis.reporting import format_table
from repro.core.coordinator import RunResult, run_distributed_pagerank
from repro.core.pagerank import pagerank_open
from repro.experiments.workloads import ExperimentScale, default_graph
from repro.graph.partition import make_partition
from repro.graph.stats import partition_cut_statistics
from repro.graph.webgraph import WebGraph
from repro.overlay import build_overlay
from repro.overlay.metrics import hop_statistics, neighbor_statistics

__all__ = [
    "PartitioningResult",
    "run_partitioning_ablation",
    "TransportResult",
    "run_transport_comparison",
    "CompressionResult",
    "run_compression_ablation",
    "OverlayHopsResult",
    "run_overlay_hops",
    "TradeoffResult",
    "run_time_vs_bandwidth",
]


# ----------------------------------------------------------------------
# §4.1 — partitioning strategies
# ----------------------------------------------------------------------
@dataclass
class PartitioningResult:
    """Cut statistics and measured traffic per strategy."""

    n_groups: int
    cut_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    run_bytes: Dict[str, int] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """Raw result rows (one tuple per table line)."""
        return [
            (
                strategy,
                stats["n_cut_links"],
                stats["cut_fraction"],
                float(self.run_bytes.get(strategy, -1)),
            )
            for strategy, stats in self.cut_stats.items()
        ]

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        return format_table(
            ["strategy", "cut links", "cut fraction", "bytes to converge"],
            self.rows(),
            title=f"§4.1 — partitioning strategies (K={self.n_groups})",
        )


def run_partitioning_ablation(
    graph: WebGraph = None,
    *,
    n_groups: int = 16,
    strategies: Sequence[str] = ("random", "url", "site"),
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 19,
    measure_traffic: bool = True,
    max_time: float = 400.0,
) -> PartitioningResult:
    """Compare partitioning strategies by cut size and real traffic."""
    if graph is None:
        graph = default_graph(scale)
    reference = pagerank_open(graph).ranks
    result = PartitioningResult(n_groups=n_groups)
    for strategy in strategies:
        part = make_partition(graph, n_groups, strategy, seed=seed)
        result.cut_stats[strategy] = partition_cut_statistics(graph, part).as_dict()
        if measure_traffic:
            res = run_distributed_pagerank(
                graph,
                n_groups=n_groups,
                partition=part,
                partition_strategy=strategy,
                algorithm="dpr1",
                t1=3.0,
                t2=3.0,
                seed=seed,
                reference=reference,
                target_relative_error=1e-4,
                max_time=max_time,
            )
            result.run_bytes[strategy] = res.traffic.total_bytes
    return result


# ----------------------------------------------------------------------
# §4.4 — direct vs indirect transmission
# ----------------------------------------------------------------------
@dataclass
class TransportResult:
    """Measured traffic of both transports on the same workload."""

    n_groups: int
    overlay_hops: float
    overlay_neighbors: float
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, int, int, int, float]]:
        """Raw result rows (one tuple per table line)."""
        out = []
        for kind, res in self.runs.items():
            iters = max(int(res.trace.max_outer_iterations[-1]), 1)
            out.append(
                (
                    kind,
                    res.traffic.total_messages,
                    res.traffic.data_messages,
                    res.traffic.total_bytes,
                    res.traffic.total_messages / iters,
                )
            )
        return out

    def predicted_messages_per_iteration(self) -> Dict[str, float]:
        """Formulas 4.3 / 4.4 evaluated at this run's N, g, h."""
        return {
            "indirect": indirect_messages(self.n_groups, self.overlay_neighbors),
            "direct": direct_messages(self.n_groups, self.overlay_hops),
        }

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        body = format_table(
            ["transport", "messages", "data msgs", "bytes", "msgs/iteration"],
            self.rows(),
            title=f"§4.4 — direct vs indirect transmission (N={self.n_groups})",
        )
        pred = self.predicted_messages_per_iteration()
        return (
            body
            + f"\npredicted msgs/iter — indirect gN = {pred['indirect']:.0f},"
            + f" direct (h+1)N² = {pred['direct']:.0f}"
        )


def run_transport_comparison(
    graph: WebGraph = None,
    *,
    n_groups: int = 32,
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 23,
    max_time: float = 400.0,
) -> TransportResult:
    """Run DPR1 to convergence over both transports; report traffic."""
    if graph is None:
        graph = default_graph(scale)
    reference = pagerank_open(graph).ranks
    overlay = build_overlay("pastry", n_groups, seed=seed)
    result = TransportResult(
        n_groups=n_groups,
        overlay_hops=hop_statistics(overlay, 300, seed=seed).mean,
        overlay_neighbors=neighbor_statistics(overlay)["mean"],
    )
    for kind in ("indirect", "direct"):
        result.runs[kind] = run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            transport=kind,
            algorithm="dpr1",
            partition_strategy="url",
            t1=3.0,
            t2=3.0,
            seed=seed,
            reference=reference,
            target_relative_error=1e-4,
            max_time=max_time,
        )
    return result


# ----------------------------------------------------------------------
# Future-work: traffic reduction by delta suppression
# ----------------------------------------------------------------------
@dataclass
class CompressionResult:
    """Traffic/accuracy trade-off of delta suppression."""

    thresholds: List[float] = field(default_factory=list)
    bytes_used: List[int] = field(default_factory=list)
    messages: List[int] = field(default_factory=list)
    final_errors: List[float] = field(default_factory=list)

    def rows(self) -> List[Tuple[float, int, int, float]]:
        """Raw result rows (one tuple per table line)."""
        return list(
            zip(self.thresholds, self.bytes_used, self.messages, self.final_errors)
        )

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        return format_table(
            ["suppress tol", "bytes", "messages", "final rel err"],
            self.rows(),
            title="future-work — delta suppression of efferent updates",
        )


def run_compression_ablation(
    graph: WebGraph = None,
    *,
    n_groups: int = 16,
    thresholds: Sequence[float] = (0.0, 1e-8, 1e-4, 1e-2),
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 29,
    max_time: float = 120.0,
) -> CompressionResult:
    """Sweep the delta-suppression threshold; measure traffic vs error."""
    if graph is None:
        graph = default_graph(scale)
    reference = pagerank_open(graph).ranks
    result = CompressionResult()
    for tol in thresholds:
        res = run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            algorithm="dpr1",
            partition_strategy="url",
            t1=3.0,
            t2=3.0,
            suppress_tol=float(tol),
            seed=seed,
            reference=reference,
            max_time=max_time,
        )
        result.thresholds.append(float(tol))
        result.bytes_used.append(res.traffic.total_bytes)
        result.messages.append(res.traffic.total_messages)
        result.final_errors.append(res.final_relative_error)
    return result


# ----------------------------------------------------------------------
# §4.5 — convergence time vs bandwidth, measured
# ----------------------------------------------------------------------
@dataclass
class TradeoffResult:
    """Measured §4.5 trade-off: iteration cadence vs bandwidth rate."""

    wait_means: List[float] = field(default_factory=list)
    times_to_target: List[float] = field(default_factory=list)
    bytes_total: List[int] = field(default_factory=list)
    bytes_per_time_unit: List[float] = field(default_factory=list)

    def rows(self) -> List[Tuple[float, float, int, float]]:
        """Raw result rows (one tuple per table line)."""
        return list(
            zip(
                self.wait_means,
                self.times_to_target,
                self.bytes_total,
                self.bytes_per_time_unit,
            )
        )

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        return format_table(
            ["iteration interval T", "time to converge", "total bytes", "bytes / time unit"],
            self.rows(),
            title="§4.5 — convergence time vs bandwidth (DPR1)",
        )


def run_time_vs_bandwidth(
    graph: WebGraph = None,
    *,
    n_groups: int = 16,
    wait_means: Sequence[float] = (1.0, 3.0, 9.0),
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 37,
    target: float = 1e-4,
    max_time: float = 3000.0,
) -> TradeoffResult:
    """Measure §4.5's trade-off end to end.

    The paper derives it analytically: the bisection constraint forces
    a *minimum* iteration interval T, and a larger T means slower
    convergence.  Here we sweep the rankers' wait time (the simulated
    T) and measure both sides: wall time to the 0.01% target grows
    ~linearly with T, while the bandwidth *rate* (bytes per time unit)
    shrinks ~inversely — total bytes to converge stays roughly flat.
    """
    if graph is None:
        graph = default_graph(scale)
    reference = pagerank_open(graph, tol=1e-12).ranks
    result = TradeoffResult()
    for t in wait_means:
        res = run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            algorithm="dpr1",
            partition_strategy="site",
            t1=float(t),
            t2=float(t),
            seed=seed,
            reference=reference,
            target_relative_error=target,
            max_time=max_time,
        )
        duration = res.time_to_target if res.converged else max_time
        result.wait_means.append(float(t))
        result.times_to_target.append(float(duration))
        result.bytes_total.append(res.traffic.total_bytes)
        result.bytes_per_time_unit.append(
            res.traffic.total_bytes / max(duration, 1e-9)
        )
    return result


# ----------------------------------------------------------------------
# Overlay scaling (the h and g inputs of §4.5)
# ----------------------------------------------------------------------
@dataclass
class OverlayHopsResult:
    """Hop/neighbor statistics across overlay kinds and sizes."""

    rows_data: List[Tuple[str, int, float, float, float]] = field(default_factory=list)

    def rows(self) -> List[Tuple[str, int, float, float, float]]:
        """Raw result rows (one tuple per table line)."""
        return self.rows_data

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        return format_table(
            ["overlay", "nodes", "mean hops", "p95 hops", "mean neighbors"],
            self.rows_data,
            title="overlay routing — h and g vs network size",
        )


def run_overlay_hops(
    *,
    kinds: Sequence[str] = ("pastry", "tapestry", "chord", "can"),
    ns: Sequence[int] = (100, 1_000, 10_000),
    samples: int = 300,
    seed: int = 31,
) -> OverlayHopsResult:
    """Measure mean hops and neighbor counts for each overlay/size."""
    result = OverlayHopsResult()
    for kind in kinds:
        for n in ns:
            overlay = build_overlay(kind, int(n), seed=seed)
            hs = hop_statistics(overlay, samples, seed=seed)
            ns_stats = neighbor_statistics(overlay, max_nodes=500, seed=seed)
            result.rows_data.append(
                (kind, int(n), hs.mean, hs.p95, ns_stats["mean"])
            )
    return result
