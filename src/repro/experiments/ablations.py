"""Ablation experiments backing the paper's design arguments.

* :func:`run_partitioning_ablation` — §4.1's claim that hash-by-site
  partitioning slashes cross-ranker traffic relative to random or
  URL-hash placement.
* :func:`run_transport_comparison` — §4.4's message/byte trade-off
  between direct and indirect transmission, measured end-to-end and
  compared with formulas 4.1–4.4.
* :func:`run_compression_ablation` — the paper's future-work note on
  reducing traffic, realized as delta suppression (only re-send an
  efferent vector when it changed by more than a threshold).
* :func:`run_overlay_hops` — hop/neighbor scaling of the four
  overlay families (the ``h`` and ``g`` inputs of the cost model).
* :func:`run_time_vs_bandwidth` — §4.5's convergence-time-vs-bandwidth
  trade-off, measured in simulation rather than derived analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.cost_model import (
    direct_messages,
    indirect_messages,
)
from repro.analysis.reporting import format_table
from repro.core.coordinator import RunResult, run_distributed_pagerank
from repro.experiments.workloads import ExperimentScale, default_graph, reference_ranks
from repro.graph.partition import make_partition
from repro.graph.stats import partition_cut_statistics
from repro.graph.webgraph import WebGraph
from repro.overlay import build_overlay
from repro.overlay.metrics import hop_statistics, neighbor_statistics
from repro.parallel.cache import array_fingerprint, cached_point

__all__ = [
    "PartitioningResult",
    "run_partitioning_ablation",
    "partitioning_point",
    "TransportResult",
    "run_transport_comparison",
    "transport_point",
    "transport_overlay_stats",
    "CompressionResult",
    "run_compression_ablation",
    "compression_point",
    "OverlayHopsResult",
    "run_overlay_hops",
    "overlay_hops_point",
    "TradeoffResult",
    "run_time_vs_bandwidth",
    "tradeoff_point",
]


# ----------------------------------------------------------------------
# §4.1 — partitioning strategies
# ----------------------------------------------------------------------
@dataclass
class PartitioningResult:
    """Cut statistics and measured traffic per strategy."""

    n_groups: int
    cut_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    run_bytes: Dict[str, int] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """Raw result rows (one tuple per table line)."""
        return [
            (
                strategy,
                stats["n_cut_links"],
                stats["cut_fraction"],
                float(self.run_bytes.get(strategy, -1)),
            )
            for strategy, stats in self.cut_stats.items()
        ]

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        return format_table(
            ["strategy", "cut links", "cut fraction", "bytes to converge"],
            self.rows(),
            title=f"§4.1 — partitioning strategies (K={self.n_groups})",
        )


def partitioning_point(
    graph: WebGraph,
    reference,
    *,
    strategy: str,
    n_groups: int,
    seed: int,
    measure_traffic: bool,
    max_time: float,
):
    """One strategy's cut statistics and (optionally) run traffic."""

    def compute():
        part = make_partition(graph, n_groups, strategy, seed=seed)
        cut_stats = partition_cut_statistics(graph, part).as_dict()
        run_bytes = None
        if measure_traffic:
            res = run_distributed_pagerank(
                graph,
                n_groups=n_groups,
                partition=part,
                partition_strategy=strategy,
                algorithm="dpr1",
                t1=3.0,
                t2=3.0,
                seed=seed,
                reference=reference,
                target_relative_error=1e-4,
                max_time=max_time,
            )
            run_bytes = res.traffic.total_bytes
        return cut_stats, run_bytes

    return cached_point(
        "point/partitioning",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "strategy": strategy,
            "n_groups": n_groups,
            "seed": seed,
            "measure_traffic": measure_traffic,
            "max_time": max_time,
        },
        compute,
    )


def run_partitioning_ablation(
    graph: WebGraph = None,
    *,
    n_groups: int = 16,
    strategies: Sequence[str] = ("random", "url", "site"),
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 19,
    measure_traffic: bool = True,
    max_time: float = 400.0,
) -> PartitioningResult:
    """Compare partitioning strategies by cut size and real traffic."""
    if graph is None:
        graph = default_graph(scale)
    reference = reference_ranks(graph)
    result = PartitioningResult(n_groups=n_groups)
    for strategy in strategies:
        cut_stats, run_bytes = partitioning_point(
            graph,
            reference,
            strategy=strategy,
            n_groups=n_groups,
            seed=seed,
            measure_traffic=measure_traffic,
            max_time=max_time,
        )
        result.cut_stats[strategy] = cut_stats
        if run_bytes is not None:
            result.run_bytes[strategy] = run_bytes
    return result


# ----------------------------------------------------------------------
# §4.4 — direct vs indirect transmission
# ----------------------------------------------------------------------
@dataclass
class TransportResult:
    """Measured traffic of both transports on the same workload."""

    n_groups: int
    overlay_hops: float
    overlay_neighbors: float
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, int, int, int, float]]:
        """Raw result rows (one tuple per table line)."""
        out = []
        for kind, res in self.runs.items():
            iters = max(int(res.trace.max_outer_iterations[-1]), 1)
            out.append(
                (
                    kind,
                    res.traffic.total_messages,
                    res.traffic.data_messages,
                    res.traffic.total_bytes,
                    res.traffic.total_messages / iters,
                )
            )
        return out

    def predicted_messages_per_iteration(self) -> Dict[str, float]:
        """Formulas 4.3 / 4.4 evaluated at this run's N, g, h."""
        return {
            "indirect": indirect_messages(self.n_groups, self.overlay_neighbors),
            "direct": direct_messages(self.n_groups, self.overlay_hops),
        }

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        body = format_table(
            ["transport", "messages", "data msgs", "bytes", "msgs/iteration"],
            self.rows(),
            title=f"§4.4 — direct vs indirect transmission (N={self.n_groups})",
        )
        pred = self.predicted_messages_per_iteration()
        return (
            body
            + f"\npredicted msgs/iter — indirect gN = {pred['indirect']:.0f},"
            + f" direct (h+1)N² = {pred['direct']:.0f}"
        )


def transport_overlay_stats(n_groups: int, seed: int) -> Tuple[float, float]:
    """(mean hops, mean neighbors) of the N-ranker Pastry overlay."""

    def compute():
        overlay = build_overlay("pastry", n_groups, seed=seed)
        return (
            hop_statistics(overlay, 300, seed=seed).mean,
            neighbor_statistics(overlay)["mean"],
        )

    return cached_point(
        "point/transport_stats",
        {"overlay": "pastry", "n_groups": n_groups, "seed": seed, "samples": 300},
        compute,
    )


def transport_point(
    graph: WebGraph,
    reference,
    *,
    kind: str,
    n_groups: int,
    seed: int,
    max_time: float,
) -> RunResult:
    """One transport's end-to-end convergence run."""

    def compute() -> RunResult:
        return run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            transport=kind,
            algorithm="dpr1",
            partition_strategy="url",
            t1=3.0,
            t2=3.0,
            seed=seed,
            reference=reference,
            target_relative_error=1e-4,
            max_time=max_time,
        )

    return cached_point(
        "point/transport",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "kind": kind,
            "n_groups": n_groups,
            "seed": seed,
            "max_time": max_time,
        },
        compute,
    )


def run_transport_comparison(
    graph: WebGraph = None,
    *,
    n_groups: int = 32,
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 23,
    max_time: float = 400.0,
) -> TransportResult:
    """Run DPR1 to convergence over both transports; report traffic."""
    if graph is None:
        graph = default_graph(scale)
    reference = reference_ranks(graph)
    hops, neighbors = transport_overlay_stats(n_groups, seed)
    result = TransportResult(
        n_groups=n_groups,
        overlay_hops=hops,
        overlay_neighbors=neighbors,
    )
    for kind in ("indirect", "direct"):
        result.runs[kind] = transport_point(
            graph,
            reference,
            kind=kind,
            n_groups=n_groups,
            seed=seed,
            max_time=max_time,
        )
    return result


# ----------------------------------------------------------------------
# Future-work: traffic reduction by delta suppression
# ----------------------------------------------------------------------
@dataclass
class CompressionResult:
    """Traffic/accuracy trade-off of delta suppression."""

    thresholds: List[float] = field(default_factory=list)
    bytes_used: List[int] = field(default_factory=list)
    messages: List[int] = field(default_factory=list)
    final_errors: List[float] = field(default_factory=list)

    def rows(self) -> List[Tuple[float, int, int, float]]:
        """Raw result rows (one tuple per table line)."""
        return list(
            zip(self.thresholds, self.bytes_used, self.messages, self.final_errors)
        )

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        return format_table(
            ["suppress tol", "bytes", "messages", "final rel err"],
            self.rows(),
            title="future-work — delta suppression of efferent updates",
        )


def compression_point(
    graph: WebGraph,
    reference,
    *,
    tol: float,
    n_groups: int,
    seed: int,
    max_time: float,
) -> Tuple[int, int, float]:
    """One suppression threshold: (bytes, messages, final rel error)."""

    def compute() -> Tuple[int, int, float]:
        res = run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            algorithm="dpr1",
            partition_strategy="url",
            t1=3.0,
            t2=3.0,
            send_threshold=float(tol),
            seed=seed,
            reference=reference,
            max_time=max_time,
        )
        return (
            res.traffic.total_bytes,
            res.traffic.total_messages,
            res.final_relative_error,
        )

    return cached_point(
        "point/compression",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "tol": float(tol),
            "n_groups": n_groups,
            "seed": seed,
            "max_time": max_time,
        },
        compute,
    )


def run_compression_ablation(
    graph: WebGraph = None,
    *,
    n_groups: int = 16,
    thresholds: Sequence[float] = (0.0, 1e-8, 1e-4, 1e-2),
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 29,
    max_time: float = 120.0,
) -> CompressionResult:
    """Sweep the delta-suppression threshold; measure traffic vs error."""
    if graph is None:
        graph = default_graph(scale)
    reference = reference_ranks(graph)
    result = CompressionResult()
    for tol in thresholds:
        bytes_used, messages, final_error = compression_point(
            graph,
            reference,
            tol=float(tol),
            n_groups=n_groups,
            seed=seed,
            max_time=max_time,
        )
        result.thresholds.append(float(tol))
        result.bytes_used.append(bytes_used)
        result.messages.append(messages)
        result.final_errors.append(final_error)
    return result


# ----------------------------------------------------------------------
# §4.5 — convergence time vs bandwidth, measured
# ----------------------------------------------------------------------
@dataclass
class TradeoffResult:
    """Measured §4.5 trade-off: iteration cadence vs bandwidth rate."""

    wait_means: List[float] = field(default_factory=list)
    times_to_target: List[float] = field(default_factory=list)
    bytes_total: List[int] = field(default_factory=list)
    bytes_per_time_unit: List[float] = field(default_factory=list)

    def rows(self) -> List[Tuple[float, float, int, float]]:
        """Raw result rows (one tuple per table line)."""
        return list(
            zip(
                self.wait_means,
                self.times_to_target,
                self.bytes_total,
                self.bytes_per_time_unit,
            )
        )

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        return format_table(
            ["iteration interval T", "time to converge", "total bytes", "bytes / time unit"],
            self.rows(),
            title="§4.5 — convergence time vs bandwidth (DPR1)",
        )


def tradeoff_point(
    graph: WebGraph,
    reference,
    *,
    t: float,
    n_groups: int,
    seed: int,
    target: float,
    max_time: float,
) -> Tuple[float, float, int, float]:
    """One iteration interval T: (T, time to target, bytes, rate)."""

    def compute() -> Tuple[float, float, int, float]:
        res = run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            algorithm="dpr1",
            partition_strategy="site",
            t1=float(t),
            t2=float(t),
            seed=seed,
            reference=reference,
            target_relative_error=target,
            max_time=max_time,
        )
        duration = res.time_to_target if res.converged else max_time
        return (
            float(t),
            float(duration),
            res.traffic.total_bytes,
            res.traffic.total_bytes / max(duration, 1e-9),
        )

    return cached_point(
        "point/tradeoff",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "t": float(t),
            "n_groups": n_groups,
            "seed": seed,
            "target": target,
            "max_time": max_time,
        },
        compute,
    )


def run_time_vs_bandwidth(
    graph: WebGraph = None,
    *,
    n_groups: int = 16,
    wait_means: Sequence[float] = (1.0, 3.0, 9.0),
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 37,
    target: float = 1e-4,
    max_time: float = 3000.0,
) -> TradeoffResult:
    """Measure §4.5's trade-off end to end.

    The paper derives it analytically: the bisection constraint forces
    a *minimum* iteration interval T, and a larger T means slower
    convergence.  Here we sweep the rankers' wait time (the simulated
    T) and measure both sides: wall time to the 0.01% target grows
    ~linearly with T, while the bandwidth *rate* (bytes per time unit)
    shrinks ~inversely — total bytes to converge stays roughly flat.
    """
    if graph is None:
        graph = default_graph(scale)
    reference = reference_ranks(graph, tol=1e-12)
    result = TradeoffResult()
    for t in wait_means:
        wait, duration, bytes_total, rate = tradeoff_point(
            graph,
            reference,
            t=float(t),
            n_groups=n_groups,
            seed=seed,
            target=target,
            max_time=max_time,
        )
        result.wait_means.append(wait)
        result.times_to_target.append(duration)
        result.bytes_total.append(bytes_total)
        result.bytes_per_time_unit.append(rate)
    return result


# ----------------------------------------------------------------------
# Overlay scaling (the h and g inputs of §4.5)
# ----------------------------------------------------------------------
@dataclass
class OverlayHopsResult:
    """Hop/neighbor statistics across overlay kinds and sizes."""

    rows_data: List[Tuple[str, int, float, float, float]] = field(default_factory=list)

    def rows(self) -> List[Tuple[str, int, float, float, float]]:
        """Raw result rows (one tuple per table line)."""
        return self.rows_data

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        return format_table(
            ["overlay", "nodes", "mean hops", "p95 hops", "mean neighbors"],
            self.rows_data,
            title="overlay routing — h and g vs network size",
        )


def overlay_hops_point(
    kind: str, n: int, *, samples: int, seed: int
) -> Tuple[str, int, float, float, float]:
    """One (overlay kind, size) row of the hop/neighbor table."""

    def compute() -> Tuple[str, int, float, float, float]:
        overlay = build_overlay(kind, int(n), seed=seed)
        hs = hop_statistics(overlay, samples, seed=seed)
        ns_stats = neighbor_statistics(overlay, max_nodes=500, seed=seed)
        return (kind, int(n), hs.mean, hs.p95, ns_stats["mean"])

    return cached_point(
        "point/overlay_hops",
        {"kind": kind, "n": int(n), "samples": samples, "seed": seed},
        compute,
    )


def run_overlay_hops(
    *,
    kinds: Sequence[str] = ("pastry", "tapestry", "chord", "can"),
    ns: Sequence[int] = (100, 1_000, 10_000),
    samples: int = 300,
    seed: int = 31,
) -> OverlayHopsResult:
    """Measure mean hops and neighbor counts for each overlay/size."""
    result = OverlayHopsResult()
    for kind in kinds:
        for n in ns:
            result.rows_data.append(
                overlay_hops_point(kind, int(n), samples=samples, seed=seed)
            )
    return result
