"""Chaos bake-off: the churn scenario on the event and hybrid engines.

EXPERIMENTS.md's churn scenario throws every fault knob the repo has
at one run — crashes with recovery, a lossy network under the
reliable transport, ACK loss, duplicates, reordering — and asks
whether the rank vector still converges to the centralized fixed
point.  This experiment runs that scenario on the two engines that
can execute it:

* ``event`` — the per-message event simulator, the fidelity
  reference: every send, retransmit, heartbeat and checkpoint is an
  explicitly scheduled event;
* ``hybrid`` — the fault-tolerant fast path
  (:mod:`repro.core.hybrid`): flat bulk-synchronous rounds over a
  persistent fault plane, replaying fault traffic at round
  granularity.

and reports, per engine: rounds executed, the ε verdict against the
centralized reference, fault-machinery counters (retransmits, groups
crashed, takeovers, checkpoint saves), traffic totals and wall-clock
seconds.  The headline claims under test (DESIGN.md §13):

1. both engines return the *same ε verdict* on the same scenario —
   the hybrid approximation stays inside the documented tolerance;
2. the hybrid engine is substantially faster (the CI gate in
   ``benchmarks/bench_chaos.py`` pins ≥3x at 1e5 pages).

Every per-engine point routes through the artifact cache
(:func:`repro.parallel.cache.cached_point`), so a warm-cache rerun
reproduces the table byte-identically.  CLI: ``python -m repro
chaos``; the gated numbers live in ``BENCH_chaos.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.graph.webgraph import WebGraph
from repro.parallel.cache import array_fingerprint, cached_point

__all__ = [
    "CHAOS_ENGINES",
    "CHURN_SCENARIO",
    "ChaosBakeoffResult",
    "chaos_point",
    "run_chaos_bakeoff",
]

#: The two engines able to execute the full churn scenario.
CHAOS_ENGINES: Tuple[str, ...] = ("event", "hybrid")

#: The EXPERIMENTS.md churn scenario: synchronous period T = 10 with
#: every fault subsystem active.  Crashes start after t = 15 (round 2)
#: so the first checkpoint (t = 5, 10, 15) exists before the first
#: death, and recovery restores rather than restarts.
CHURN_SCENARIO: Dict[str, object] = {
    "algorithm": "dpr2",
    "partition_strategy": "url",
    "transport": "direct",
    "schedule": "sync",
    "t1": 10.0,
    "t2": 10.0,
    "sample_interval": 10.0,
    "delivery_prob": 0.85,
    "reliable": True,
    "ack_loss_prob": 0.15,
    "duplicate_prob": 0.1,
    "reorder_prob": 0.2,
    "reorder_max_delay": 2.0,
    "crash_prob": 0.25,
    "crash_after": 15.0,
    "crash_horizon": 10.0,
    "heartbeat_interval": 2.0,
    "heartbeat_miss_threshold": 2,
    "checkpoint_interval": 5.0,
    "recovery": True,
}


@dataclass
class ChaosBakeoffResult:
    """One chaos table: per-engine verdicts, fault counters, timing."""

    n_pages: int
    n_groups: int
    target_relative_error: float
    points: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def verdicts_agree(self) -> bool:
        """True when every engine reached the same ε verdict."""
        verdicts = {bool(p["converged"]) for p in self.points.values()}
        return len(verdicts) <= 1

    def speedup(self) -> Optional[float]:
        """Hybrid wall-clock speedup over the event engine, if both ran."""
        ev = self.points.get("event")
        hy = self.points.get("hybrid")
        if ev is None or hy is None or hy["wall_seconds"] <= 0:
            return None
        return ev["wall_seconds"] / hy["wall_seconds"]

    def rows(self) -> List[Tuple]:
        """Raw result rows (one tuple per table line)."""
        out = []
        for name, p in self.points.items():
            out.append(
                (
                    name,
                    int(p["rounds"]),
                    "yes" if p["converged"] else "-",
                    p["final_relative_error"],
                    int(p["retransmits"]),
                    int(p["crashed_groups"]),
                    int(p["takeovers"]),
                    int(p["checkpoint_saves"]),
                    int(p["messages"]),
                    p["wall_seconds"],
                )
            )
        return out

    def format(self) -> str:
        """Paper-shaped text table of this result."""
        title = (
            f"chaos bake-off (n={self.n_pages}, K={self.n_groups}, "
            f"ε={self.target_relative_error:g}, full churn scenario)"
        )
        table = format_table(
            [
                "engine",
                "rounds",
                "reached ε",
                "L1 err vs CPR",
                "retransmits",
                "crashed",
                "takeovers",
                "ckpt saves",
                "messages",
                "wall s",
            ],
            self.rows(),
            title=title,
        )
        speedup = self.speedup()
        if speedup is not None:
            verdict = "agree" if self.verdicts_agree() else "DISAGREE"
            table += (
                f"\nε verdicts {verdict}; hybrid speedup over event: "
                f"{speedup:.1f}x"
            )
        return table


def chaos_point(
    graph: WebGraph,
    reference: np.ndarray,
    *,
    engine: str,
    n_groups: int,
    seed: int,
    target_relative_error: float,
    max_time: float,
) -> Dict[str, float]:
    """All chaos-scenario metrics for one engine (cached).

    Wall-clock is measured inside ``compute``, so a cache hit replays
    the originally measured timing rather than the (near-zero) lookup
    time — reruns stay byte-identical.
    """
    if engine not in CHAOS_ENGINES:
        raise ValueError(
            f"unknown chaos engine {engine!r}; pick from {CHAOS_ENGINES}"
        )

    def compute() -> Dict[str, float]:
        from repro.core.coordinator import run_distributed_pagerank

        t0 = time.perf_counter()
        res = run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            engine=engine,
            seed=seed,
            reference=reference,
            max_time=max_time,
            target_relative_error=target_relative_error,
            **CHURN_SCENARIO,
        )
        return {
            "rounds": float(res.max_outer_iterations),
            "converged": float(res.converged),
            "final_relative_error": float(res.final_relative_error),
            "messages": float(res.traffic.total_messages),
            "bytes": float(res.traffic.total_bytes),
            "retransmits": float(res.retransmits),
            "crashed_groups": float(res.crashed_groups),
            "takeovers": float(res.takeovers),
            "checkpoint_saves": float(res.checkpoint_saves),
            "fast_rounds": float(res.fast_rounds),
            "replayed_rounds": float(res.replayed_rounds),
            "wall_seconds": time.perf_counter() - t0,
        }

    return cached_point(
        "point/chaos",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "engine": engine,
            "n_groups": n_groups,
            "seed": seed,
            "target": target_relative_error,
            "max_time": max_time,
        },
        compute,
    )


def run_chaos_bakeoff(
    graph: WebGraph,
    *,
    n_groups: int = 8,
    engines: Sequence[str] = CHAOS_ENGINES,
    seed: int = 5,
    target_relative_error: float = 1e-4,
    max_time: float = 405.0,
    reference: Optional[np.ndarray] = None,
) -> ChaosBakeoffResult:
    """Run the churn scenario over ``engines`` on one graph.

    All contenders share the centralized reference and the identical
    :data:`CHURN_SCENARIO`; only the engine varies — identical seeds
    drive identical fault schedules, so the comparison isolates the
    execution strategy.
    """
    if reference is None:
        from repro.experiments.workloads import reference_ranks

        reference = reference_ranks(graph)
    result = ChaosBakeoffResult(
        n_pages=graph.n_pages,
        n_groups=n_groups,
        target_relative_error=target_relative_error,
    )
    for engine in engines:
        result.points[engine] = chaos_point(
            graph,
            reference,
            engine=engine,
            n_groups=n_groups,
            seed=seed,
            target_relative_error=target_relative_error,
            max_time=max_time,
        )
    return result
