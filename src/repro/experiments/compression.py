"""Wire-compression bake-off: every codec over one identical workload.

The paper charges every cross-group score update a flat 100 bytes per
link record (§4.4) and already flags traffic reduction as future work
(§6).  The codec layer (:mod:`repro.net.codec` /
:mod:`repro.net.adaptive`) implements that future work — delta-coded,
varint-packed, error-budgeted frames — and this experiment is its
measurement: the contenders run on *identical* workloads (same graph,
same site partition, same overlay/transport, same synchronous period,
same flat engine) and report, per codec:

* rounds executed and the final L1 error against the centralized
  reference (the lossless contenders must match the uncoded run bit
  for bit — asserted by tests/benches, visible here as a zero
  deviation column);
* calibrated **data bytes** next to the paper-model bytes the same
  run would have been charged under the flat 100 B/record model, and
  their ratio (the headline reduction factor);
* frame counters (shipped / suppressed / escalated-to-exact) from the
  codec session manager;
* the **certified bound** ε_comm/(1−α) next to the *measured* L1 rank
  deviation from the uncompressed baseline — the certificate the
  error-budget accounting guarantees, checked by
  :meth:`CompressionBakeoffResult.certified`.

Every per-codec point routes through the artifact cache
(:func:`repro.parallel.cache.cached_point`), so a warm-cache rerun
reproduces the table byte-identically.  CLI: ``python -m repro
compression``; the gated numbers live in ``BENCH_comm.json``
(benchmarks/bench_comm.py).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.graph.webgraph import WebGraph
from repro.parallel.cache import array_fingerprint, cached_point

__all__ = [
    "COMPRESSION_CONTENDERS",
    "CompressionBakeoffResult",
    "compression_bakeoff_point",
    "run_compression_bakeoff",
]

#: The contender set: the uncoded paper model, the lossless delta
#: codec (ε_comm = 0: exact float64 flushes of changed entries), the
#: same codec spending an error budget (float32 deltas under ε_comm),
#: and the half-precision variant (float16 deltas under ε_comm).
COMPRESSION_CONTENDERS: Tuple[str, ...] = (
    "none",
    "delta",
    "delta-eps",
    "delta-q16",
)

#: (config codec name, spends the error budget) per contender.
_SPECS: Dict[str, Tuple[str, bool]] = {
    "none": ("none", False),
    "delta": ("delta", False),
    "delta-eps": ("delta", True),
    "delta-q16": ("delta-q16", True),
}

#: Common tick period of the bake-off's synchronous runs.
_PERIOD = 6.0


@dataclass
class CompressionBakeoffResult:
    """One bake-off table: per-codec traffic, accuracy, certificates."""

    n_pages: int
    n_groups: int
    comm_epsilon: float
    target_relative_error: float
    points: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Tuple]:
        """Raw result rows (one tuple per table line)."""
        out = []
        for name, p in self.points.items():
            out.append(
                (
                    name,
                    int(p["rounds"]),
                    p["final_relative_error"],
                    int(p["data_bytes"]),
                    int(p["paper_bytes"]),
                    f"{p['reduction_x']:.2f}x",
                    f"{int(p['frames'])}/{int(p['suppressed_frames'])}"
                    f"/{int(p['exact_flushes'])}",
                    p["deviation_l1"],
                    p["certified_bound"],
                )
            )
        return out

    def format(self) -> str:
        """Paper-shaped text table of this result."""
        title = (
            f"wire-compression bake-off (n={self.n_pages}, "
            f"K={self.n_groups}, ε_comm={self.comm_epsilon:g}, "
            f"ε={self.target_relative_error:g})"
        )
        return format_table(
            [
                "codec",
                "rounds",
                "L1 err vs CPR",
                "data bytes",
                "paper bytes",
                "reduction",
                "frames/supp/exact",
                "L1 dev vs none",
                "certified",
            ],
            self.rows(),
            title=title,
        )

    def certified(self) -> bool:
        """True when every contender honoured its certificate.

        Lossless contenders (no budget) must deviate from the uncoded
        baseline by exactly zero; budgeted contenders must measure at
        or below their certified bound.
        """
        for p in self.points.values():
            if p["deviation_l1"] > p["certified_bound"]:
                return False
        return True


def compression_bakeoff_point(
    graph: WebGraph,
    reference: np.ndarray,
    base_ranks: Optional[np.ndarray],
    *,
    name: str,
    n_groups: int,
    seed: int,
    target_relative_error: float,
    comm_epsilon: float,
    max_time: float,
) -> Dict[str, float]:
    """All bake-off metrics for one codec contender (cached).

    ``base_ranks`` is the uncoded run's final rank vector (None only
    while computing the ``none`` point itself); the deviation column
    is the raw L1 distance against it, directly comparable to the
    certificate ε_comm/(1−α), which bounds the same quantity.
    """
    if name not in _SPECS:
        raise ValueError(
            f"unknown codec contender {name!r}; "
            f"pick from {COMPRESSION_CONTENDERS}"
        )
    codec, lossy = _SPECS[name]
    epsilon = float(comm_epsilon) if lossy else 0.0

    def compute() -> Dict[str, float]:
        from repro.core.coordinator import run_distributed_pagerank

        t0 = time.perf_counter()
        res = run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            engine="flat",
            algorithm="dpr2",
            partition_strategy="site",
            transport="direct",
            overlay="pastry",
            schedule="sync",
            t1=_PERIOD,
            t2=_PERIOD,
            sample_interval=_PERIOD,
            seed=seed,
            codec=codec,
            comm_epsilon=epsilon,
            reference=reference,
            max_time=max_time,
            target_relative_error=target_relative_error,
        )
        data = int(res.traffic.data_bytes)
        paper = int(res.traffic.paper_data_bytes)
        cs = res.codec_stats or {}
        deviation = (
            0.0
            if base_ranks is None
            else float(np.abs(res.ranks - base_ranks).sum())
        )
        return {
            "rounds": float(res.max_outer_iterations),
            "converged": float(res.converged),
            "final_relative_error": float(res.final_relative_error),
            "messages": float(res.traffic.total_messages),
            "data_bytes": float(data),
            "paper_bytes": float(paper),
            "reduction_x": paper / data if data else 1.0,
            "frames": float(cs.get("frames", 0)),
            "suppressed_frames": float(cs.get("suppressed_frames", 0)),
            "exact_flushes": float(cs.get("exact_flushes", 0)),
            "certified_bound": float(cs.get("certified_bound", 0.0)),
            "deviation_l1": deviation,
            "wall_seconds": time.perf_counter() - t0,
        }

    return cached_point(
        "point/compression_bakeoff",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "baseline": (
                "" if base_ranks is None else array_fingerprint(base_ranks)
            ),
            "codec": name,
            "n_groups": n_groups,
            "seed": seed,
            "target": target_relative_error,
            "comm_epsilon": epsilon,
            "max_time": max_time,
            "period": _PERIOD,
        },
        compute,
    )


def run_compression_bakeoff(
    graph: WebGraph,
    *,
    n_groups: int = 16,
    codecs: Sequence[str] = COMPRESSION_CONTENDERS,
    seed: int = 2003,
    target_relative_error: float = 1e-4,
    comm_epsilon: float = 1e-4,
    max_time: float = 3000.0,
    reference: Optional[np.ndarray] = None,
) -> CompressionBakeoffResult:
    """Run the bake-off over ``codecs`` on one graph.

    The uncoded baseline always runs first (even when not listed in
    ``codecs``) because every other contender's deviation column is
    measured against its final ranks; all contenders share the
    centralized reference and identical workload parameters — only the
    codec and its budget vary.
    """
    if reference is None:
        from repro.experiments.workloads import reference_ranks

        reference = reference_ranks(graph)

    def point(name: str, base_ranks: Optional[np.ndarray]):
        return compression_bakeoff_point(
            graph,
            reference,
            base_ranks,
            name=name,
            n_groups=n_groups,
            seed=seed,
            target_relative_error=target_relative_error,
            comm_epsilon=comm_epsilon,
            max_time=max_time,
        )

    # The baseline's ranks feed every deviation measurement; rerun it
    # outside the cache (cheap relative to the sweep) so the vector is
    # in hand even on a warm cache.
    from repro.core.coordinator import run_distributed_pagerank

    base = run_distributed_pagerank(
        graph,
        n_groups=n_groups,
        engine="flat",
        algorithm="dpr2",
        partition_strategy="site",
        transport="direct",
        overlay="pastry",
        schedule="sync",
        t1=_PERIOD,
        t2=_PERIOD,
        sample_interval=_PERIOD,
        seed=seed,
        reference=reference,
        max_time=max_time,
        target_relative_error=target_relative_error,
    )
    base_ranks = base.ranks

    result = CompressionBakeoffResult(
        n_pages=graph.n_pages,
        n_groups=n_groups,
        comm_epsilon=comm_epsilon,
        target_relative_error=target_relative_error,
    )
    for name in codecs:
        result.points[name] = point(
            name, None if name == "none" else base_ranks
        )
    return result
