"""Engine bake-off: every execution engine over one workload.

The repo now carries three genuinely different ways to compute the
same open-system ranks — DPR1 (local Jacobi to convergence per outer
loop), DPR2 (one sweep per loop, on either the event simulator or the
flat bulk-synchronous engine), and the Monte-Carlo random-walk
estimator (Das Sarma et al., PAPERS.md) — and this experiment is the
comparison table the 2003 source paper could not have written: the
contenders run on *identical* workloads (same graph, same site
partition, same overlay/transport, same synchronous period) and
report, per engine:

* rounds executed, and whether the target relative error ε was
  reached (for the Jacobi engines the run stops at ε, so "rounds" is
  rounds-to-ε; the mc run stops when every walk token has terminated);
* final L1 error against the centralized power-iteration reference —
  exact convergence for the Jacobi engines, the statistical residual
  for mc, printed next to its documented tolerance
  (:func:`repro.linalg.montecarlo.mc_error_tolerance`);
* total messages and bytes through the shared
  :class:`~repro.net.bandwidth.TrafficAccountant` — DPR traffic is
  constant per round (the cut vectors), mc traffic decays as tokens
  die;
* wall-clock seconds.

Every per-engine point routes through the artifact cache
(:func:`repro.parallel.cache.cached_point`), so a warm-cache rerun
reproduces the table byte-identically.  CLI: ``python -m repro
engines``; the gated numbers live in ``BENCH_mc.json``
(benchmarks/bench_mc.py) and the measured table in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.graph.webgraph import WebGraph
from repro.linalg.montecarlo import mc_error_tolerance
from repro.parallel.cache import array_fingerprint, cached_point

__all__ = [
    "ENGINE_CONTENDERS",
    "EngineBakeoffResult",
    "engine_bakeoff_point",
    "run_engine_bakeoff",
]

#: The contender set: DPR1 (on the flat engine — bit-identical to the
#: event engine and much faster), DPR2 on the event simulator, DPR2 on
#: the flat engine, and the Monte-Carlo random-walk estimator.
ENGINE_CONTENDERS: Tuple[str, ...] = ("dpr1", "dpr2-event", "flat", "mc")

#: Config overrides per contender name.
_SPECS: Dict[str, Dict[str, str]] = {
    "dpr1": {"engine": "flat", "algorithm": "dpr1"},
    "dpr2-event": {"engine": "event", "algorithm": "dpr2"},
    "flat": {"engine": "flat", "algorithm": "dpr2"},
    "mc": {"engine": "mc", "algorithm": "dpr1"},
}

#: Common tick period of the bake-off's synchronous runs.
_PERIOD = 6.0


@dataclass
class EngineBakeoffResult:
    """One bake-off table: per-engine rounds, accuracy, and traffic."""

    n_pages: int
    n_groups: int
    target_relative_error: float
    walks_per_page: int
    points: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Tuple]:
        """Raw result rows (one tuple per table line)."""
        out = []
        for name, p in self.points.items():
            out.append(
                (
                    name,
                    int(p["rounds"]),
                    "yes" if p["converged"] else "-",
                    p["final_relative_error"],
                    int(p["messages"]),
                    int(p["bytes"]),
                    p["wall_seconds"],
                )
            )
        return out

    def format(self) -> str:
        """Paper-shaped text table of this result."""
        title = (
            f"engine bake-off (n={self.n_pages}, K={self.n_groups}, "
            f"ε={self.target_relative_error:g}, R={self.walks_per_page})"
        )
        table = format_table(
            [
                "engine",
                "rounds",
                "reached ε",
                "L1 err vs CPR",
                "messages",
                "bytes",
                "wall s",
            ],
            self.rows(),
            title=title,
        )
        mc = self.points.get("mc")
        if mc is not None and "tolerance" in mc:
            table += (
                f"\nmc statistical tolerance at R={self.walks_per_page}: "
                f"{mc['tolerance']:.4f} (measured {mc['final_relative_error']:.4f}; "
                "error scales as 1/sqrt(R))"
            )
        return table


def engine_bakeoff_point(
    graph: WebGraph,
    reference: np.ndarray,
    *,
    name: str,
    n_groups: int,
    seed: int,
    target_relative_error: float,
    max_time: float,
    walks_per_page: int,
) -> Dict[str, float]:
    """All bake-off metrics for one engine contender (cached)."""
    if name not in _SPECS:
        raise ValueError(
            f"unknown engine contender {name!r}; pick from {ENGINE_CONTENDERS}"
        )

    def compute() -> Dict[str, float]:
        from repro.core.coordinator import run_distributed_pagerank

        t0 = time.perf_counter()
        res = run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            partition_strategy="site",
            transport="indirect",
            overlay="pastry",
            schedule="sync",
            t1=_PERIOD,
            t2=_PERIOD,
            sample_interval=_PERIOD,
            seed=seed,
            walks_per_page=walks_per_page,
            reference=reference,
            max_time=max_time,
            target_relative_error=target_relative_error,
            **_SPECS[name],
        )
        point: Dict[str, float] = {
            "rounds": float(res.max_outer_iterations),
            "converged": float(res.converged),
            "final_relative_error": float(res.final_relative_error),
            "messages": float(res.traffic.total_messages),
            "bytes": float(res.traffic.total_bytes),
            "wall_seconds": time.perf_counter() - t0,
        }
        if name == "mc":
            point["tolerance"] = mc_error_tolerance(
                reference, walks_per_page
            )
        return point

    return cached_point(
        "point/engine_bakeoff",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "engine": name,
            "n_groups": n_groups,
            "seed": seed,
            "target": target_relative_error,
            "max_time": max_time,
            "walks_per_page": walks_per_page,
            "period": _PERIOD,
        },
        compute,
    )


def run_engine_bakeoff(
    graph: WebGraph,
    *,
    n_groups: int = 16,
    engines: Sequence[str] = ENGINE_CONTENDERS,
    seed: int = 2003,
    target_relative_error: float = 1e-4,
    max_time: float = 3000.0,
    walks_per_page: int = 16,
    reference: Optional[np.ndarray] = None,
) -> EngineBakeoffResult:
    """Run the bake-off over ``engines`` on one graph.

    All contenders share the centralized reference (computed once,
    cached when an artifact cache is active) and identical workload
    parameters; only the engine/algorithm pair varies.
    """
    if reference is None:
        from repro.experiments.workloads import reference_ranks

        reference = reference_ranks(graph)
    result = EngineBakeoffResult(
        n_pages=graph.n_pages,
        n_groups=n_groups,
        target_relative_error=target_relative_error,
        walks_per_page=walks_per_page,
    )
    for name in engines:
        result.points[name] = engine_bakeoff_point(
            graph,
            reference,
            name=name,
            n_groups=n_groups,
            seed=seed,
            target_relative_error=target_relative_error,
            max_time=max_time,
            walks_per_page=walks_per_page,
        )
    return result
