"""Figure 6: distributed PageRank converges to the centralized ranks.

Paper setup: K = 1000 page rankers running DPR1 on the contest
dataset; three configurations A (p=1, T1=0, T2=6), B (p=0.7, T1=0,
T2=6), C (p=0.7, T1=0, T2=15).  The relative error
``‖R − R*‖₁/‖R*‖₁`` is plotted against time and decays toward zero in
all three, slower with message loss and slower still with longer
waits.

Reproduction notes: K defaults to 64 (scaled down with the workload;
the qualitative ordering A ≺ B ≺ C is K-independent) and pages are
partitioned by URL hash so that every ranker owns pages even when
K exceeds the site count, as in the paper's K=1000 run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.reporting import format_series, format_table
from repro.core.coordinator import RunResult, run_distributed_pagerank
from repro.experiments.workloads import (
    DEFAULT_CONFIGS,
    ExperimentScale,
    default_graph,
    reference_ranks,
)
from repro.graph.webgraph import WebGraph
from repro.parallel.cache import array_fingerprint, cached_point

__all__ = ["Fig6Result", "run_fig6", "fig6_point"]


@dataclass
class Fig6Result:
    """Per-configuration relative-error time series."""

    n_groups: int
    results: Dict[str, RunResult] = field(default_factory=dict)

    def rates(self) -> Dict[str, float]:
        """Fitted geometric decay rate of each config's error curve.

        More negative = faster convergence; the paper's ordering
        A ≺ B ≺ C shows up as rate(A) ≤ rate(B) ≤ rate(C).
        """
        from repro.analysis.stats import estimate_convergence_rate

        return {
            label: estimate_convergence_rate(res.trace).rate
            for label, res in self.results.items()
        }

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """(config, initial error %, final error %, time to 1%) rows."""
        out = []
        for label, res in self.results.items():
            t1pct = res.trace.time_to_error(0.01)
            out.append(
                (
                    label,
                    100.0 * res.trace.relative_errors[0],
                    100.0 * res.trace.final_error(),
                    -1.0 if t1pct is None else t1pct,
                )
            )
        return out

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        from repro.analysis.viz import ascii_chart

        parts = [
            format_table(
                ["config", "initial err %", "final err %", "time to 1% err"],
                self.rows(),
                title=f"Fig 6 — relative error vs time (K={self.n_groups})",
            )
        ]
        series = {
            label: (100.0 * res.trace.as_arrays()["relative_error"]).tolist()
            for label, res in self.results.items()
        }
        parts.append(
            ascii_chart(
                series,
                title="relative error % vs time",
                y_label="err %",
            )
        )
        for label, res in self.results.items():
            arrays = res.trace.as_arrays()
            parts.append(
                format_series(
                    f"series {label}",
                    arrays["time"].tolist(),
                    (100.0 * arrays["relative_error"]).tolist(),
                    x_label="time",
                    y_label="relative error %",
                )
            )
        return "\n\n".join(parts)


def fig6_point(
    graph: WebGraph,
    reference,
    *,
    p: float,
    t1: float,
    t2: float,
    n_groups: int,
    max_time: float,
    seed: int,
    algorithm: str,
    engine: str,
    schedule: str,
) -> RunResult:
    """One Fig 6 configuration: a single independent seeded run.

    This is the sweep-point unit the parallel harness distributes;
    :func:`run_fig6` executes the same points serially.  Results are
    memoized through the active artifact cache.
    """

    def compute() -> RunResult:
        return run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            algorithm=algorithm,
            partition_strategy="url",
            delivery_prob=p,
            t1=t1,
            t2=t2,
            seed=seed,
            # Flat engine: None resolves to the sync period (its trace
            # is per-round; finer sampling is event-engine only).
            sample_interval=1.0 if engine == "event" else None,
            reference=reference,
            max_time=max_time,
            engine=engine,
            schedule=schedule,
        )

    return cached_point(
        "point/fig6",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "p": p,
            "t1": t1,
            "t2": t2,
            "n_groups": n_groups,
            "max_time": max_time,
            "seed": seed,
            "algorithm": algorithm,
            "engine": engine,
            "schedule": schedule,
        },
        compute,
    )


def run_fig6(
    graph: WebGraph = None,
    *,
    n_groups: int = 64,
    max_time: float = 90.0,
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 7,
    algorithm: str = "dpr1",
    configs: Dict[str, Tuple[float, float, float]] = None,
    engine: str = "event",
    schedule: str = "async",
) -> Fig6Result:
    """Run the Fig 6 experiment; see module docstring.

    Each labelled configuration is an independent simulation on the
    same graph/partition against the same centralized reference.
    ``engine="flat"`` runs the vectorized bulk-synchronous engine
    (much faster at scale; synchronous timing instead of the paper's
    exponential waits).
    """
    if graph is None:
        graph = default_graph(scale)
    if configs is None:
        configs = DEFAULT_CONFIGS
    reference = reference_ranks(graph)
    result = Fig6Result(n_groups=n_groups)
    for label, (p, t1, t2) in configs.items():
        result.results[label] = fig6_point(
            graph,
            reference,
            p=p,
            t1=t1,
            t2=t2,
            n_groups=n_groups,
            max_time=max_time,
            seed=seed,
            algorithm=algorithm,
            engine=engine,
            schedule=schedule,
        )
    return result
