"""Figure 7: DPR1's rank sequence is monotone (Theorems 4.1/4.2).

Paper setup: K = 100 rankers, DPR1, the same A/B/C configurations as
Fig 6.  The *average* rank rises monotonically from 0 and plateaus at
about 0.3 — not 1.0 — because most links in the dataset point outside
the crawl, so rank leaks out of the open system (8M of 15M links
external ⇒ heavy leak).

The experiment also verifies monotonicity per sample (the empirical
content of Theorems 4.1 and 4.2: monotone and bounded by the
centralized fixed point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.reporting import format_series, format_table
from repro.core.convergence import is_monotone_nondecreasing
from repro.core.coordinator import RunResult, run_distributed_pagerank
from repro.experiments.workloads import (
    DEFAULT_CONFIGS,
    ExperimentScale,
    default_graph,
    reference_ranks,
)
from repro.graph.webgraph import WebGraph
from repro.parallel.cache import array_fingerprint, cached_point

__all__ = ["Fig7Result", "run_fig7", "fig7_point", "fig7_summary"]


@dataclass
class Fig7Result:
    """Per-configuration mean-rank time series plus monotonicity flags."""

    n_groups: int
    results: Dict[str, RunResult] = field(default_factory=dict)
    monotone: Dict[str, bool] = field(default_factory=dict)
    plateau: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, bool, float, float]]:
        """Raw result rows (one tuple per table line)."""
        return [
            (
                label,
                self.monotone[label],
                self.plateau[label],
                float(self.results[label].reference.mean()),
            )
            for label in self.results
        ]

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        from repro.analysis.viz import ascii_chart

        parts = [
            format_table(
                ["config", "monotone", "final mean rank", "centralized mean"],
                self.rows(),
                title=f"Fig 7 — average rank vs time, DPR1 (K={self.n_groups})",
            ),
            ascii_chart(
                {
                    label: res.trace.mean_ranks
                    for label, res in self.results.items()
                },
                title="average rank vs time (monotone, Thm 4.1)",
                y_label="rank",
            ),
        ]
        for label, res in self.results.items():
            arrays = res.trace.as_arrays()
            parts.append(
                format_series(
                    f"series {label}",
                    arrays["time"].tolist(),
                    arrays["mean_rank"].tolist(),
                    x_label="time",
                    y_label="average rank",
                )
            )
        return "\n\n".join(parts)


def fig7_point(
    graph: WebGraph,
    reference,
    *,
    p: float,
    t1: float,
    t2: float,
    n_groups: int,
    max_time: float,
    seed: int,
    engine: str,
    schedule: str,
) -> RunResult:
    """One Fig 7 configuration (DPR1); the parallelizable sweep unit."""

    def compute() -> RunResult:
        return run_distributed_pagerank(
            graph,
            n_groups=n_groups,
            algorithm="dpr1",
            partition_strategy="url",
            delivery_prob=p,
            t1=t1,
            t2=t2,
            seed=seed,
            # Flat engine: None resolves to the sync period (its trace
            # is per-round; finer sampling is event-engine only).
            sample_interval=1.0 if engine == "event" else None,
            reference=reference,
            max_time=max_time,
            engine=engine,
            schedule=schedule,
        )

    return cached_point(
        "point/fig7",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "p": p,
            "t1": t1,
            "t2": t2,
            "n_groups": n_groups,
            "max_time": max_time,
            "seed": seed,
            "engine": engine,
            "schedule": schedule,
        },
        compute,
    )


def fig7_summary(res: RunResult) -> Tuple[bool, float]:
    """(monotone?, plateau) summary of one configuration's trace."""
    return (
        is_monotone_nondecreasing(res.trace.mean_ranks, tol=1e-9),
        res.trace.mean_ranks[-1],
    )


def run_fig7(
    graph: WebGraph = None,
    *,
    n_groups: int = 100,
    max_time: float = 90.0,
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 11,
    configs: Dict[str, Tuple[float, float, float]] = None,
    engine: str = "event",
    schedule: str = "async",
) -> Fig7Result:
    """Run the Fig 7 experiment (DPR1 monotonicity; K=100 as published).

    ``engine="flat"`` selects the vectorized bulk-synchronous engine.
    """
    if graph is None:
        graph = default_graph(scale)
    if configs is None:
        configs = DEFAULT_CONFIGS
    reference = reference_ranks(graph)
    result = Fig7Result(n_groups=n_groups)
    for label, (p, t1, t2) in configs.items():
        res = fig7_point(
            graph,
            reference,
            p=p,
            t1=t1,
            t2=t2,
            n_groups=n_groups,
            max_time=max_time,
            seed=seed,
            engine=engine,
            schedule=schedule,
        )
        result.results[label] = res
        result.monotone[label], result.plateau[label] = fig7_summary(res)
    return result
