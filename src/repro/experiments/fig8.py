"""Figure 8: iterations-to-converge vs number of page rankers.

Paper setup: p = 1, T1 = T2 = 15; threshold relative error 0.01%;
K swept over {2, 10, 100, 1000, 10000}; three algorithms — DPR1,
DPR2, and centralized PageRank (CPR).  Published findings:

* DPR1 converges in fewer (outer) iterations than DPR2;
* DPR1 needs fewer iteration steps than even CPR (its inner loops do
  extra sweeps per step, so each outer step is "worth more");
* the number of page rankers barely affects convergence speed.

Iteration accounting: for DPR1/DPR2 we report the *mean* outer-loop
count over rankers at the moment the global relative error first met
the threshold; for CPR, Jacobi sweeps from R0 = 0 until the same
threshold.  (The mean is the right analogue of the paper's counter:
under exponential waits with a common mean, every ranker performs the
same expected loops per unit time, whereas the max over K rankers
grows like extreme-value statistics in K and would mask the paper's
K-insensitivity finding.)  The K sweep defaults to {2, 10, 100, 256} — the largest
published points are out of pure-Python range at full fidelity, and
the claim under test (K-insensitivity) is already visible across two
orders of magnitude.

Pages are partitioned by site hash — the strategy the paper
recommends and evidently used: DPR1's advantage over CPR ("DPR1 even
need fewer iteration steps than the centralized page ranking") only
materializes when groups contain substantial internal link structure
for the inner GroupPageRank solve to exploit, which is exactly what
site-granularity placement provides (~90% of links intra-site).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.coordinator import run_distributed_pagerank
from repro.core.pagerank import iterations_to_relative_error
from repro.experiments.workloads import ExperimentScale, default_graph, reference_ranks
from repro.graph.webgraph import WebGraph
from repro.parallel.cache import array_fingerprint, cached_point

__all__ = ["Fig8Result", "run_fig8", "fig8_point", "fig8_cpr_point"]


@dataclass
class Fig8Result:
    """Iterations-to-converge per (algorithm, K)."""

    threshold: float
    cpr_iterations: int = 0
    #: algorithm -> {K -> iterations}; -1 marks a run that missed the
    #: threshold within its time budget.
    iterations: Dict[str, Dict[int, int]] = field(default_factory=dict)

    def rows(self) -> List[Tuple[int, int, int, int]]:
        """Raw result rows (one tuple per table line)."""
        ks = sorted(
            set(self.iterations.get("dpr1", {})) | set(self.iterations.get("dpr2", {}))
        )
        return [
            (
                k,
                self.iterations.get("dpr1", {}).get(k, -1),
                self.iterations.get("dpr2", {}).get(k, -1),
                self.cpr_iterations,
            )
            for k in ks
        ]

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        return format_table(
            ["# page rankers", "DPR1", "DPR2", "CPR"],
            self.rows(),
            title=(
                f"Fig 8 — iterations to relative error ≤ {self.threshold:.2%} "
                "(p=1, T1=T2=15)"
            ),
        )


def fig8_point(
    graph: WebGraph,
    reference,
    *,
    algorithm: str,
    k: int,
    threshold: float,
    wait_mean: float,
    max_time: float,
    seed: int,
    engine: str,
    schedule: str,
) -> int:
    """One (algorithm, K) sweep point: mean outer loops at threshold.

    Returns -1 for runs that missed the threshold in their budget.
    This is the unit of work the parallel harness distributes.
    """

    def compute() -> int:
        res = run_distributed_pagerank(
            graph,
            n_groups=int(k),
            algorithm=algorithm,
            partition_strategy="site",
            delivery_prob=1.0,
            t1=wait_mean,
            t2=wait_mean,
            seed=seed,
            # Flat engine: None resolves to the sync period (its
            # trace is per-round; finer sampling is event-only).
            sample_interval=wait_mean / 3.0 if engine == "event" else None,
            reference=reference,
            max_time=max_time,
            target_relative_error=threshold,
            engine=engine,
            schedule=schedule,
        )
        return (
            int(round(res.trace.mean_outer_iterations[-1])) if res.converged else -1
        )

    return cached_point(
        "point/fig8",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "algorithm": algorithm,
            "k": int(k),
            "threshold": threshold,
            "wait_mean": wait_mean,
            "max_time": max_time,
            "seed": seed,
            "engine": engine,
            "schedule": schedule,
        },
        compute,
    )


def fig8_cpr_point(graph: WebGraph, reference, threshold: float) -> int:
    """The CPR baseline: Jacobi sweeps from R0=0 to the threshold."""
    return cached_point(
        "point/fig8_cpr",
        {
            "graph": graph.fingerprint(),
            "reference": array_fingerprint(reference),
            "threshold": threshold,
        },
        lambda: iterations_to_relative_error(graph, reference, threshold),
    )


def run_fig8(
    graph: WebGraph = None,
    *,
    ks: Sequence[int] = (2, 10, 100, 256),
    threshold: float = 1e-4,
    wait_mean: float = 15.0,
    max_time: float = 4000.0,
    scale: ExperimentScale = ExperimentScale(),
    seed: int = 13,
    engine: str = "event",
    schedule: str = "async",
) -> Fig8Result:
    """Run the Fig 8 sweep; see module docstring.

    ``engine="flat"`` (with ``schedule="sync"``) selects the
    vectorized bulk-synchronous engine, which makes the large-K
    points of the sweep dramatically cheaper.
    """
    if graph is None:
        graph = default_graph(scale)
    reference = reference_ranks(graph)
    result = Fig8Result(threshold=threshold)
    result.cpr_iterations = fig8_cpr_point(graph, reference, threshold)
    result.iterations = {"dpr1": {}, "dpr2": {}}
    for algorithm in ("dpr1", "dpr2"):
        for k in ks:
            result.iterations[algorithm][int(k)] = fig8_point(
                graph,
                reference,
                algorithm=algorithm,
                k=int(k),
                threshold=threshold,
                wait_mean=wait_mean,
                max_time=max_time,
                seed=seed,
                engine=engine,
                schedule=schedule,
            )
    return result
