"""Partitioner bake-off: every placement strategy over one graph.

The paper commits to hash-by-site placement from first principles
(§4.1) and never measures the alternatives; Suzuki–Ishii (PAPERS.md)
shows the clustering choice dominates communication cost.  This
experiment runs the full contender set — the paper baseline
(``site``), both rejected strategies (``url``, ``random``), the
rendezvous and contiguous extensions, and the greedy min-cut streamer
(``ldg``) — over *identical* graphs and reports, per strategy:

* cut links and cut fraction (the per-iteration payload, §4.4's ``W``);
* imbalance (max/mean pages per ranker) and split sites (violations
  of the paper's locality assumption);
* per-round bytes, twice: the §4.4 closed-form estimate and the flat
  engine's measured calibration round;
* rounds to the target relative error against the centralized
  reference (convergence is partition-dependent through the
  inner/outer solve split).

Every per-strategy point routes through the artifact cache
(:func:`repro.parallel.cache.cached_point`), so re-running the
bake-off with a warm cache reproduces the table byte-identically
without touching the engine.  The experiment works unchanged on
memory-mapped graphs (cut statistics, LDG, and the engine's operator
build all stream CSR chunks), which is what makes the 1e7-page smoke
configuration feasible — at that scale pass ``measure_rank=False`` to
keep the bake-off to cut statistics and round-traffic estimates.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.graph.partition import make_partition
from repro.graph.stats import partition_cut_statistics
from repro.graph.webgraph import WebGraph
from repro.parallel.cache import array_fingerprint, cached_point

__all__ = [
    "BAKEOFF_STRATEGIES",
    "PartitionBakeoffResult",
    "partition_bakeoff_point",
    "run_partition_bakeoff",
]

#: The contender set: paper baseline (site), the paper's rejected
#: alternatives (url, random), the repo's stability extension
#: (rendezvous), the didactic splitter (contiguous), and the greedy
#: min-cut streamer (ldg).
BAKEOFF_STRATEGIES: Tuple[str, ...] = (
    "site",
    "url",
    "rendezvous",
    "random",
    "contiguous",
    "ldg",
)

#: Common tick period of the bake-off's convergence runs.
_PERIOD = 6.0


@dataclass
class PartitionBakeoffResult:
    """One bake-off table: per-strategy placement and traffic metrics."""

    n_pages: int
    n_groups: int
    target_relative_error: float
    measure_rank: bool
    points: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Tuple]:
        """Raw result rows (one tuple per table line)."""
        out = []
        for strategy, p in self.points.items():
            row = [
                strategy,
                int(p["n_cut_links"]),
                p["cut_fraction"],
                p["imbalance"],
                int(p["n_split_sites"]),
                p["round_bytes_paper"],
                p.get("round_bytes_measured", float("nan")),
                int(p["rounds_to_target"]) if p.get("rounds_to_target", -1) >= 0 else "-",
            ]
            out.append(tuple(row))
        return out

    def format(self) -> str:
        """Paper-shaped text table of this result."""
        title = (
            f"partitioner bake-off (n={self.n_pages}, K={self.n_groups}, "
            f"ε={self.target_relative_error:g}"
            + ("" if self.measure_rank else ", cut-only")
            + ")"
        )
        return format_table(
            [
                "strategy",
                "cut links",
                "cut frac",
                "imbalance",
                "split sites",
                "bytes/round (4.x)",
                "bytes/round (meas)",
                "rounds to ε",
            ],
            self.rows(),
            title=title,
        )


def partition_bakeoff_point(
    graph: WebGraph,
    reference: Optional[np.ndarray],
    *,
    strategy: str,
    n_groups: int,
    seed: int,
    target_relative_error: float,
    max_time: float,
    measure_rank: bool,
) -> Dict[str, float]:
    """All bake-off metrics for one strategy (cached)."""

    def compute() -> Dict[str, float]:
        t0 = time.perf_counter()
        with warnings.catch_warnings():
            # Split sites are a *column* here, not console noise.
            warnings.simplefilter("ignore", UserWarning)
            part = make_partition(graph, n_groups, strategy, seed=seed)
        point: Dict[str, float] = {
            "partition_seconds": time.perf_counter() - t0,
        }
        point.update(partition_cut_statistics(graph, part).as_dict())

        from repro.core.coordinator import DistributedConfig
        from repro.core.engine import SynchronousEngine

        config = DistributedConfig(
            n_groups=n_groups,
            algorithm="dpr1",
            partition_strategy=strategy,
            transport="indirect",
            overlay="pastry",
            schedule="sync",
            engine="flat",
            t1=_PERIOD,
            t2=_PERIOD,
            sample_interval=_PERIOD,
            seed=seed,
        )
        ref = (
            reference
            if reference is not None
            else np.full(graph.n_pages, 1.0 / max(graph.n_pages, 1))
        )
        engine = SynchronousEngine(graph, config, partition=part, reference=ref)
        paper = engine.paper_round_estimate()
        point["round_bytes_paper"] = float(paper["data_bytes"])
        point["round_messages_paper"] = float(paper["data_messages"])
        round_snap = engine.calibrated_round_traffic()
        point["round_bytes_measured"] = float(round_snap.total_bytes)
        point["round_messages_measured"] = float(round_snap.total_messages)
        if measure_rank:
            res = engine.run(
                max_time=max_time,
                target_relative_error=target_relative_error,
            )
            point["rounds_to_target"] = (
                float(res.max_outer_iterations) if res.converged else -1.0
            )
            point["converged"] = float(res.converged)
            point["final_relative_error"] = float(res.final_relative_error)
            point["run_bytes_total"] = float(res.traffic.total_bytes)
        else:
            point["rounds_to_target"] = -1.0
        return point

    return cached_point(
        "point/partition_bakeoff",
        {
            "graph": graph.fingerprint(),
            "reference": None if reference is None else array_fingerprint(reference),
            "strategy": strategy,
            "n_groups": n_groups,
            "seed": seed,
            "target": target_relative_error,
            "max_time": max_time,
            "measure_rank": measure_rank,
            "period": _PERIOD,
        },
        compute,
    )


def run_partition_bakeoff(
    graph: WebGraph,
    *,
    n_groups: int = 16,
    strategies: Sequence[str] = BAKEOFF_STRATEGIES,
    seed: int = 2003,
    target_relative_error: float = 1e-4,
    max_time: float = 3000.0,
    measure_rank: bool = True,
) -> PartitionBakeoffResult:
    """Run the bake-off over ``strategies`` on one graph.

    With ``measure_rank`` (default) each strategy also runs the flat
    engine to ``target_relative_error`` against the centralized
    reference — the rounds-to-ε column.  Disable it at smoke scales
    (1e7 pages) where the centralized solve is the bottleneck; the
    cut/traffic columns remain exact.
    """
    reference = None
    if measure_rank:
        from repro.experiments.workloads import reference_ranks

        reference = reference_ranks(graph)
    result = PartitionBakeoffResult(
        n_pages=graph.n_pages,
        n_groups=n_groups,
        target_relative_error=target_relative_error,
        measure_rank=measure_rank,
    )
    for strategy in strategies:
        result.points[strategy] = partition_bakeoff_point(
            graph,
            reference,
            strategy=strategy,
            n_groups=n_groups,
            seed=seed,
            target_relative_error=target_relative_error,
            max_time=max_time,
            measure_rank=measure_rank,
        )
    return result
