"""One-shot reproduction report.

:func:`run_all` executes every experiment in the suite — the four
paper artifacts plus the ablations — and assembles a single text
report (optionally writing each table to a directory).  This is the
programmatic equivalent of running the full benchmark suite, intended
for ``python -m repro all`` and for users who want the complete
paper-vs-measured story in one call.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.ablations import (
    run_compression_ablation,
    run_overlay_hops,
    run_partitioning_ablation,
    run_time_vs_bandwidth,
    run_transport_comparison,
)
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.table1 import run_table1
from repro.experiments.workloads import ExperimentScale, default_graph

__all__ = ["ReproductionReport", "run_all", "EXPERIMENTS"]

#: Experiment registry: name -> callable(graph, scale) -> result object.
EXPERIMENTS = (
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "partitioning",
    "transport",
    "compression",
    "overlay_hops",
    "tradeoff",
)


@dataclass
class ReproductionReport:
    """Results and formatted tables of a full reproduction run."""

    scale: ExperimentScale
    results: Dict[str, object] = field(default_factory=dict)
    sections: Dict[str, str] = field(default_factory=dict)
    durations: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        """The whole report as one text document."""
        header = (
            "Reproduction report — Distributed Page Ranking in Structured "
            "P2P Networks (ICPP 2003)\n"
            f"workload: {self.scale.n_pages} pages / {self.scale.n_sites} sites "
            f"(seed {self.scale.seed})\n"
        )
        parts = [header]
        for name in self.sections:
            parts.append(
                f"{'=' * 70}\n[{name}]  ({self.durations.get(name, 0.0):.1f}s)\n"
            )
            parts.append(self.sections[name])
        return "\n".join(parts)

    def save(self, directory: Union[str, os.PathLike]) -> None:
        """Write one ``<name>.txt`` per experiment plus ``report.txt``."""
        os.makedirs(directory, exist_ok=True)
        for name, text in self.sections.items():
            with open(os.path.join(directory, f"{name}.txt"), "w") as fh:
                fh.write(text + "\n")
        with open(os.path.join(directory, "report.txt"), "w") as fh:
            fh.write(self.format() + "\n")


def run_all(
    *,
    scale: ExperimentScale = ExperimentScale(),
    only: Optional[Sequence[str]] = None,
    out_dir: Optional[Union[str, os.PathLike]] = None,
    fig8_ks: Sequence[int] = (2, 10, 100, 256),
    table1_ns: Sequence[int] = (1_000, 10_000, 100_000),
) -> ReproductionReport:
    """Run the (selected) experiment suite on one shared workload.

    Parameters
    ----------
    scale:
        Workload size; one graph is generated and shared by every
        graph-based experiment so results are comparable.
    only:
        Subset of :data:`EXPERIMENTS` names to run (default: all).
    out_dir:
        When given, tables are written there as they complete.
    """
    selected = list(EXPERIMENTS if only is None else only)
    unknown = set(selected) - set(EXPERIMENTS)
    if unknown:
        raise ValueError(f"unknown experiments: {sorted(unknown)}")

    graph = default_graph(scale)
    report = ReproductionReport(scale=scale)

    runners = {
        "table1": lambda: run_table1(ns=table1_ns),
        "fig6": lambda: run_fig6(graph, n_groups=64, max_time=90.0),
        "fig7": lambda: run_fig7(graph, n_groups=100, max_time=90.0),
        "fig8": lambda: run_fig8(graph, ks=fig8_ks),
        "partitioning": lambda: run_partitioning_ablation(graph, n_groups=16),
        "transport": lambda: run_transport_comparison(graph, n_groups=48),
        "compression": lambda: run_compression_ablation(graph, n_groups=16),
        "overlay_hops": lambda: run_overlay_hops(ns=(100, 1_000, 10_000)),
        "tradeoff": lambda: run_time_vs_bandwidth(graph, n_groups=16),
    }
    for name in selected:
        t0 = time.time()
        result = runners[name]()
        report.durations[name] = time.time() - t0
        report.results[name] = result
        report.sections[name] = result.format()
        if out_dir is not None:
            report.save(out_dir)
    return report
