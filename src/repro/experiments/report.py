"""One-shot reproduction report.

:func:`run_all` executes every experiment in the suite — the four
paper artifacts plus the ablations — and assembles a single text
report (optionally writing each table to a directory).  This is the
programmatic equivalent of running the full benchmark suite, intended
for ``python -m repro all`` and for users who want the complete
paper-vs-measured story in one call.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.workloads import ExperimentScale

__all__ = ["ReproductionReport", "run_all", "EXPERIMENTS"]

#: Experiment registry: name -> callable(graph, scale) -> result object.
EXPERIMENTS = (
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "partitioning",
    "transport",
    "compression",
    "overlay_hops",
    "tradeoff",
)


@dataclass
class ReproductionReport:
    """Results and formatted tables of a full reproduction run."""

    scale: ExperimentScale
    results: Dict[str, object] = field(default_factory=dict)
    sections: Dict[str, str] = field(default_factory=dict)
    durations: Dict[str, float] = field(default_factory=dict)
    #: Per-experiment task compute seconds (plan order); durations[name]
    #: is their sum, so serial/parallel reports stay comparable.
    task_durations: Dict[str, List[float]] = field(default_factory=dict)

    def format(self) -> str:
        """The whole report as one text document."""
        header = (
            "Reproduction report — Distributed Page Ranking in Structured "
            "P2P Networks (ICPP 2003)\n"
            f"workload: {self.scale.n_pages} pages / {self.scale.n_sites} sites "
            f"(seed {self.scale.seed})\n"
        )
        parts = [header]
        for name in self.sections:
            parts.append(
                f"{'=' * 70}\n[{name}]  ({self.durations.get(name, 0.0):.1f}s)\n"
            )
            parts.append(self.sections[name])
        return "\n".join(parts)

    def save(self, directory: Union[str, os.PathLike]) -> None:
        """Write one ``<name>.txt`` per experiment plus ``report.txt``."""
        os.makedirs(directory, exist_ok=True)
        for name, text in self.sections.items():
            with open(os.path.join(directory, f"{name}.txt"), "w") as fh:
                fh.write(text + "\n")
        with open(os.path.join(directory, "report.txt"), "w") as fh:
            fh.write(self.format() + "\n")


def run_all(
    *,
    scale: ExperimentScale = ExperimentScale(),
    only: Optional[Sequence[str]] = None,
    out_dir: Optional[Union[str, os.PathLike]] = None,
    fig8_ks: Sequence[int] = (2, 10, 100, 256),
    table1_ns: Optional[Sequence[int]] = None,
    overlay_ns: Optional[Sequence[int]] = None,
    jobs: int = 1,
    cache=None,
) -> ReproductionReport:
    """Run the (selected) experiment suite on one shared workload.

    Parameters
    ----------
    scale:
        Workload size; one graph is generated and shared by every
        graph-based experiment so results are comparable.  The Table 1
        and overlay-hops size grids scale with it (``sweep_grid``)
        unless overridden via ``table1_ns`` / ``overlay_ns``.
    only:
        Subset of :data:`EXPERIMENTS` names to run (default: all).
    out_dir:
        When given, tables are written there after the suite runs.
    jobs:
        Worker processes for the sweep.  1 (the default) runs every
        sweep point inline in plan order; N > 1 scatters them over a
        process pool with the graph handed off through shared memory.
        Results are bit-identical for every value.
    cache:
        An :class:`repro.parallel.ArtifactCache` to memoize graphs,
        reference vectors and sweep-point results through (default:
        whatever cache is already active, usually none).
    """
    from repro.parallel.cache import activate
    from repro.parallel.executor import run_suite

    selected = list(EXPERIMENTS if only is None else only)
    unknown = set(selected) - set(EXPERIMENTS)
    if unknown:
        raise ValueError(f"unknown experiments: {sorted(unknown)}")

    ctx = activate(cache) if cache is not None else contextlib.nullcontext()
    with ctx:
        results, durations, task_durations = run_suite(
            selected,
            scale=scale,
            jobs=jobs,
            fig8_ks=fig8_ks,
            table1_ns=table1_ns,
            overlay_ns=overlay_ns,
        )

    report = ReproductionReport(scale=scale)
    for name in selected:
        report.results[name] = results[name]
        report.sections[name] = results[name].format()
        report.durations[name] = durations[name]
        report.task_durations[name] = task_durations[name]
    if out_dir is not None:
        report.save(out_dir)
    return report
