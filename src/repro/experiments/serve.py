"""Serving-tier demo: incremental re-ranking + indexed queries under load.

Drives the full serving stack (:mod:`repro.serve`) with a seeded mixed
workload — a crawler advancing over a churning :class:`TrueWeb`, its
observations diffed into mutation batches by :class:`CrawlFeed`, and a
query mix (top-k / rank-of / percentile) fired between batches — and
reports, per sync phase:

* batch composition (new pages, link edits) and the maintenance
  response (dirty/touched groups, solve mode, inner sweeps);
* re-rank wall-clock vs the cold baseline (a from-scratch
  :class:`IncrementalRanker` solve of the same snapshot);
* the certified staleness bound vs the configured ε budget, and the
  *measured* relative L1 error against a fresh centralized solve of
  the current snapshot (the certificate must dominate it);
* query latency percentiles for the indexed path and the mean
  full-vector-scan latency it replaces.

Every phase routes through the artifact cache
(:func:`repro.parallel.cache.cached_point`); wall-clock is measured
inside the compute closure, so warm-cache reruns reproduce the table
byte-identically.  CLI: ``python -m repro serve``; the CI-gated
numbers at 1e5 pages live in ``benchmarks/bench_serve.py`` →
``BENCH_serve.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.parallel.cache import cached_point

__all__ = ["ServeDemoResult", "serve_demo_point", "run_serve_demo"]


def _percentile_us(samples_s: List[float], q: float) -> float:
    """Nearest-rank percentile of latency samples, in microseconds."""
    if not samples_s:
        return 0.0
    ordered = sorted(samples_s)
    k = max(1, int(np.ceil(q / 100.0 * len(ordered))))
    return ordered[k - 1] * 1e6


def run_query_mix(
    server,
    n_queries: int,
    rng: np.random.Generator,
    *,
    top_k: int = 10,
) -> Tuple[List[float], List[float]]:
    """Fire a seeded 60/30/10 top-k / rank-of / percentile mix.

    Returns ``(indexed latencies, scan latencies)`` in seconds; the
    scan path answers one in every 32 top-k queries with the O(n log n)
    full-vector sort for the latency comparison column.
    """
    kinds = rng.choice(3, size=n_queries, p=[0.6, 0.3, 0.1])
    pages = rng.integers(0, max(server.n_pages, 1), size=n_queries)
    qs = rng.uniform(0.0, 100.0, size=n_queries)
    indexed: List[float] = []
    scans: List[float] = []
    for i in range(n_queries):
        kind = int(kinds[i])
        t0 = time.perf_counter()
        if kind == 0:
            server.top_k(top_k)
        elif kind == 1:
            server.rank_of(int(pages[i]))
        else:
            server.percentile(float(qs[i]))
        indexed.append(time.perf_counter() - t0)
        if kind == 0 and i % 32 == 0:
            t0 = time.perf_counter()
            server.scan_top_k(top_k)
            scans.append(time.perf_counter() - t0)
    return indexed, scans


@dataclass
class ServeDemoResult:
    """Per-phase serving metrics plus the cold-baseline summary."""

    n_groups: int
    epsilon: float
    phases: List[Dict[str, float]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)

    def within_budget(self) -> bool:
        """True when every phase's certified staleness fits ε."""
        return all(p["staleness"] <= self.epsilon for p in self.phases)

    def rows(self) -> List[Tuple]:
        """Raw result rows (one tuple per table line)."""
        return [
            (
                int(p["phase"]),
                int(p["n_pages"]),
                int(p["batch_mutations"]),
                f"{int(p['dirty_groups'])}/{self.n_groups}",
                p["mode"],
                int(p["inner_sweeps"]),
                f"{p['rerank_ms']:.1f}",
                f"{p['staleness']:.2e}",
                f"{p['measured_error']:.2e}",
                f"{p['query_p50_us']:.0f}",
                f"{p['query_p99_us']:.0f}",
                f"{p['scan_mean_us']:.0f}",
            )
            for p in self.phases
        ]

    def format(self) -> str:
        """Paper-shaped text table of this result."""
        table = format_table(
            [
                "phase",
                "pages",
                "batch",
                "dirty",
                "mode",
                "sweeps",
                "rerank ms",
                "certified",
                "measured",
                "q p50 µs",
                "q p99 µs",
                "scan µs",
            ],
            self.rows(),
            title=(
                f"serving tier under load (K={self.n_groups}, "
                f"ε={self.epsilon:g})"
            ),
        )
        s = self.summary
        budget = "within ε budget" if self.within_budget() else "ε BUDGET EXCEEDED"
        table += (
            f"\ncold full re-solve: {s['cold_ms']:.1f} ms; mean incremental: "
            f"{s['incremental_mean_ms']:.1f} ms ({s['speedup']:.1f}x); "
            f"indexed query speedup over scan: {s['query_speedup']:.1f}x; "
            f"{budget}"
        )
        return table


def serve_demo_point(
    *,
    web_pages: int,
    web_sites: int,
    crawl_pages: int,
    n_groups: int,
    epsilon: float,
    phases: int,
    churn_per_phase: int,
    crawl_budget: int,
    queries_per_phase: int,
    seed: int,
) -> Dict[str, object]:
    """All serving-demo metrics for one workload (cached)."""

    def compute() -> Dict[str, object]:
        from repro.core.pagerank import pagerank_open
        from repro.crawl.crawler import Crawler
        from repro.crawl.trueweb import TrueWeb
        from repro.linalg.norms import relative_l1_error
        from repro.serve import CrawlFeed, IncrementalRanker, RankServer

        web = TrueWeb(web_pages, web_sites, seed=seed)
        crawler = Crawler(web, seeds=[0, web_pages // 2], seed=seed + 1)
        crawler.crawl_until(crawl_pages)
        feed = CrawlFeed(crawler)
        server = RankServer(
            feed.initial_graph(), n_groups=n_groups, epsilon=epsilon
        )
        rng = np.random.default_rng(seed + 2)

        rows: List[Dict[str, float]] = []
        for phase in range(phases):
            web.churn(churn_per_phase, seed=seed + 10 + phase)
            crawler.step(crawl_budget)
            batch = feed.sync()
            t0 = time.perf_counter()
            stats = server.apply(batch)
            rerank_s = time.perf_counter() - t0
            snapshot = server.ranker.current_graph()
            reference = pagerank_open(snapshot, tol=1e-12).ranks
            measured = relative_l1_error(server.ranker.ranks, reference)
            indexed, scans = run_query_mix(server, queries_per_phase, rng)
            rows.append(
                {
                    "phase": float(phase),
                    "n_pages": float(server.n_pages),
                    "batch_mutations": float(len(batch)),
                    "dirty_groups": float(stats.dirty_groups),
                    "mode": stats.mode,
                    "inner_sweeps": float(stats.inner_sweeps),
                    "rerank_ms": rerank_s * 1e3,
                    "staleness": server.staleness(),
                    "measured_error": measured,
                    "query_p50_us": _percentile_us(indexed, 50.0),
                    "query_p99_us": _percentile_us(indexed, 99.0),
                    "scan_mean_us": (
                        float(np.mean(scans)) * 1e6 if scans else 0.0
                    ),
                }
            )

        # Cold baseline: rank the final snapshot from scratch with the
        # same kernels and budget the incremental path maintained.
        final = server.ranker.current_graph()
        t0 = time.perf_counter()
        IncrementalRanker(final, n_groups=n_groups, epsilon=epsilon)
        cold_s = time.perf_counter() - t0
        incr_ms = [r["rerank_ms"] for r in rows]
        scan_means = [r["scan_mean_us"] for r in rows if r["scan_mean_us"]]
        p50s = [r["query_p50_us"] for r in rows if r["query_p50_us"]]
        summary = {
            "cold_ms": cold_s * 1e3,
            "incremental_mean_ms": float(np.mean(incr_ms)),
            "speedup": cold_s * 1e3 / max(float(np.mean(incr_ms)), 1e-9),
            "query_speedup": (
                float(np.mean(scan_means)) / max(float(np.mean(p50s)), 1e-9)
                if scan_means and p50s
                else 0.0
            ),
        }
        return {"phases": rows, "summary": summary}

    return cached_point(
        "point/serve",
        {
            "web_pages": web_pages,
            "web_sites": web_sites,
            "crawl_pages": crawl_pages,
            "n_groups": n_groups,
            "epsilon": epsilon,
            "phases": phases,
            "churn_per_phase": churn_per_phase,
            "crawl_budget": crawl_budget,
            "queries_per_phase": queries_per_phase,
            "seed": seed,
        },
        compute,
    )


def run_serve_demo(
    *,
    web_pages: int = 3000,
    web_sites: int = 60,
    crawl_pages: int = 1200,
    n_groups: int = 8,
    epsilon: float = 1e-3,
    phases: int = 4,
    churn_per_phase: int = 80,
    crawl_budget: int = 200,
    queries_per_phase: int = 400,
    seed: int = 2003,
) -> ServeDemoResult:
    """Run the serving-tier demo workload; see module docstring."""
    if phases < 1:
        raise ValueError("phases must be >= 1")
    point = serve_demo_point(
        web_pages=web_pages,
        web_sites=web_sites,
        crawl_pages=crawl_pages,
        n_groups=n_groups,
        epsilon=epsilon,
        phases=phases,
        churn_per_phase=churn_per_phase,
        crawl_budget=crawl_budget,
        queries_per_phase=queries_per_phase,
        seed=seed,
    )
    return ServeDemoResult(
        n_groups=n_groups,
        epsilon=epsilon,
        phases=point["phases"],
        summary=point["summary"],
    )
