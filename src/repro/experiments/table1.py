"""Table 1: minimum iteration interval and node bottleneck bandwidth.

The paper's Table 1 is analytic: with W = 3·10⁹ pages, l = 100 B per
record, and 1% of the US backbone bisection (100 MB/s), the bisection
constraint (4.6) gives the minimum time T between iterations, and the
per-node constraint (4.7) the minimum node bandwidth, for N = 10³ /
10⁴ / 10⁵ rankers using Pastry's mean hop counts.

Published row values: T = 7500 s / 10500 s / 12000 s and B = 100 KB/s
/ 10 KB/s / 1 KB/s.

This reproduction evaluates the same formulas twice — once with the
paper's quoted hop counts, once with hop counts *measured* from this
repository's own Pastry implementation — so the bench shows both the
exact published numbers and the end-to-end derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.cost_model import CostModel, PASTRY_HOPS_BY_N, table1_rows
from repro.analysis.reporting import format_table
from repro.overlay.metrics import hop_statistics
from repro.overlay.pastry import PastryOverlay
from repro.parallel.cache import cached_point

__all__ = ["Table1Result", "run_table1", "table1_hops_point", "assemble_table1"]


@dataclass
class Table1Result:
    """Paper-vs-measured Table 1."""

    paper_rows: List[Dict[str, float]] = field(default_factory=list)
    measured_rows: List[Dict[str, float]] = field(default_factory=list)
    measured_hops: Dict[int, float] = field(default_factory=dict)

    def rows(self) -> List[Tuple[int, float, float, float, float, float, float]]:
        """Raw result rows (one tuple per table line)."""
        out = []
        for pr, mr in zip(self.paper_rows, self.measured_rows):
            out.append(
                (
                    int(pr["n_rankers"]),
                    pr["hops"],
                    mr["hops"],
                    pr["min_iteration_interval_s"],
                    mr["min_iteration_interval_s"],
                    pr["min_node_bandwidth_Bps"],
                    mr["min_node_bandwidth_Bps"],
                )
            )
        return out

    def format(self) -> str:
        """Paper-shaped text table(s) of this result."""
        return format_table(
            [
                "# rankers",
                "h (paper)",
                "h (measured)",
                "T paper (s)",
                "T measured (s)",
                "B paper (B/s)",
                "B measured (B/s)",
            ],
            self.rows(),
            title="Table 1 — min iteration interval & node bottleneck bandwidth",
        )


def table1_hops_point(n: int, *, hop_samples: int, seed: int) -> float:
    """Measured mean Pastry hop count at overlay size ``n``.

    Building a 10⁵-node Pastry overlay dominates Table 1's cost, so
    each size is its own parallelizable (and cacheable) task.
    """
    return cached_point(
        "point/table1_hops",
        {"overlay": "pastry", "n": int(n), "hop_samples": hop_samples, "seed": seed},
        lambda: hop_statistics(
            PastryOverlay(int(n), seed=seed), hop_samples, seed=seed
        ).mean,
    )


def assemble_table1(
    ns: Sequence[int], hops: Sequence[float], *, model: CostModel = None
) -> Table1Result:
    """Build the paper-vs-measured table from per-size hop counts."""
    model = model if model is not None else CostModel()
    measured_hops = {int(n): float(h) for n, h in zip(ns, hops)}
    paper_hops = {int(n): PASTRY_HOPS_BY_N.get(int(n), measured_hops[int(n)]) for n in ns}
    return Table1Result(
        paper_rows=table1_rows(paper_hops, model=model),
        measured_rows=table1_rows(measured_hops, model=model),
        measured_hops=measured_hops,
    )


def run_table1(
    *,
    ns: Sequence[int] = (1_000, 10_000, 100_000),
    hop_samples: int = 400,
    seed: int = 17,
    model: CostModel = None,
) -> Table1Result:
    """Evaluate Table 1 with paper hops and measured Pastry hops."""
    hops = [table1_hops_point(int(n), hop_samples=hop_samples, seed=seed) for n in ns]
    return assemble_table1(ns, hops, model=model)
