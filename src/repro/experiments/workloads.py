"""Shared workload construction for the experiment suite.

The paper's dataset (Google programming-contest crawl) is modelled by
:func:`~repro.graph.generators.google_contest_like`; this module pins
the generator parameters to the paper's reported statistics and
provides the three (p, T1, T2) configurations labelled A/B/C in
Figs 6–7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.graph.generators import google_contest_like
from repro.graph.webgraph import WebGraph

__all__ = ["ExperimentScale", "default_graph", "DEFAULT_CONFIGS"]


@dataclass(frozen=True)
class ExperimentScale:
    """Workload size knobs, defaulting to a laptop-friendly scale.

    The paper's experiments use ~1M pages / 100 sites.  The statistics
    the figures depend on (convergence shape, monotonicity,
    K-insensitivity) are scale-free; ``n_pages`` here trades wall time
    for fidelity of absolute magnitudes only.
    """

    n_pages: int = 4000
    n_sites: int = 100
    seed: int = 2003  # the paper's year, for flavour

    def scaled(self, factor: float) -> "ExperimentScale":
        """A proportionally larger/smaller workload."""
        return ExperimentScale(
            n_pages=max(100, int(self.n_pages * factor)),
            n_sites=self.n_sites,
            seed=self.seed,
        )


def default_graph(scale: ExperimentScale = ExperimentScale()) -> WebGraph:
    """The contest-like graph all figure experiments run on.

    Parameters pinned to the paper's dataset statistics: mean
    out-degree 15, 7/15 of links internal, ~90% of internal links
    intra-site.
    """
    return google_contest_like(
        n_pages=scale.n_pages,
        n_sites=min(scale.n_sites, scale.n_pages),
        mean_out_degree=15.0,
        internal_link_fraction=7.0 / 15.0,
        intra_site_fraction=0.9,
        seed=scale.seed,
    )


#: The paper's three experiment configurations (Figs 6 and 7):
#: label -> (delivery probability p, T1, T2).
DEFAULT_CONFIGS: Dict[str, Tuple[float, float, float]] = {
    "A": (1.0, 0.0, 6.0),
    "B": (0.7, 0.0, 6.0),
    "C": (0.7, 0.0, 15.0),
}
