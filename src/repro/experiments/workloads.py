"""Shared workload construction for the experiment suite.

The paper's dataset (Google programming-contest crawl) is modelled by
:func:`~repro.graph.generators.google_contest_like`; this module pins
the generator parameters to the paper's reported statistics and
provides the three (p, T1, T2) configurations labelled A/B/C in
Figs 6–7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.graph.generators import google_contest_like
from repro.graph.webgraph import WebGraph

__all__ = [
    "ExperimentScale",
    "default_graph",
    "reference_ranks",
    "DEFAULT_CONFIGS",
]

#: Reference n_pages at which sweep grids equal their published
#: defaults (the pre-harness hard-coded values).
_BASELINE_PAGES = 4000


@dataclass(frozen=True)
class ExperimentScale:
    """Workload size knobs, defaulting to a laptop-friendly scale.

    The paper's experiments use ~1M pages / 100 sites.  The statistics
    the figures depend on (convergence shape, monotonicity,
    K-insensitivity) are scale-free; ``n_pages`` here trades wall time
    for fidelity of absolute magnitudes only.
    """

    n_pages: int = 4000
    n_sites: int = 100
    seed: int = 2003  # the paper's year, for flavour

    def scaled(self, factor: float) -> "ExperimentScale":
        """A proportionally larger/smaller workload."""
        return ExperimentScale(
            n_pages=max(100, int(self.n_pages * factor)),
            n_sites=self.n_sites,
            seed=self.seed,
        )

    def sweep_grid(
        self, base: Sequence[int], *, minimum: int = 16
    ) -> Tuple[int, ...]:
        """Scale an overlay/ranker size grid with the workload.

        ``base`` is the grid used at the default 4000-page scale; a
        smaller workload shrinks it proportionally (clamped to
        ``minimum``, deduplicated, order preserved) so a small-scale
        smoke run really is small.  At the default scale the grid is
        returned unchanged.
        """
        factor = self.n_pages / _BASELINE_PAGES
        out = []
        for b in base:
            v = max(int(minimum), int(round(b * factor)))
            if v not in out:
                out.append(v)
        return tuple(out)


def default_graph(scale: ExperimentScale = ExperimentScale()) -> WebGraph:
    """The contest-like graph all figure experiments run on.

    Parameters pinned to the paper's dataset statistics: mean
    out-degree 15, 7/15 of links internal, ~90% of internal links
    intra-site.  When an artifact cache is active the generated graph
    is stored/retrieved by its generator parameters; generation is
    deterministic, so a hit is bit-identical to regeneration.
    """
    from repro.parallel.cache import active_cache, cache_key

    params = dict(
        generator="google_contest_like",
        n_pages=scale.n_pages,
        n_sites=min(scale.n_sites, scale.n_pages),
        mean_out_degree=15.0,
        internal_link_fraction=7.0 / 15.0,
        intra_site_fraction=0.9,
        seed=scale.seed,
    )
    cache = active_cache()
    if cache is not None:
        key = cache_key("webgraph", params)
        hit = cache.load_graph(key)
        if hit is not None:
            return hit
    params.pop("generator")
    graph = google_contest_like(**params)
    if cache is not None:
        cache.store_graph(key, graph)
    return graph


def reference_ranks(graph: WebGraph, *, tol: Optional[float] = None) -> np.ndarray:
    """Centralized reference PageRank ``R*`` for ``graph``.

    Every experiment measures against this fixed point; routing the
    computation through here lets an active artifact cache compute it
    once per (graph, tolerance) instead of once per experiment.  With
    no active cache this is exactly ``pagerank_open(graph).ranks``.
    """
    from repro.core.pagerank import pagerank_open
    from repro.parallel.cache import active_cache, cache_key

    kwargs = {} if tol is None else {"tol": float(tol)}
    cache = active_cache()
    if cache is None:
        return pagerank_open(graph, **kwargs).ranks
    key = cache_key(
        "reference",
        {
            "graph": graph.fingerprint(),
            "solver": "pagerank_open",
            "alpha": 0.85,
            "tol": "default" if tol is None else float(tol),
            "dangling": "leak",
        },
    )
    hit = cache.load_arrays(key)
    if hit is not None:
        return hit["ranks"]
    ranks = pagerank_open(graph, **kwargs).ranks
    cache.store_arrays(key, ranks=ranks)
    return ranks


#: The paper's three experiment configurations (Figs 6 and 7):
#: label -> (delivery probability p, T1, T2).
DEFAULT_CONFIGS: Dict[str, Tuple[float, float, float]] = {
    "A": (1.0, 0.0, 6.0),
    "B": (0.7, 0.0, 6.0),
    "C": (0.7, 0.0, 15.0),
}
