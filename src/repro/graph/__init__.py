"""Web link-graph substrate.

The paper's experiments run on a crawl of ~1M pages from 100 ``edu``
sites (the Google programming-contest dataset).  That dataset is not
redistributable, so this package provides:

* :class:`~repro.graph.webgraph.WebGraph` — an immutable CSR link graph
  that models *open systems*: pages carry a count of out-links that
  leave the crawl entirely (the paper's dataset has 8M of 15M links
  pointing outside), and every page belongs to a *site*.
* :mod:`~repro.graph.generators` — synthetic generators, most notably
  :func:`~repro.graph.generators.google_contest_like`, matched to the
  aggregate statistics the paper reports.
* :mod:`~repro.graph.partition` — the three partitioning strategies of
  paper §4.1 (random, hash-by-URL, hash-by-site) plus the rendezvous,
  contiguous, and greedy-min-cut (LDG) extensions.
* :mod:`~repro.graph.stats` — structural statistics (degree
  distributions, intra-site link fraction, partition cut metrics).
* :mod:`~repro.graph.io` — persistence: a compressed ``.npz`` archive
  and a memory-mappable ``.npy`` directory format for out-of-core
  graphs (see DESIGN.md §12).
"""

from repro.graph.webgraph import WebGraph
from repro.graph.generators import (
    google_contest_like,
    erdos_renyi_web,
    ring_web,
    star_web,
    complete_web,
    two_site_web,
    powerlaw_cluster_web,
)
from repro.graph.partition import (
    Partition,
    partition_random,
    partition_by_url_hash,
    partition_by_site_hash,
    partition_rendezvous,
    partition_contiguous,
    partition_ldg,
    count_split_sites,
    make_partition,
)
from repro.graph.stats import (
    degree_statistics,
    intra_site_link_fraction,
    internal_link_fraction,
    partition_cut_statistics,
    GraphSummary,
    summarize,
)
from repro.graph.io import (
    save_webgraph,
    load_webgraph,
    WebGraphDirWriter,
    backing_memmap,
)
from repro.graph.datasets import paper_dataset, load_snap_edge_list
from repro.graph.validation import check_webgraph, WebGraphInvariantError

__all__ = [
    "WebGraph",
    "google_contest_like",
    "erdos_renyi_web",
    "ring_web",
    "star_web",
    "complete_web",
    "two_site_web",
    "powerlaw_cluster_web",
    "Partition",
    "partition_random",
    "partition_by_url_hash",
    "partition_by_site_hash",
    "partition_rendezvous",
    "partition_contiguous",
    "partition_ldg",
    "count_split_sites",
    "make_partition",
    "degree_statistics",
    "intra_site_link_fraction",
    "internal_link_fraction",
    "partition_cut_statistics",
    "GraphSummary",
    "summarize",
    "save_webgraph",
    "load_webgraph",
    "WebGraphDirWriter",
    "backing_memmap",
    "paper_dataset",
    "load_snap_edge_list",
    "check_webgraph",
    "WebGraphInvariantError",
]
