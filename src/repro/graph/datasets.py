"""Dataset construction and external-format loading.

Two entry points:

* :func:`paper_dataset` — the synthetic stand-in for the Google
  programming-contest crawl the paper evaluates on, at a configurable
  scale (the paper's full size is ``scale=1.0`` ⇒ ~1M pages).
* :func:`load_snap_edge_list` — loader for the SNAP plain-text edge
  format (``# comment`` lines, then one ``src<TAB>dst`` pair per
  line), so users with a real crawl such as ``web-Google.txt`` can run
  every experiment on it.  Sites are inferred by a configurable page
  -> site mapping since SNAP files carry no hostnames.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Union

import numpy as np

from repro.graph.generators import google_contest_like
from repro.graph.webgraph import WebGraph
from repro.utils.rng import RngLike

__all__ = ["paper_dataset", "load_snap_edge_list", "PAPER_FULL_PAGES", "PAPER_FULL_SITES"]

#: The published dataset size: ~1M pages from 100 edu sites.
PAPER_FULL_PAGES = 1_000_000
PAPER_FULL_SITES = 100


def paper_dataset(scale: float = 0.01, *, seed: RngLike = 2003) -> WebGraph:
    """The experiments' dataset at a fraction of the published size.

    ``scale=1.0`` reproduces the full ~1M-page / 100-site crawl shape
    (needs a few GB of RAM and patience); the default 1% keeps every
    statistic (15 links/page, 7/15 internal, 90% intra-site) while
    running interactively.
    """
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    n_pages = max(200, int(PAPER_FULL_PAGES * scale))
    return google_contest_like(
        n_pages=n_pages,
        n_sites=PAPER_FULL_SITES,
        mean_out_degree=15.0,
        internal_link_fraction=7.0 / 15.0,
        intra_site_fraction=0.9,
        seed=seed,
    )


def load_snap_edge_list(
    path: Union[str, os.PathLike],
    *,
    n_sites: int = 1,
    site_of_page: Optional[Callable[[int], int]] = None,
    external_links_per_page: float = 0.0,
    seed: RngLike = 0,
) -> WebGraph:
    """Load a SNAP-format directed edge list as a :class:`WebGraph`.

    Node ids are compacted to ``0..n-1`` preserving first-appearance
    order.  Because SNAP dumps carry no URL/host information:

    * sites default to a round-robin assignment over ``n_sites``
      (override with ``site_of_page`` for a real mapping);
    * external links (absent from such dumps) can be synthesized at a
      Poisson rate per page to restore open-system behaviour.
    """
    srcs: list = []
    dsts: list = []
    remap: dict = {}

    def intern(raw: int) -> int:
        idx = remap.get(raw)
        if idx is None:
            idx = len(remap)
            remap[raw] = idx
        return idx

    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            srcs.append(intern(int(parts[0])))
            dsts.append(intern(int(parts[1])))
    n = len(remap)
    if site_of_page is not None:
        site_of = np.fromiter(
            (site_of_page(p) for p in range(n)), dtype=np.int64, count=n
        )
    else:
        site_of = np.arange(n, dtype=np.int64) % max(n_sites, 1)
    if external_links_per_page > 0:
        from repro.utils.rng import as_generator

        rng = as_generator(seed)
        external = rng.poisson(external_links_per_page, size=n)
    else:
        external = np.zeros(n, dtype=np.int64)
    return WebGraph(n, srcs, dsts, site_of=site_of, external_out=external)
