"""Synthetic web-graph generators.

The paper evaluates on the Google programming-contest dataset: ~1M
HTML pages from 100 ``edu`` sites, ~15M total links of which only ~7M
point at pages inside the dataset.  The dataset is not redistributable,
so :func:`google_contest_like` synthesizes graphs matched to those
aggregate statistics:

* configurable page/site counts, power-law site sizes;
* heavy-tailed out-degrees with a configurable mean (paper: ~15);
* a configurable fraction of link targets *outside* the crawl
  (paper: 8/15), which creates the open-system rank leak;
* of the internal links, a configurable fraction intra-site
  (paper cites [16]: ~90%), which is what makes hash-by-site
  partitioning cheap;
* Zipf-like target popularity inside each site, so rank mass is skewed
  like a real web graph.

Several tiny deterministic generators (ring, star, complete, two-site)
are provided for unit tests where exact PageRank values are known in
closed form.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.graph.webgraph import WebGraph
from repro.utils.rng import as_generator, RngLike
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "google_contest_like",
    "erdos_renyi_web",
    "ring_web",
    "star_web",
    "complete_web",
    "two_site_web",
    "powerlaw_cluster_web",
    "DEFAULT_CHUNK_PAGES",
]

#: Pages per block on the streaming generation path.  At the default
#: mean out-degree this bounds the working set of transient edge-block
#: arrays (sources, sites, Zipf draws, targets, scatter slots) near
#: 10 MB per chunk.
DEFAULT_CHUNK_PAGES = 1 << 16


def _zipf_indices(
    rng: np.random.Generator, n_draws: int, domain: np.ndarray, exponent: float
) -> np.ndarray:
    """Vectorized approximate-Zipf sampling.

    For each draw ``i`` return an integer in ``[0, domain[i])`` whose
    distribution follows weights ``(k+1)^(-exponent)``.  Uses the
    continuous inverse-CDF approximation of the discrete Zipf law,
    which is accurate enough for workload generation and is fully
    vectorized (no per-draw Python loop).
    """
    if n_draws == 0:
        return np.zeros(0, dtype=np.int64)
    m = domain.astype(np.float64)
    u = rng.random(n_draws)
    if abs(exponent - 1.0) < 1e-9:
        # CDF ~ log(k+1)/log(m+1)
        k = np.expm1(u * np.log1p(m))
    else:
        b = 1.0 - exponent
        k = np.power(u * (np.power(m + 1.0, b) - 1.0) + 1.0, 1.0 / b) - 1.0
    idx = np.floor(k).astype(np.int64)
    return np.clip(idx, 0, domain - 1)


def _release_written(writer, lo: int, hi: int) -> None:
    """Flush a just-written range of a dir writer's indices memmap and
    hand its pages back to the OS, keeping streamed builds' resident
    set at one chunk.  No-op for in-memory builds (``writer is None``);
    data is safe because ``flush`` makes the pages clean before
    ``MADV_DONTNEED`` drops them (later reads repopulate from the
    file).
    """
    if writer is None:
        return
    from repro.graph.io import madvise_dontneed

    writer.indices.flush()
    madvise_dontneed(writer.indices, lo, hi)


def _edge_slots(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """CSR write positions: ``counts[i]`` consecutive slots at ``starts[i]``.

    Lets a streaming generator scatter one block of edges into its
    final CSR location (leaving gaps for edges of a later phase)
    without ever sorting a global edge list.
    """
    total = int(counts.sum())
    first = np.cumsum(counts) - counts
    ramp = np.arange(total, dtype=np.int64) - np.repeat(first, counts)
    return np.repeat(starts, counts) + ramp


def google_contest_like(
    n_pages: int = 10_000,
    n_sites: int = 100,
    *,
    mean_out_degree: float = 15.0,
    internal_link_fraction: float = 7.0 / 15.0,
    intra_site_fraction: float = 0.9,
    degree_sigma: float = 1.0,
    site_size_exponent: float = 0.9,
    popularity_exponent: float = 0.8,
    seed: RngLike = 0,
    out: Optional[Union[str, os.PathLike]] = None,
    chunk_pages: Optional[int] = None,
) -> WebGraph:
    """Generate a web graph with the paper dataset's aggregate shape.

    Parameters
    ----------
    n_pages, n_sites:
        Crawl size.  The paper's dataset is ~1M pages / 100 sites; the
        default is scaled down for interactive use — all statistics are
        scale-free.
    mean_out_degree:
        Mean number of out-links per page, counting links that leave
        the crawl (paper: 15M links / 1M pages = 15).
    internal_link_fraction:
        Probability that a link's target is inside the crawl
        (paper: 7M/15M).  The remainder becomes ``external_out``.
    intra_site_fraction:
        Of internal links, the fraction targeting the same site
        (paper cites ~90%).
    degree_sigma:
        Log-normal sigma of the out-degree distribution (heavier tail
        with larger sigma).
    site_size_exponent:
        Zipf exponent of site sizes (0 = equal-size sites).
    popularity_exponent:
        Zipf exponent of within-site target popularity (0 = uniform).
    seed:
        Seed or generator for reproducibility.
    out:
        Stream the graph into this ``.npy``-directory path (see
        :mod:`repro.graph.io`) and return the memory-mapped load.
        Selects the out-of-core build, which never materializes a
        global edge list — peak memory is O(n_pages) plus one edge
        block, not O(n_links).
    chunk_pages:
        Pages per streamed edge block.  Setting it without ``out``
        runs the chunked build into an in-memory indices array (useful
        to bound transient memory, and how the tests prove the two
        paths bit-identical).  Default
        :data:`DEFAULT_CHUNK_PAGES` when ``out`` is given, else the
        eager path.

    The streamed and eager paths draw from the RNG in exactly the same
    sequence, so for equal parameters they produce *bit-identical*
    graphs (asserted in ``tests/test_outofcore.py``).

    Returns
    -------
    WebGraph
    """
    if n_pages <= 0:
        raise ValueError("n_pages must be positive")
    if not 1 <= n_sites <= n_pages:
        raise ValueError("need 1 <= n_sites <= n_pages")
    check_positive(mean_out_degree, "mean_out_degree")
    check_probability(internal_link_fraction, "internal_link_fraction")
    check_probability(intra_site_fraction, "intra_site_fraction")
    rng = as_generator(seed)

    # --- site sizes: Zipf weights, at least one page per site ---------
    weights = np.power(np.arange(1, n_sites + 1, dtype=np.float64), -site_size_exponent)
    weights /= weights.sum()
    sizes = np.maximum(1, np.floor(weights * n_pages).astype(np.int64))
    # Fix rounding drift by adjusting the largest sites.
    drift = n_pages - int(sizes.sum())
    i = 0
    while drift != 0:
        step = 1 if drift > 0 else -1
        if sizes[i % n_sites] + step >= 1:
            sizes[i % n_sites] += step
            drift -= step
        i += 1
    site_start = np.zeros(n_sites, dtype=np.int64)
    np.cumsum(sizes[:-1], out=site_start[1:])
    site_of = np.repeat(np.arange(n_sites, dtype=np.int64), sizes)
    site_names = tuple(f"www.site{i:04d}.edu" for i in range(n_sites))

    if out is not None or chunk_pages is not None:
        return _google_contest_streamed(
            n_pages,
            n_sites,
            rng,
            sizes=sizes,
            site_start=site_start,
            site_of=site_of,
            site_names=site_names,
            mean_out_degree=mean_out_degree,
            internal_link_fraction=internal_link_fraction,
            intra_site_fraction=intra_site_fraction,
            degree_sigma=degree_sigma,
            popularity_exponent=popularity_exponent,
            out=out,
            chunk_pages=chunk_pages or DEFAULT_CHUNK_PAGES,
        )

    # --- out-degrees: log-normal with the requested mean --------------
    mu = np.log(mean_out_degree) - 0.5 * degree_sigma**2
    degrees = np.floor(rng.lognormal(mu, degree_sigma, size=n_pages)).astype(np.int64)
    degrees = np.clip(degrees, 0, max(1, n_pages // 2))

    # --- split each page's links into external / intra / inter --------
    n_ext = rng.binomial(degrees, 1.0 - internal_link_fraction)
    n_int = degrees - n_ext
    n_intra = rng.binomial(n_int, intra_site_fraction)
    n_inter = n_int - n_intra
    if n_sites == 1:
        # No other site exists: inter-site links fold into intra-site.
        n_intra = n_intra + n_inter
        n_inter = np.zeros_like(n_inter)

    # --- intra-site links ---------------------------------------------
    intra_src = np.repeat(np.arange(n_pages, dtype=np.int64), n_intra)
    src_site = site_of[intra_src]
    dom = sizes[src_site]
    local = _zipf_indices(rng, intra_src.size, dom, popularity_exponent)
    intra_dst = site_start[src_site] + local
    # Retarget self-loops deterministically to the next page in-site
    # (single-page sites keep the loop; it's harmless to PageRank).
    loops = intra_dst == intra_src
    if loops.any():
        fix = (local[loops] + 1) % dom[loops]
        intra_dst[loops] = site_start[src_site[loops]] + fix

    # --- inter-site links ----------------------------------------------
    inter_src = np.repeat(np.arange(n_pages, dtype=np.int64), n_inter)
    if inter_src.size:
        site_w = sizes.astype(np.float64)
        site_w /= site_w.sum()
        tgt_site = rng.choice(n_sites, size=inter_src.size, p=site_w)
        # Resample collisions with the source's own site a few times;
        # leftovers are shifted to the next site (keeps vectorization).
        own = site_of[inter_src]
        for _ in range(4):
            bad = tgt_site == own
            if not bad.any():
                break
            tgt_site[bad] = rng.choice(n_sites, size=int(bad.sum()), p=site_w)
        still = tgt_site == own
        tgt_site[still] = (tgt_site[still] + 1) % n_sites
        local = _zipf_indices(rng, inter_src.size, sizes[tgt_site], popularity_exponent)
        inter_dst = site_start[tgt_site] + local
    else:
        inter_dst = np.zeros(0, dtype=np.int64)

    src = np.concatenate([intra_src, inter_src])
    dst = np.concatenate([intra_dst, inter_dst])
    return WebGraph(
        n_pages, src, dst, site_of=site_of, external_out=n_ext, site_names=site_names
    )


def _google_contest_streamed(
    n_pages: int,
    n_sites: int,
    rng: np.random.Generator,
    *,
    sizes: np.ndarray,
    site_start: np.ndarray,
    site_of: np.ndarray,
    site_names: tuple,
    mean_out_degree: float,
    internal_link_fraction: float,
    intra_site_fraction: float,
    degree_sigma: float,
    popularity_exponent: float,
    out: Optional[Union[str, os.PathLike]],
    chunk_pages: int,
) -> WebGraph:
    """Out-of-core build of :func:`google_contest_like`.

    Draws from ``rng`` in exactly the eager path's sequence, so the
    result is bit-identical for equal parameters:

    * per-page arrays (degrees, external/intra splits) use the same
      single vectorized calls;
    * intra-site targets are generated in page-order blocks — numpy's
      ``Generator.random`` consumes the bitstream sequentially, so N
      blocked draws equal one draw of size N;
    * inter-site targets stay a single global phase: the collision
      resample loop keys off the *global* ``bad`` pattern, which no
      blocked schedule can reproduce.  Inter links are ~
      ``(1-intra_site_fraction)`` of internal links (paper: 10%), so
      this phase is small compared to the intra stream.

    The eager path stable-sorts ``concat([intra, inter])`` by source,
    which lands each page's intra targets (in draw order) before its
    inter targets — exactly the layout the blocked scatter writes via
    :func:`_edge_slots`, leaving per-page gaps for the inter phase.
    """
    if chunk_pages < 1:
        raise ValueError("chunk_pages must be >= 1")

    mu = np.log(mean_out_degree) - 0.5 * degree_sigma**2
    degrees = np.floor(rng.lognormal(mu, degree_sigma, size=n_pages)).astype(np.int64)
    degrees = np.clip(degrees, 0, max(1, n_pages // 2))
    n_ext = rng.binomial(degrees, 1.0 - internal_link_fraction)
    n_int = degrees - n_ext
    n_intra = rng.binomial(n_int, intra_site_fraction)
    n_inter = n_int - n_intra
    if n_sites == 1:
        n_intra = n_intra + n_inter
        n_inter = np.zeros_like(n_inter)
    # Only the split counts matter from here on; at 10M pages each
    # retired int64 array is 80 MB of peak RSS.
    del degrees, n_int

    indptr = np.zeros(n_pages + 1, dtype=np.int64)
    np.cumsum(n_intra + n_inter, out=indptr[1:])
    total = int(indptr[-1])

    writer = None
    if out is not None:
        from repro.graph.io import WebGraphDirWriter

        writer = WebGraphDirWriter(
            out,
            indptr=indptr,
            site_of=site_of,
            external_out=n_ext,
            site_names=site_names,
        )
        indices = writer.indices
    else:
        indices = np.empty(total, dtype=np.int64)

    try:
        # --- intra-site links, one page block at a time ----------------
        for p0 in range(0, n_pages, chunk_pages):
            p1 = min(p0 + chunk_pages, n_pages)
            cnt = n_intra[p0:p1]
            m = int(cnt.sum())
            if m == 0:
                continue
            src = np.repeat(np.arange(p0, p1, dtype=np.int64), cnt)
            src_site = site_of[src]
            dom = sizes[src_site]
            local = _zipf_indices(rng, m, dom, popularity_exponent)
            dst = site_start[src_site] + local
            loops = dst == src
            if loops.any():
                fix = (local[loops] + 1) % dom[loops]
                dst[loops] = site_start[src_site[loops]] + fix
            indices[_edge_slots(indptr[p0:p1], cnt)] = dst
            _release_written(writer, int(indptr[p0]), int(indptr[p1]))
            del src, src_site, dom, local, dst, loops

        # --- inter-site links: drawn in one global phase (the target
        # resampling consumes RNG state data-dependently, so chunked
        # draws would change the bitstream), written chunk by chunk ---
        if int(n_inter.sum()):
            inter_src = np.repeat(np.arange(n_pages, dtype=np.int64), n_inter)
            site_w = sizes.astype(np.float64)
            site_w /= site_w.sum()
            tgt_site = rng.choice(n_sites, size=inter_src.size, p=site_w)
            own = site_of[inter_src]
            for _ in range(4):
                bad = tgt_site == own
                if not bad.any():
                    break
                tgt_site[bad] = rng.choice(n_sites, size=int(bad.sum()), p=site_w)
            still = tgt_site == own
            tgt_site[still] = (tgt_site[still] + 1) % n_sites
            local = _zipf_indices(rng, inter_src.size, sizes[tgt_site], popularity_exponent)
            inter_dst = site_start[tgt_site] + local
            del inter_src, tgt_site, own, local
            inter_off = np.zeros(n_pages + 1, dtype=np.int64)
            np.cumsum(n_inter, out=inter_off[1:])
            for p0 in range(0, n_pages, chunk_pages):
                p1 = min(p0 + chunk_pages, n_pages)
                lo, hi = int(inter_off[p0]), int(inter_off[p1])
                if hi > lo:
                    slots = _edge_slots(
                        indptr[p0:p1] + n_intra[p0:p1], n_inter[p0:p1]
                    )
                    indices[slots] = inter_dst[lo:hi]
                _release_written(writer, int(indptr[p0]), int(indptr[p1]))

        if writer is not None:
            return writer.finalize(mmap=True)
        return WebGraph.from_csr(
            n_pages,
            indptr,
            indices,
            site_of=site_of,
            external_out=n_ext,
            site_names=site_names,
            copy=False,
            validate=False,
        )
    except BaseException:
        if writer is not None:
            writer.abort()
        raise


def erdos_renyi_web(
    n_pages: int,
    mean_out_degree: float = 8.0,
    *,
    n_sites: int = 1,
    external_fraction: float = 0.0,
    seed: RngLike = 0,
    out: Optional[Union[str, os.PathLike]] = None,
    chunk_pages: Optional[int] = None,
) -> WebGraph:
    """Uniform random graph: each page gets ``Poisson(mean)`` uniform targets.

    ``out`` / ``chunk_pages`` select the streaming build (same contract
    as :func:`google_contest_like`): uniform targets are drawn in
    page-order blocks, which consumes the RNG bitstream exactly like
    the single global draw, so both paths are bit-identical.
    """
    check_positive(mean_out_degree, "mean_out_degree")
    check_probability(external_fraction, "external_fraction")
    rng = as_generator(seed)
    degrees = rng.poisson(mean_out_degree, size=n_pages)
    n_ext = rng.binomial(degrees, external_fraction)
    n_int = degrees - n_ext
    site_of = np.arange(n_pages, dtype=np.int64) % n_sites

    if out is None and chunk_pages is None:
        src = np.repeat(np.arange(n_pages, dtype=np.int64), n_int)
        dst = rng.integers(0, n_pages, size=src.size, dtype=np.int64)
        return WebGraph(n_pages, src, dst, site_of=site_of, external_out=n_ext)

    chunk_pages = chunk_pages or DEFAULT_CHUNK_PAGES
    if chunk_pages < 1:
        raise ValueError("chunk_pages must be >= 1")
    indptr = np.zeros(n_pages + 1, dtype=np.int64)
    np.cumsum(n_int, out=indptr[1:])
    writer = None
    if out is not None:
        from repro.graph.io import WebGraphDirWriter

        # Match the eager path's default naming, which covers only the
        # site ids actually present (n_pages can be < n_sites).
        n_named = int(site_of.max()) + 1 if n_pages else 0
        writer = WebGraphDirWriter(
            out, indptr=indptr, site_of=site_of, external_out=n_ext,
            site_names=tuple(f"site{i:04d}.example.edu" for i in range(n_named)),
        )
        indices = writer.indices
    else:
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
    try:
        for p0 in range(0, n_pages, chunk_pages):
            p1 = min(p0 + chunk_pages, n_pages)
            m = int(indptr[p1] - indptr[p0])
            if m:
                indices[indptr[p0] : indptr[p1]] = rng.integers(
                    0, n_pages, size=m, dtype=np.int64
                )
                _release_written(writer, int(indptr[p0]), int(indptr[p1]))
        if writer is not None:
            return writer.finalize(mmap=True)
        return WebGraph.from_csr(
            n_pages, indptr, indices, site_of=site_of, external_out=n_ext,
            copy=False, validate=False,
        )
    except BaseException:
        if writer is not None:
            writer.abort()
        raise


def ring_web(n_pages: int, *, n_sites: int = 1) -> WebGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``.

    Closed-system PageRank is exactly uniform on a ring, making this
    the canonical correctness fixture.
    """
    if n_pages < 1:
        raise ValueError("ring needs at least one page")
    src = np.arange(n_pages, dtype=np.int64)
    dst = (src + 1) % n_pages
    site_of = src % n_sites
    return WebGraph(n_pages, src, dst, site_of=site_of)


def star_web(n_leaves: int) -> WebGraph:
    """Page 0 is the hub; each leaf links to the hub and back.

    PageRank is known in closed form, exercising skewed-rank paths.
    """
    if n_leaves < 1:
        raise ValueError("star needs at least one leaf")
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    src = np.concatenate([leaves, np.zeros(n_leaves, dtype=np.int64)])
    dst = np.concatenate([np.zeros(n_leaves, dtype=np.int64), leaves])
    return WebGraph(n_leaves + 1, src, dst)


def complete_web(n_pages: int) -> WebGraph:
    """Complete directed graph (no self links); PageRank is uniform."""
    if n_pages < 2:
        raise ValueError("complete graph needs at least two pages")
    idx = np.arange(n_pages, dtype=np.int64)
    src = np.repeat(idx, n_pages - 1)
    dst = np.concatenate([np.delete(idx, i) for i in range(n_pages)])
    return WebGraph(n_pages, src, dst)


def two_site_web(
    pages_per_site: int = 8, cross_links: int = 1, *, seed: RngLike = 0
) -> WebGraph:
    """Two densely linked sites joined by a few cross-site links.

    The minimal fixture for partition-cut experiments: hash-by-site
    partitioning yields exactly ``cross_links`` cut edges whenever the
    sites land in different groups.
    """
    if pages_per_site < 2:
        raise ValueError("need at least 2 pages per site")
    rng = as_generator(seed)
    n = 2 * pages_per_site
    src_list = []
    dst_list = []
    for s in range(2):
        base = s * pages_per_site
        for i in range(pages_per_site):
            # Ring inside the site plus one chord for density.
            src_list.append(base + i)
            dst_list.append(base + (i + 1) % pages_per_site)
            src_list.append(base + i)
            dst_list.append(base + (i + 2) % pages_per_site)
    for _ in range(cross_links):
        u = int(rng.integers(0, pages_per_site))
        v = int(rng.integers(0, pages_per_site))
        src_list.append(u)
        dst_list.append(pages_per_site + v)
    site_of = np.repeat(np.arange(2, dtype=np.int64), pages_per_site)
    return WebGraph(
        n,
        np.asarray(src_list),
        np.asarray(dst_list),
        site_of=site_of,
        site_names=("alpha.example.edu", "beta.example.edu"),
    )


def powerlaw_cluster_web(
    n_pages: int,
    out_links: int = 5,
    *,
    n_sites: int = 1,
    seed: RngLike = 0,
) -> WebGraph:
    """Preferential-attachment graph (Barabási–Albert flavour).

    Each new page links to ``out_links`` existing pages chosen
    proportionally to their current in-degree (+1 smoothing).  Produces
    the power-law in-degree distribution typical of web graphs without
    the site structure of :func:`google_contest_like`.
    """
    if n_pages < 2:
        raise ValueError("need at least 2 pages")
    if out_links < 1:
        raise ValueError("out_links must be >= 1")
    rng = as_generator(seed)
    src_list: list = []
    dst_list: list = []
    # Repeated-nodes trick: sampling uniformly from the endpoint pool
    # approximates degree-proportional sampling in O(1) per edge.
    pool = [0]
    for v in range(1, n_pages):
        k = min(out_links, v)
        targets = set()
        while len(targets) < k:
            if rng.random() < 0.2 or not pool:
                targets.add(int(rng.integers(0, v)))
            else:
                targets.add(int(pool[int(rng.integers(0, len(pool)))]))
        for t in targets:
            src_list.append(v)
            dst_list.append(t)
            pool.append(t)
        pool.append(v)
    site_of = np.arange(n_pages, dtype=np.int64) % n_sites
    return WebGraph(
        n_pages,
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        site_of=site_of,
    )
