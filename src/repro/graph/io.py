"""Persistence for :class:`~repro.graph.webgraph.WebGraph`.

Graphs are stored as a single ``.npz`` archive holding the CSR arrays,
site assignment, external-link counts and site names.  The format is
versioned so future layouts can coexist.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.graph.webgraph import WebGraph

__all__ = ["save_webgraph", "load_webgraph", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_webgraph(graph: WebGraph, path: Union[str, os.PathLike]) -> None:
    """Serialize ``graph`` to ``path`` (``.npz``)."""
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        n_pages=np.int64(graph.n_pages),
        indptr=graph.indptr,
        indices=graph.indices,
        site_of=graph.site_of,
        external_out=graph.external_out,
        site_names=np.array(graph.site_names, dtype=object),
    )


def load_webgraph(path: Union[str, os.PathLike]) -> WebGraph:
    """Load a graph previously written by :func:`save_webgraph`."""
    with np.load(path, allow_pickle=True) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported webgraph format version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        n_pages = int(data["n_pages"])
        graph = WebGraph.from_csr(
            n_pages,
            data["indptr"],
            data["indices"],
            site_of=data["site_of"],
            external_out=data["external_out"],
            site_names=tuple(str(s) for s in data["site_names"]),
        )
    # Deserialized data is untrusted: verify structural invariants.
    from repro.graph.validation import check_webgraph

    check_webgraph(graph)
    return graph
