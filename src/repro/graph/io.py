"""Persistence for :class:`~repro.graph.webgraph.WebGraph`.

Two on-disk layouts are supported, selected by the path:

* ``*.npz`` — **format version 1**: a single compressed archive
  holding the CSR arrays, site assignment, external-link counts and
  site names.  Compact and convenient for small graphs, but loading
  decompresses every array into fresh memory.
* anything else — **format version 2**: an ``.npy`` directory::

      <path>/
        meta.json          (format marker, version, shapes, counts)
        indptr.npy         int64[n_pages + 1]
        indices.npy        int64[n_internal_links]
        site_of.npy        int64[n_pages]
        external_out.npy   int64[n_pages]
        site_names.json    list[str]

  Plain ``.npy`` files can be memory-mapped, so
  ``load_webgraph(path, mmap=True)`` returns a :class:`WebGraph` whose
  arrays are *read-only views into the files* — no copy, O(1) resident
  memory until pages are touched.  This is the layout the out-of-core
  pipeline builds into (:class:`WebGraphDirWriter` fills ``indices.npy``
  chunk by chunk while the generator streams edge blocks).

Both writers are atomic: content goes to a temporary file/directory in
the destination's parent and is renamed into place only when complete
(``meta.json`` is written last in the directory layout, so a crashed
writer can never leave a loadable-but-truncated graph).  Loading
rejects unknown format versions and corrupt/incomplete files with
pointed errors — mirroring :mod:`repro.parallel.cache` conventions.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.graph.webgraph import WebGraph

__all__ = [
    "save_webgraph",
    "load_webgraph",
    "WebGraphDirWriter",
    "FORMAT_VERSION",
    "DIR_FORMAT_VERSION",
    "backing_memmap",
    "madvise_dontneed",
]

#: Version of the single-file ``.npz`` layout.
FORMAT_VERSION = 1

#: Version of the ``.npy``-directory layout.
DIR_FORMAT_VERSION = 2

#: ``meta.json`` marker distinguishing webgraph directories from
#: arbitrary directories.
_DIR_FORMAT_NAME = "webgraph-dir"

_DIR_ARRAYS = ("indptr", "indices", "site_of", "external_out")


def _is_dir_path(path: Union[str, os.PathLike]) -> bool:
    """Directory layout for everything that is not a ``.npz`` file."""
    return not str(path).endswith(".npz")


# ----------------------------------------------------------------------
# npz layout (format 1)
# ----------------------------------------------------------------------
def _save_npz(graph: WebGraph, path: Union[str, os.PathLike]) -> None:
    path = str(path)
    parent = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp.npz")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(
                fh,
                version=np.int64(FORMAT_VERSION),
                n_pages=np.int64(graph.n_pages),
                indptr=np.ascontiguousarray(graph.indptr),
                indices=np.ascontiguousarray(graph.indices),
                site_of=np.ascontiguousarray(graph.site_of),
                external_out=np.ascontiguousarray(graph.external_out),
                site_names=np.array(graph.site_names, dtype=object),
            )
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _load_npz(path: Union[str, os.PathLike], mmap: bool) -> WebGraph:
    if mmap:
        raise ValueError(
            f"{path!s}: the .npz layout is compressed and cannot be "
            "memory-mapped; save the graph to a directory (any path "
            "without the .npz suffix) to use mmap=True"
        )
    try:
        data = np.load(path, allow_pickle=True)
    except Exception as exc:
        raise ValueError(f"{path!s}: not a readable webgraph archive ({exc})") from exc
    with data:
        try:
            version = int(data["version"])
        except KeyError:
            raise ValueError(
                f"{path!s}: missing format version (not a webgraph archive?)"
            ) from None
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported webgraph format version {version} "
                f"(this build reads .npz version {FORMAT_VERSION} and "
                f"directory version {DIR_FORMAT_VERSION})"
            )
        try:
            graph = WebGraph.from_csr(
                int(data["n_pages"]),
                data["indptr"],
                data["indices"],
                site_of=data["site_of"],
                external_out=data["external_out"],
                site_names=tuple(str(s) for s in data["site_names"]),
            )
        except KeyError as exc:
            raise ValueError(f"{path!s}: truncated webgraph archive ({exc})") from exc
    # Deserialized data is untrusted: verify structural invariants.
    from repro.graph.validation import check_webgraph

    check_webgraph(graph)
    return graph


# ----------------------------------------------------------------------
# npy-directory layout (format 2)
# ----------------------------------------------------------------------
class WebGraphDirWriter:
    """Incremental writer for the ``.npy``-directory layout.

    The out-of-core generators know every array except ``indices``
    up front (``indptr`` follows from the per-page degree draws), so
    the writer persists those immediately, opens ``indices.npy`` as a
    write-through memmap, and lets the caller fill it in blocks::

        writer = WebGraphDirWriter(path, indptr=indptr, site_of=...,
                                   external_out=..., site_names=...)
        for lo, hi, block in edge_blocks:
            writer.indices[start:stop] = block
        graph = writer.finalize(mmap=True)

    All content lives in a hidden temporary directory next to ``path``
    until :meth:`finalize` writes ``meta.json`` (the load-time marker)
    and renames the directory into place — so readers never observe a
    partially-filled graph.  :meth:`abort` (or garbage collection)
    removes the temporary directory.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        indptr: np.ndarray,
        site_of: np.ndarray,
        external_out: np.ndarray,
        site_names: Sequence[str],
    ):
        self.path = Path(path)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1:
            raise ValueError("indptr must be a non-empty 1-D array")
        self.n_pages = int(indptr.size - 1)
        self.n_indices = int(indptr[-1])
        self._tmp = Path(
            tempfile.mkdtemp(
                dir=self.path.parent if self.path.parent.name else ".",
                prefix=f".{self.path.name}.tmp",
            )
        )
        self._finalized = False
        np.save(self._tmp / "indptr.npy", indptr)
        np.save(
            self._tmp / "site_of.npy",
            np.ascontiguousarray(site_of, dtype=np.int64),
        )
        np.save(
            self._tmp / "external_out.npy",
            np.ascontiguousarray(external_out, dtype=np.int64),
        )
        with open(self._tmp / "site_names.json", "w", encoding="utf-8") as fh:
            json.dump([str(s) for s in site_names], fh)
        self._n_sites = len(site_names)
        #: Write-through destination for CSR target ids; fill every
        #: element in ``[0, n_indices)`` before :meth:`finalize`.
        self.indices: np.ndarray = np.lib.format.open_memmap(
            self._tmp / "indices.npy",
            mode="w+",
            dtype=np.int64,
            shape=(self.n_indices,),
        )

    def finalize(self, *, mmap: bool = True, validate: Optional[bool] = None) -> WebGraph:
        """Seal the directory and load the finished graph.

        Flushes ``indices.npy``, writes ``meta.json`` *last*, renames
        the temporary directory to the destination path (replacing an
        existing webgraph directory there), and returns
        ``load_webgraph(path, mmap=mmap)``.
        """
        if self._finalized:
            raise RuntimeError("writer already finalized")
        self.indices.flush()
        # Release the write mapping before renaming the directory.
        del self.indices
        meta = {
            "format": _DIR_FORMAT_NAME,
            "version": DIR_FORMAT_VERSION,
            "n_pages": self.n_pages,
            "n_indices": self.n_indices,
            "n_sites": self._n_sites,
        }
        with open(self._tmp / "meta.json", "w", encoding="utf-8") as fh:
            json.dump(meta, fh, indent=1)
        if self.path.exists():
            _check_replaceable(self.path)
            shutil.rmtree(self.path)
        os.replace(self._tmp, self.path)
        self._finalized = True
        return load_webgraph(self.path, mmap=mmap, validate=validate)

    def abort(self) -> None:
        """Discard the temporary directory (idempotent)."""
        if not self._finalized:
            with contextlib.suppress(AttributeError):
                del self.indices
            shutil.rmtree(self._tmp, ignore_errors=True)
            self._finalized = True

    def __del__(self):  # pragma: no cover - GC timing dependent
        with contextlib.suppress(Exception):
            self.abort()


def _check_replaceable(path: Path) -> None:
    """Refuse to overwrite anything that is not a webgraph directory."""
    if not path.is_dir() or not (path / "meta.json").is_file():
        raise ValueError(
            f"{path!s} exists and is not a webgraph directory; refusing "
            "to replace it"
        )


def _save_dir(graph: WebGraph, path: Union[str, os.PathLike]) -> None:
    writer = WebGraphDirWriter(
        path,
        indptr=graph.indptr,
        site_of=graph.site_of,
        external_out=graph.external_out,
        site_names=graph.site_names,
    )
    try:
        step = WebGraph.FINGERPRINT_CHUNK
        for lo in range(0, graph.indices.size, step):
            writer.indices[lo : lo + step] = graph.indices[lo : lo + step]
        writer.finalize(mmap=False, validate=False)
    except BaseException:
        writer.abort()
        raise


def _load_meta(path: Path) -> dict:
    meta_path = path / "meta.json"
    if not meta_path.is_file():
        raise ValueError(
            f"{path!s}: no meta.json — not a webgraph directory (or an "
            "interrupted write that was never finalized)"
        )
    try:
        with open(meta_path, encoding="utf-8") as fh:
            meta = json.load(fh)
    except Exception as exc:
        raise ValueError(f"{path!s}: unreadable meta.json ({exc})") from exc
    if meta.get("format") != _DIR_FORMAT_NAME:
        raise ValueError(
            f"{path!s}: meta.json format marker is {meta.get('format')!r}, "
            f"expected {_DIR_FORMAT_NAME!r}"
        )
    version = meta.get("version")
    if version != DIR_FORMAT_VERSION:
        raise ValueError(
            f"unsupported webgraph directory version {version!r} "
            f"(this build reads version {DIR_FORMAT_VERSION})"
        )
    return meta


def _load_dir(path: Path, mmap: bool, validate: Optional[bool]) -> WebGraph:
    meta = _load_meta(path)
    arrays = {}
    for name in _DIR_ARRAYS:
        file = path / f"{name}.npy"
        if not file.is_file():
            raise ValueError(f"{path!s}: missing {name}.npy (truncated graph)")
        try:
            arrays[name] = np.load(file, mmap_mode="r" if mmap else None)
        except Exception as exc:
            raise ValueError(f"{path!s}: corrupt {name}.npy ({exc})") from exc
    try:
        with open(path / "site_names.json", encoding="utf-8") as fh:
            site_names = tuple(str(s) for s in json.load(fh))
    except Exception as exc:
        raise ValueError(f"{path!s}: corrupt site_names.json ({exc})") from exc

    n_pages = int(meta["n_pages"])
    if arrays["indptr"].shape != (n_pages + 1,):
        raise ValueError(
            f"{path!s}: indptr length {arrays['indptr'].shape} disagrees "
            f"with meta n_pages {n_pages}"
        )
    if arrays["indices"].shape != (int(meta["n_indices"]),):
        raise ValueError(
            f"{path!s}: indices length {arrays['indices'].shape[0]} "
            f"disagrees with meta n_indices {meta['n_indices']}"
        )
    if validate is None:
        # A full validation pass scans every array, which defeats a
        # lazy mmap load; memory-mapped graphs skip it unless asked.
        validate = not mmap
    graph = WebGraph.from_csr(
        n_pages,
        arrays["indptr"],
        arrays["indices"],
        site_of=arrays["site_of"],
        external_out=arrays["external_out"],
        site_names=site_names,
        copy=not mmap,
        validate=False,
    )
    if validate:
        from repro.graph.validation import check_webgraph

        check_webgraph(graph)
    return graph


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def save_webgraph(graph: WebGraph, path: Union[str, os.PathLike]) -> None:
    """Serialize ``graph`` to ``path``.

    A ``.npz`` suffix selects the single-file archive (format 1); any
    other path becomes an ``.npy`` directory (format 2, memory-
    mappable).  Both writes are atomic: a temporary file/directory is
    renamed into place only once complete.
    """
    if _is_dir_path(path):
        _save_dir(graph, path)
    else:
        _save_npz(graph, path)


def load_webgraph(
    path: Union[str, os.PathLike],
    *,
    mmap: bool = False,
    validate: Optional[bool] = None,
) -> WebGraph:
    """Load a graph previously written by :func:`save_webgraph`.

    Parameters
    ----------
    mmap:
        With the directory layout, return a graph whose ``indptr`` /
        ``indices`` / ``site_of`` / ``external_out`` are *read-only
        memory-mapped views* of the on-disk arrays — loading is O(1)
        in graph size and the OS pages data in on demand.  The views
        stay valid for the life of the returned graph; the files must
        not be modified or removed while it is in use.  Requesting
        ``mmap=True`` for a ``.npz`` file raises (the archive is
        compressed).
    validate:
        Force (True) or skip (False) the full structural scan of the
        loaded arrays.  Default: scan in-memory loads (deserialized
        data is untrusted), skip it for mmap loads so they stay lazy —
        pass ``validate=True`` to pay one sequential read for the full
        bounds check.
    """
    if _is_dir_path(path):
        return _load_dir(Path(path), mmap, validate)
    return _load_npz(path, mmap)


def backing_memmap(arr: Optional[np.ndarray]) -> Optional[np.memmap]:
    """Return the :class:`numpy.memmap` backing ``arr``, if any.

    ``WebGraph.from_csr`` re-wraps adopted arrays as plain ``ndarray``
    views, so ``isinstance(graph.indices, np.memmap)`` is False even
    for an mmap-loaded graph; walk the ``base`` chain instead.
    """
    seen = 0
    while arr is not None and seen < 16:
        if isinstance(arr, np.memmap):
            return arr
        arr = getattr(arr, "base", None)
        seen += 1
    return None


def madvise_dontneed(arr: np.ndarray, lo: int = 0, hi: Optional[int] = None) -> None:
    """Drop resident pages of a memory-mapped array slice (best effort).

    After a streaming pass over element range ``[lo, hi)`` of a
    read-only memory-mapped array, the touched file pages stay
    resident and count toward the process's peak RSS even though they
    will never be read again.  This hints the kernel to reclaim them.
    No-op for regular arrays and on platforms without ``madvise``.
    """
    import mmap as _mmap

    mm = backing_memmap(arr)
    base = getattr(mm, "_mmap", None)
    if mm is None or base is None or not hasattr(base, "madvise"):
        return
    itemsize = arr.itemsize
    # ``from_csr`` views share their base memmap's start, so element
    # offsets translate directly; ``mm.offset`` is the data start
    # within the underlying map (header bytes for ``.npy`` files).
    offset = int(getattr(mm, "offset", 0))
    hi = arr.size if hi is None else min(hi, arr.size)
    if hi <= lo:
        return
    page = _mmap.PAGESIZE
    start = offset + lo * itemsize
    stop = offset + hi * itemsize
    start_aligned = (start // page) * page
    with contextlib.suppress(Exception):
        base.madvise(_mmap.MADV_DONTNEED, start_aligned, stop - start_aligned)
