"""Page partitioning strategies (paper §4.1).

The paper considers three ways of dividing crawled pages among the K
page rankers:

1. **Random** — rejected by the paper: a recrawled page can land on a
   different ranker each time.  We implement it (seeded, hence actually
   repeatable *given the same seed*) because it is the baseline the
   other strategies are compared against.
2. **Hash of page URL** — stable, but splits sites across rankers, so
   ~all inter-page links become cross-ranker traffic.
3. **Hash of website** — the paper's recommendation: since ~90% of
   links are intra-site, placing whole sites keeps most links local
   and slashes the communication volume.

A :class:`Partition` is the mapping ``page -> group`` plus derived
indexes used by the distributed rankers (group page lists, global->
local index translation).
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.graph.webgraph import WebGraph
from repro.utils.hashing import stable_uint64
from repro.utils.rng import as_generator, RngLike

__all__ = [
    "Partition",
    "partition_random",
    "partition_by_url_hash",
    "partition_by_site_hash",
    "partition_rendezvous",
    "partition_contiguous",
    "partition_ldg",
    "count_split_sites",
    "make_partition",
    "STRATEGIES",
]


class Partition:
    """Assignment of every page to one of ``n_groups`` page rankers.

    Attributes
    ----------
    group_of:
        ``int64[n_pages]`` array mapping page id -> group id.
    n_groups:
        Number of groups (page rankers), ``K`` in the paper.  Groups
        may be empty; empty groups simply hold no pages.
    """

    __slots__ = ("group_of", "n_groups", "_pages_by_group", "_local_index")

    def __init__(self, group_of: np.ndarray, n_groups: int):
        group_of = np.asarray(group_of, dtype=np.int64)
        if group_of.ndim != 1:
            raise ValueError("group_of must be a 1-D array")
        if n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if group_of.size and (group_of.min() < 0 or group_of.max() >= n_groups):
            raise ValueError("group ids must lie in [0, n_groups)")
        self.group_of = group_of
        self.n_groups = int(n_groups)
        self._pages_by_group: Optional[List[np.ndarray]] = None
        self._local_index: Optional[np.ndarray] = None

    @property
    def n_pages(self) -> int:
        return int(self.group_of.size)

    def pages_of_group(self, group: int) -> np.ndarray:
        """Sorted page ids owned by ``group``."""
        return self._by_group()[group]

    def _by_group(self) -> List[np.ndarray]:
        if self._pages_by_group is None:
            order = np.argsort(self.group_of, kind="stable")
            sorted_groups = self.group_of[order]
            boundaries = np.searchsorted(
                sorted_groups, np.arange(self.n_groups + 1)
            )
            self._pages_by_group = [
                order[boundaries[g] : boundaries[g + 1]]
                for g in range(self.n_groups)
            ]
        return self._pages_by_group

    def local_index(self) -> np.ndarray:
        """``int64[n_pages]``: each page's index within its group's page list."""
        if self._local_index is None:
            idx = np.empty(self.n_pages, dtype=np.int64)
            for g, pages in enumerate(self._by_group()):
                idx[pages] = np.arange(pages.size)
            self._local_index = idx
        return self._local_index

    def group_sizes(self) -> np.ndarray:
        """Number of pages in each group."""
        return np.bincount(self.group_of, minlength=self.n_groups)

    def imbalance(self) -> float:
        """max/mean group size; 1.0 is perfectly balanced."""
        sizes = self.group_sizes()
        mean = sizes.mean()
        if mean == 0:
            return 1.0
        return float(sizes.max() / mean)

    def __repr__(self) -> str:
        return f"Partition(n_pages={self.n_pages}, n_groups={self.n_groups})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.n_groups == other.n_groups and np.array_equal(
            self.group_of, other.group_of
        )


def partition_random(graph: WebGraph, n_groups: int, *, seed: RngLike = 0) -> Partition:
    """Assign every page to a uniformly random group.

    The paper rejects this strategy for production use because a
    revisit of the same page may be assigned elsewhere; it remains the
    natural baseline for cut-size comparisons.
    """
    rng = as_generator(seed)
    return Partition(rng.integers(0, n_groups, size=graph.n_pages), n_groups)


def partition_by_url_hash(
    graph: WebGraph, n_groups: int, *, salt: str = ""
) -> Partition:
    """Assign each page by a stable hash of its URL.

    Deterministic across runs and processes (SHA-1 based), so a
    re-crawled page always returns to the same ranker — but pages of
    one site scatter across all groups.
    """
    group_of = np.fromiter(
        (
            stable_uint64(graph.url_of(p), salt=f"url:{salt}") % n_groups
            for p in range(graph.n_pages)
        ),
        dtype=np.int64,
        count=graph.n_pages,
    )
    return Partition(group_of, n_groups)


def partition_by_site_hash(
    graph: WebGraph, n_groups: int, *, salt: str = ""
) -> Partition:
    """Assign each page by a stable hash of its site hostname.

    The paper's recommended strategy (§4.1): whole sites stay together,
    so the ~90% intra-site links never cross ranker boundaries.
    """
    site_group = np.fromiter(
        (
            stable_uint64(name, salt=f"site:{salt}") % n_groups
            for name in graph.site_names
        ),
        dtype=np.int64,
        count=graph.n_sites,
    )
    if graph.n_pages and graph.n_sites == 0:
        raise ValueError("graph has pages but no sites")
    group_of = site_group[graph.site_of] if graph.n_pages else np.zeros(0, np.int64)
    return Partition(group_of, n_groups)


def partition_rendezvous(
    graph: WebGraph,
    n_groups: int,
    *,
    salt: str = "",
    alive: Optional[Sequence[int]] = None,
) -> Partition:
    """Assign sites by rendezvous (highest-random-weight) hashing.

    Extension beyond the paper: like hash-by-site, whole sites stay
    together and placement is stable across re-crawls — but unlike
    ``site_hash % K``, membership changes move the *minimum* number of
    sites.  When ranker ``g`` leaves, only the sites it owned move
    (each to its second-highest-weight ranker); every other page stays
    put.  This is the property a long-lived, self-organizing P2P
    deployment actually needs, since modding by K reshuffles nearly
    everything whenever K changes.

    Parameters
    ----------
    alive:
        The subset of group ids currently accepting pages (default:
        all).  Dead groups receive no pages but keep their ids, so a
        partition after ``alive=[0,2,3]`` is still over ``n_groups``
        groups with group 1 empty.
    """
    if alive is None:
        alive_list = list(range(n_groups))
    else:
        alive_list = sorted(set(int(g) for g in alive))
        if not alive_list:
            raise ValueError("alive must contain at least one group")
        if alive_list[0] < 0 or alive_list[-1] >= n_groups:
            raise ValueError("alive ids must lie in [0, n_groups)")

    site_group = np.empty(max(graph.n_sites, 1), dtype=np.int64)
    for site_id, name in enumerate(graph.site_names):
        best_g, best_w = alive_list[0], -1
        for g in alive_list:
            w = stable_uint64(f"{name}|{g}", salt=f"hrw:{salt}")
            if w > best_w:
                best_g, best_w = g, w
        site_group[site_id] = best_g
    group_of = (
        site_group[graph.site_of] if graph.n_pages else np.zeros(0, np.int64)
    )
    return Partition(group_of, n_groups)


def count_split_sites(site_of: np.ndarray, group_of: np.ndarray) -> int:
    """Number of sites whose pages land in more than one group.

    A split site violates the paper's locality assumption (§4.1: whole
    sites stay on one ranker, so ~90% of links never cross ranker
    boundaries) — its intra-site links become cross-ranker traffic.
    """
    site_of = np.asarray(site_of, dtype=np.int64)
    group_of = np.asarray(group_of, dtype=np.int64)
    if site_of.size == 0:
        return 0
    k = int(group_of.max()) + 1
    pairs = np.unique(site_of * np.int64(k) + group_of)
    groups_per_site = np.bincount(pairs // k)
    return int(np.count_nonzero(groups_per_site > 1))


def partition_contiguous(
    graph: WebGraph, n_groups: int, *, warn_site_splits: bool = True
) -> Partition:
    """Split pages into ``n_groups`` contiguous, near-equal chunks.

    Not in the paper; used by tests and examples because group
    membership is obvious by eye.  Chunk boundaries ignore site
    boundaries, so sites straddling a boundary are split across
    rankers — the exact situation the paper's hash-by-site scheme
    exists to avoid.  On generator graphs (pages of a site are
    consecutive ids) at most ``n_groups - 1`` sites split, so the cut
    stays site-like; on arbitrary page orderings contiguous degrades
    toward url-hash.  When splits occur a :class:`UserWarning` reports
    the count (suppress with ``warn_site_splits=False``); the same
    number is surfaced as ``n_split_sites`` in
    :class:`~repro.graph.stats.CutStatistics` and the partitioner
    bake-off table.
    """
    group_of = (
        np.arange(graph.n_pages, dtype=np.int64) * n_groups // max(graph.n_pages, 1)
    )
    if warn_site_splits and graph.n_pages:
        n_split = count_split_sites(graph.site_of, group_of)
        if n_split:
            warnings.warn(
                f"partition_contiguous split {n_split} of {graph.n_sites} "
                "sites across group boundaries; their intra-site links "
                "become cross-ranker traffic (pass warn_site_splits=False "
                "to silence)",
                UserWarning,
                stacklevel=2,
            )
    return Partition(group_of, n_groups)


def partition_ldg(
    graph: WebGraph,
    n_groups: int,
    *,
    slack: float = 0.1,
    chunk_edges: int = 1 << 21,
) -> Partition:
    """Greedy streaming min-cut partitioner (Linear Deterministic Greedy).

    Extension beyond the paper: instead of hashing sites to rankers,
    stream sites (largest first, the generator's natural order) and
    place each on the group maximizing

    ``affinity(s, g) × (1 − load_g / capacity)``

    where affinity counts links between site ``s`` and sites already
    in ``g`` (both directions) and ``capacity = (1 + slack) · n/K``
    caps group growth [Stanton & Kliot, KDD'12].  Keeps the
    hash-by-site invariant (whole sites stay together — rendered as 0
    split sites in the bake-off) while actively packing heavily-linked
    sites onto the same ranker, trading the paper's statelessness for
    a lower cut.

    The site-to-site link matrix is accumulated in bounded CSR chunks
    (``chunk_edges`` links at a time), so the pass works unchanged on
    memory-mapped graphs; the greedy loop itself is O(n_sites).
    Deterministic: no seed or salt.
    """
    if n_groups < 1:
        raise ValueError("n_groups must be >= 1")
    if slack < 0:
        raise ValueError("slack must be >= 0")
    n = graph.n_pages
    n_sites = graph.n_sites
    if n == 0:
        return Partition(np.zeros(0, dtype=np.int64), n_groups)
    if n_groups == 1 or n_sites <= 1:
        return Partition(np.zeros(n, dtype=np.int64), n_groups)

    import scipy.sparse as sp

    from repro.graph.io import madvise_dontneed

    site_of = graph.site_of
    indptr = graph.indptr
    indices = graph.indices
    acc: Optional[sp.csr_matrix] = None
    p0 = 0
    while p0 < n:
        p1 = int(np.searchsorted(indptr, int(indptr[p0]) + chunk_edges, side="left"))
        p1 = min(max(p1, p0 + 1), n)
        lo, hi = int(indptr[p0]), int(indptr[p1])
        if hi > lo:
            dst = np.asarray(indices[lo:hi], dtype=np.int64)
            deg = np.asarray(indptr[p0 : p1 + 1], dtype=np.int64)
            src = np.repeat(np.arange(p0, p1, dtype=np.int64), np.diff(deg))
            ss, sd = site_of[src], site_of[dst]
            inter = ss != sd  # intra-site links can never be cut here
            if inter.any():
                chunk = sp.csr_matrix(
                    (
                        np.ones(int(inter.sum()), dtype=np.float64),
                        (ss[inter], sd[inter]),
                    ),
                    shape=(n_sites, n_sites),
                )
                acc = chunk if acc is None else acc + chunk
            madvise_dontneed(indices, lo, hi)
        p0 = p1
    if acc is None:
        acc = sp.csr_matrix((n_sites, n_sites))
    w = (acc + acc.T).tocsr()  # undirected link weights between sites

    sizes = np.bincount(site_of, minlength=n_sites).astype(np.float64)
    capacity = (1.0 + slack) * n / n_groups
    load = np.zeros(n_groups, dtype=np.float64)
    site_group = np.full(n_sites, -1, dtype=np.int64)
    affinity = np.empty(n_groups, dtype=np.float64)
    for s in range(n_sites):
        affinity[:] = 0.0
        cols = w.indices[w.indptr[s] : w.indptr[s + 1]]
        vals = w.data[w.indptr[s] : w.indptr[s + 1]]
        assigned = site_group[cols]
        placed = assigned >= 0
        if placed.any():
            np.add.at(affinity, assigned[placed], vals[placed])
        # Penalize (never hard-forbid) full groups so oversized sites
        # still place; +1 smoothing lets link-free sites balance load.
        score = (affinity + 1.0) * np.maximum(1.0 - load / capacity, 1e-12)
        g = int(np.argmax(score))
        site_group[s] = g
        load[g] += sizes[s]
    return Partition(site_group[site_of], n_groups)


STRATEGIES: Dict[str, Callable[..., Partition]] = {
    "random": partition_random,
    "url": partition_by_url_hash,
    "site": partition_by_site_hash,
    "rendezvous": partition_rendezvous,
    "contiguous": partition_contiguous,
    "ldg": partition_ldg,
}


def make_partition(
    graph: WebGraph,
    n_groups: int,
    strategy: str = "site",
    *,
    seed: RngLike = 0,
    salt: str = "",
) -> Partition:
    """Dispatch to a partitioning strategy by name.

    ``strategy`` is one of ``random``, ``url``, ``site``,
    ``rendezvous``, ``contiguous``, ``ldg``.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {sorted(STRATEGIES)}"
        )
    if strategy == "random":
        return partition_random(graph, n_groups, seed=seed)
    if strategy in ("contiguous", "ldg"):
        return STRATEGIES[strategy](graph, n_groups)
    return STRATEGIES[strategy](graph, n_groups, salt=salt)
