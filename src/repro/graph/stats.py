"""Structural statistics of web graphs and partitions.

These are the quantities the paper's arguments hinge on:

* the intra-site link fraction (drives the benefit of hash-by-site
  partitioning, §4.1);
* the internal-link fraction (drives the open-system rank leak that
  caps Fig. 7's average rank at ~0.3);
* partition cut statistics (cross-group links are exactly the traffic
  the transports of §4.4 must carry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.graph.partition import Partition
from repro.graph.webgraph import WebGraph

__all__ = [
    "degree_statistics",
    "intra_site_link_fraction",
    "internal_link_fraction",
    "partition_cut_statistics",
    "CutStatistics",
    "GraphSummary",
    "summarize",
]


def degree_statistics(graph: WebGraph) -> Dict[str, float]:
    """Mean/max/percentile summary of total out-degrees and in-degrees."""
    out = graph.out_degrees().astype(np.float64)
    inn = graph.in_degrees().astype(np.float64)
    if graph.n_pages == 0:
        zero = {"mean": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0}
        return {f"out_{k}": v for k, v in zero.items()} | {
            f"in_{k}": v for k, v in zero.items()
        }
    return {
        "out_mean": float(out.mean()),
        "out_max": float(out.max()),
        "out_p50": float(np.percentile(out, 50)),
        "out_p99": float(np.percentile(out, 99)),
        "in_mean": float(inn.mean()),
        "in_max": float(inn.max()),
        "in_p50": float(np.percentile(inn, 50)),
        "in_p99": float(np.percentile(inn, 99)),
    }


def intra_site_link_fraction(graph: WebGraph) -> float:
    """Fraction of *internal* links whose endpoints share a site.

    The paper (citing [16]) expects ~0.9 for real crawls; the
    :func:`~repro.graph.generators.google_contest_like` generator is
    parameterized to match.
    """
    if graph.n_internal_links == 0:
        return 0.0
    src, dst = graph.edges()
    same = graph.site_of[src] == graph.site_of[dst]
    return float(same.mean())


def internal_link_fraction(graph: WebGraph) -> float:
    """Fraction of all links whose target is inside the crawl.

    Paper's dataset: 7M internal / 15M total ≈ 0.467.
    """
    total = graph.n_links
    if total == 0:
        return 0.0
    return graph.n_internal_links / total


@dataclass
class CutStatistics:
    """Cross-group traffic profile of a partition.

    Attributes
    ----------
    n_cut_links:
        Internal links whose endpoints live in different groups —
        exactly the link records that must travel between rankers each
        iteration (§4.4's ``l``-byte records).
    cut_fraction:
        ``n_cut_links / n_internal_links``.
    n_group_pairs:
        Number of ordered (src_group, dst_group) pairs with at least
        one cut link: the out-fan of the communication pattern.
    max_group_out_fan:
        Largest number of distinct destination groups any single group
        sends to (the per-node destination count under direct
        transmission).
    group_sizes:
        Pages per group.
    """

    n_cut_links: int
    cut_fraction: float
    n_group_pairs: int
    max_group_out_fan: int
    group_sizes: np.ndarray = field(repr=False)

    def as_dict(self) -> Dict[str, float]:
        """Cut metrics as a flat mapping (for table rows / JSON)."""
        return {
            "n_cut_links": float(self.n_cut_links),
            "cut_fraction": self.cut_fraction,
            "n_group_pairs": float(self.n_group_pairs),
            "max_group_out_fan": float(self.max_group_out_fan),
            "imbalance": float(
                self.group_sizes.max() / max(self.group_sizes.mean(), 1e-12)
            )
            if self.group_sizes.size
            else 1.0,
        }


def partition_cut_statistics(graph: WebGraph, partition: Partition) -> CutStatistics:
    """Compute :class:`CutStatistics` for a partition of ``graph``."""
    if partition.n_pages != graph.n_pages:
        raise ValueError("partition and graph disagree on n_pages")
    src, dst = graph.edges()
    gs = partition.group_of[src]
    gd = partition.group_of[dst]
    cut = gs != gd
    n_cut = int(cut.sum())
    frac = n_cut / src.size if src.size else 0.0
    if n_cut:
        pair_keys = gs[cut] * np.int64(partition.n_groups) + gd[cut]
        unique_pairs = np.unique(pair_keys)
        n_pairs = int(unique_pairs.size)
        out_fan = np.bincount(
            (unique_pairs // partition.n_groups).astype(np.int64),
            minlength=partition.n_groups,
        )
        max_fan = int(out_fan.max())
    else:
        n_pairs = 0
        max_fan = 0
    return CutStatistics(
        n_cut_links=n_cut,
        cut_fraction=frac,
        n_group_pairs=n_pairs,
        max_group_out_fan=max_fan,
        group_sizes=partition.group_sizes(),
    )


@dataclass
class GraphSummary:
    """One-look description of a web graph, printable as a table row."""

    n_pages: int
    n_sites: int
    n_internal_links: int
    n_external_links: int
    mean_out_degree: float
    internal_link_fraction: float
    intra_site_link_fraction: float
    n_dangling: int

    def as_dict(self) -> Dict[str, float]:
        """Summary as a flat mapping (for table rows / JSON)."""
        return {
            "n_pages": float(self.n_pages),
            "n_sites": float(self.n_sites),
            "n_internal_links": float(self.n_internal_links),
            "n_external_links": float(self.n_external_links),
            "mean_out_degree": self.mean_out_degree,
            "internal_link_fraction": self.internal_link_fraction,
            "intra_site_link_fraction": self.intra_site_link_fraction,
            "n_dangling": float(self.n_dangling),
        }


def summarize(graph: WebGraph) -> GraphSummary:
    """Build a :class:`GraphSummary` for ``graph``."""
    n = max(graph.n_pages, 1)
    return GraphSummary(
        n_pages=graph.n_pages,
        n_sites=graph.n_sites,
        n_internal_links=graph.n_internal_links,
        n_external_links=graph.n_external_links,
        mean_out_degree=graph.n_links / n,
        internal_link_fraction=internal_link_fraction(graph),
        intra_site_link_fraction=intra_site_link_fraction(graph),
        n_dangling=int(graph.dangling_pages().size),
    )
