"""Structural statistics of web graphs and partitions.

These are the quantities the paper's arguments hinge on:

* the intra-site link fraction (drives the benefit of hash-by-site
  partitioning, §4.1);
* the internal-link fraction (drives the open-system rank leak that
  caps Fig. 7's average rank at ~0.3);
* partition cut statistics (cross-group links are exactly the traffic
  the transports of §4.4 must carry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.graph.partition import Partition
from repro.graph.webgraph import WebGraph

__all__ = [
    "degree_statistics",
    "intra_site_link_fraction",
    "internal_link_fraction",
    "partition_cut_statistics",
    "CutStatistics",
    "GraphSummary",
    "summarize",
]


def degree_statistics(graph: WebGraph) -> Dict[str, float]:
    """Mean/max/percentile summary of total out-degrees and in-degrees."""
    out = graph.out_degrees().astype(np.float64)
    inn = graph.in_degrees().astype(np.float64)
    if graph.n_pages == 0:
        zero = {"mean": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0}
        return {f"out_{k}": v for k, v in zero.items()} | {
            f"in_{k}": v for k, v in zero.items()
        }
    return {
        "out_mean": float(out.mean()),
        "out_max": float(out.max()),
        "out_p50": float(np.percentile(out, 50)),
        "out_p99": float(np.percentile(out, 99)),
        "in_mean": float(inn.mean()),
        "in_max": float(inn.max()),
        "in_p50": float(np.percentile(inn, 50)),
        "in_p99": float(np.percentile(inn, 99)),
    }


def intra_site_link_fraction(graph: WebGraph) -> float:
    """Fraction of *internal* links whose endpoints share a site.

    The paper (citing [16]) expects ~0.9 for real crawls; the
    :func:`~repro.graph.generators.google_contest_like` generator is
    parameterized to match.
    """
    if graph.n_internal_links == 0:
        return 0.0
    src, dst = graph.edges()
    same = graph.site_of[src] == graph.site_of[dst]
    return float(same.mean())


def internal_link_fraction(graph: WebGraph) -> float:
    """Fraction of all links whose target is inside the crawl.

    Paper's dataset: 7M internal / 15M total ≈ 0.467.
    """
    total = graph.n_links
    if total == 0:
        return 0.0
    return graph.n_internal_links / total


@dataclass
class CutStatistics:
    """Cross-group traffic profile of a partition.

    Attributes
    ----------
    n_cut_links:
        Internal links whose endpoints live in different groups —
        exactly the link records that must travel between rankers each
        iteration (§4.4's ``l``-byte records).
    cut_fraction:
        ``n_cut_links / n_internal_links``.
    n_group_pairs:
        Number of ordered (src_group, dst_group) pairs with at least
        one cut link: the out-fan of the communication pattern.
    max_group_out_fan:
        Largest number of distinct destination groups any single group
        sends to (the per-node destination count under direct
        transmission).
    n_split_sites:
        Sites whose pages span more than one group — 0 for every
        site-granular strategy (site/rendezvous/ldg); nonzero values
        quantify how far a partition strays from the paper's locality
        assumption (see :func:`partition_contiguous`).
    group_sizes:
        Pages per group.
    """

    n_cut_links: int
    cut_fraction: float
    n_group_pairs: int
    max_group_out_fan: int
    n_split_sites: int
    group_sizes: np.ndarray = field(repr=False)

    def as_dict(self) -> Dict[str, float]:
        """Cut metrics as a flat mapping (for table rows / JSON)."""
        return {
            "n_cut_links": float(self.n_cut_links),
            "cut_fraction": self.cut_fraction,
            "n_group_pairs": float(self.n_group_pairs),
            "max_group_out_fan": float(self.max_group_out_fan),
            "n_split_sites": float(self.n_split_sites),
            "imbalance": float(
                self.group_sizes.max() / max(self.group_sizes.mean(), 1e-12)
            )
            if self.group_sizes.size
            else 1.0,
        }


def partition_cut_statistics(
    graph: WebGraph, partition: Partition, *, chunk_edges: int = 1 << 21
) -> CutStatistics:
    """Compute :class:`CutStatistics` for a partition of ``graph``.

    Streams the CSR structure ``chunk_edges`` links at a time (pure
    integer counting, so chunking cannot change any result), which
    keeps the pass memory-bounded on memory-mapped graphs.
    """
    if partition.n_pages != graph.n_pages:
        raise ValueError("partition and graph disagree on n_pages")
    from repro.graph.io import madvise_dontneed
    from repro.graph.partition import count_split_sites

    group_of = partition.group_of
    k = partition.n_groups
    indptr = graph.indptr
    indices = graph.indices
    n = graph.n_pages
    n_cut = 0
    n_edges = 0
    pair_seen = np.zeros(k * k, dtype=bool)
    p0 = 0
    while p0 < n:
        p1 = int(np.searchsorted(indptr, int(indptr[p0]) + chunk_edges, side="left"))
        p1 = min(max(p1, p0 + 1), n)
        lo, hi = int(indptr[p0]), int(indptr[p1])
        if hi > lo:
            dst = np.asarray(indices[lo:hi], dtype=np.int64)
            deg = np.asarray(indptr[p0 : p1 + 1], dtype=np.int64)
            src = np.repeat(np.arange(p0, p1, dtype=np.int64), np.diff(deg))
            gs = group_of[src]
            gd = group_of[dst]
            cut = gs != gd
            n_cut += int(np.count_nonzero(cut))
            n_edges += int(cut.size)
            if cut.any():
                pair_seen[np.unique(gs[cut] * np.int64(k) + gd[cut])] = True
            madvise_dontneed(indices, lo, hi)
        p0 = p1
    if n_cut:
        pairs = np.flatnonzero(pair_seen)
        n_pairs = int(pairs.size)
        max_fan = int(np.bincount(pairs // k, minlength=k).max())
    else:
        n_pairs = 0
        max_fan = 0
    return CutStatistics(
        n_cut_links=n_cut,
        cut_fraction=n_cut / n_edges if n_edges else 0.0,
        n_group_pairs=n_pairs,
        max_group_out_fan=max_fan,
        n_split_sites=count_split_sites(graph.site_of, group_of),
        group_sizes=partition.group_sizes(),
    )


@dataclass
class GraphSummary:
    """One-look description of a web graph, printable as a table row."""

    n_pages: int
    n_sites: int
    n_internal_links: int
    n_external_links: int
    mean_out_degree: float
    internal_link_fraction: float
    intra_site_link_fraction: float
    n_dangling: int

    def as_dict(self) -> Dict[str, float]:
        """Summary as a flat mapping (for table rows / JSON)."""
        return {
            "n_pages": float(self.n_pages),
            "n_sites": float(self.n_sites),
            "n_internal_links": float(self.n_internal_links),
            "n_external_links": float(self.n_external_links),
            "mean_out_degree": self.mean_out_degree,
            "internal_link_fraction": self.internal_link_fraction,
            "intra_site_link_fraction": self.intra_site_link_fraction,
            "n_dangling": float(self.n_dangling),
        }


def summarize(graph: WebGraph) -> GraphSummary:
    """Build a :class:`GraphSummary` for ``graph``."""
    n = max(graph.n_pages, 1)
    return GraphSummary(
        n_pages=graph.n_pages,
        n_sites=graph.n_sites,
        n_internal_links=graph.n_internal_links,
        n_external_links=graph.n_external_links,
        mean_out_degree=graph.n_links / n,
        internal_link_fraction=internal_link_fraction(graph),
        intra_site_link_fraction=intra_site_link_fraction(graph),
        n_dangling=int(graph.dangling_pages().size),
    )
