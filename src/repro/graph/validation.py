"""Web-graph integrity checking.

:func:`check_webgraph` verifies the internal invariants a
:class:`~repro.graph.webgraph.WebGraph` is supposed to maintain — CSR
monotonicity, index ranges, degree identities, site consistency.
Construction already enforces these, so the checker's role is guarding
*deserialized* graphs (:mod:`repro.graph.io`, external loaders) and
acting as an executable specification of the data structure.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.webgraph import WebGraph

__all__ = ["check_webgraph", "WebGraphInvariantError"]


class WebGraphInvariantError(AssertionError):
    """A WebGraph violated one of its structural invariants."""


def check_webgraph(graph: WebGraph, *, raise_on_error: bool = True) -> List[str]:
    """Verify every structural invariant; return violation messages.

    With ``raise_on_error`` (default) the first check failure raises
    :class:`WebGraphInvariantError` listing all violations.
    """
    problems: List[str] = []
    n = graph.n_pages

    # CSR shape and monotonicity.
    if graph.indptr.shape != (n + 1,):
        problems.append(f"indptr shape {graph.indptr.shape}, want ({n + 1},)")
    else:
        if graph.indptr[0] != 0:
            problems.append("indptr[0] != 0")
        if (np.diff(graph.indptr) < 0).any():
            problems.append("indptr not non-decreasing")
        if graph.indptr[-1] != graph.indices.size:
            problems.append(
                f"indptr[-1]={graph.indptr[-1]} != nnz={graph.indices.size}"
            )

    # Index ranges.
    if graph.indices.size and (
        graph.indices.min() < 0 or graph.indices.max() >= n
    ):
        problems.append("edge targets out of range")

    # Attribute shapes.
    if graph.site_of.shape != (n,):
        problems.append(f"site_of shape {graph.site_of.shape}, want ({n},)")
    if graph.external_out.shape != (n,):
        problems.append(f"external_out shape {graph.external_out.shape}, want ({n},)")
    if n and (graph.external_out < 0).any():
        problems.append("negative external_out")
    if n and (graph.site_of < 0).any():
        problems.append("negative site ids")
    if n and graph.site_of.size and int(graph.site_of.max()) >= len(graph.site_names):
        problems.append("site id exceeds site_names")

    # Degree identities.
    if not problems:
        if graph.internal_out_degrees().sum() != graph.n_internal_links:
            problems.append("internal out-degree sum != internal link count")
        if graph.in_degrees().sum() != graph.n_internal_links:
            problems.append("in-degree sum != internal link count")
        expected = graph.internal_out_degrees() + graph.external_out
        if not np.array_equal(graph.out_degrees(), expected):
            problems.append("out_degrees != internal + external")

    if problems and raise_on_error:
        raise WebGraphInvariantError("; ".join(problems))
    return problems
