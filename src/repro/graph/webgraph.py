"""The :class:`WebGraph` data structure.

A :class:`WebGraph` is an immutable directed graph over ``n_pages``
pages stored in CSR (compressed sparse row) form, augmented with the
two attributes the paper's model needs and a plain adjacency list does
not carry:

* **Sites** — every page belongs to a site (``site_of``).  Partitioning
  by "hash of website" (paper §4.1) and the intra-site link statistics
  (90% of links are intra-site, [16] in the paper) are defined in terms
  of sites.
* **External out-links** — pages may link to URLs *outside the crawl*.
  In the paper's dataset only 7M of 15M links point at crawled pages.
  External links contribute to a page's out-degree ``d(u)`` — and hence
  dilute the rank it forwards — but carry rank out of the system
  entirely.  This "rank leak" is why Fig. 7 of the paper converges to a
  mean rank of ~0.3 rather than 1.0.

Out-degree convention
---------------------
``out_degree(u) = internal_out_degree(u) + external_out(u)``.  All
rank-propagation code divides by the *total* out-degree, matching the
open-system model of paper §3 where the crawled pages are an open
subset of the whole web ``W``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["WebGraph"]


class WebGraph:
    """Immutable directed web graph with sites and external links.

    Parameters
    ----------
    n_pages:
        Number of crawled pages, indexed ``0 .. n_pages-1``.
    src, dst:
        Parallel integer arrays of *internal* link endpoints (both
        endpoints crawled).  Duplicate links are allowed and kept
        (a page linking twice confers rank twice, as a real crawler
        would record).
    site_of:
        Integer array of length ``n_pages`` mapping page -> site id in
        ``0 .. n_sites-1``.  Defaults to every page on one site.
    external_out:
        Integer array of length ``n_pages``: number of out-links of
        each page whose target is outside the crawl.  Defaults to 0.
    site_names:
        Optional site hostnames (used for URL synthesis and hashing
        stability).  Defaults to ``site<id>.example.edu``.
    """

    __slots__ = (
        "n_pages",
        "indptr",
        "indices",
        "site_of",
        "external_out",
        "site_names",
        "_adj",
        "_out_deg",
        "_in_deg",
        "_fingerprint",
    )

    def __init__(
        self,
        n_pages: int,
        src: Sequence[int],
        dst: Sequence[int],
        *,
        site_of: Optional[Sequence[int]] = None,
        external_out: Optional[Sequence[int]] = None,
        site_names: Optional[Sequence[str]] = None,
    ):
        if n_pages < 0:
            raise ValueError(f"n_pages must be >= 0, got {n_pages}")
        self.n_pages = int(n_pages)

        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        if src.size:
            if src.min() < 0 or src.max() >= n_pages:
                raise ValueError("src contains page ids outside [0, n_pages)")
            if dst.min() < 0 or dst.max() >= n_pages:
                raise ValueError("dst contains page ids outside [0, n_pages)")

        # Build CSR by stable-sorting edges by source.
        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        self.indices = np.ascontiguousarray(dst[order])
        counts = np.bincount(src_sorted, minlength=n_pages)
        self.indptr = np.zeros(n_pages + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])

        if site_of is None:
            site_arr = np.zeros(n_pages, dtype=np.int64)
        else:
            site_arr = np.asarray(site_of, dtype=np.int64)
            if site_arr.shape != (n_pages,):
                raise ValueError("site_of must have shape (n_pages,)")
            if n_pages and site_arr.min() < 0:
                raise ValueError("site ids must be non-negative")
        self.site_of = site_arr

        if external_out is None:
            ext = np.zeros(n_pages, dtype=np.int64)
        else:
            ext = np.asarray(external_out, dtype=np.int64)
            if ext.shape != (n_pages,):
                raise ValueError("external_out must have shape (n_pages,)")
            if n_pages and ext.min() < 0:
                raise ValueError("external_out must be non-negative")
        self.external_out = ext

        n_sites = int(site_arr.max()) + 1 if n_pages else 0
        if site_names is None:
            self.site_names = tuple(f"site{i:04d}.example.edu" for i in range(n_sites))
        else:
            self.site_names = tuple(site_names)
            if len(self.site_names) < n_sites:
                raise ValueError(
                    f"site_names has {len(self.site_names)} entries but "
                    f"site ids go up to {n_sites - 1}"
                )

        self._adj: Optional[sp.csr_matrix] = None
        self._out_deg: Optional[np.ndarray] = None
        self._in_deg: Optional[np.ndarray] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        n_pages: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        site_of: Optional[np.ndarray] = None,
        external_out: Optional[np.ndarray] = None,
        site_names: Optional[Sequence[str]] = None,
        copy: bool = True,
        validate: bool = True,
    ) -> "WebGraph":
        """Build a graph directly from CSR arrays, skipping the edge sort.

        ``__init__`` accepts an edge list and stable-sorts it into CSR
        form — an O(E log E) step that is wasted work when the caller
        already holds CSR arrays (deserialization, shared-memory
        attach).  With ``copy=False`` the provided arrays are adopted
        as-is (they may be read-only views over shared memory); the
        caller must not mutate them afterwards.
        """
        n_pages = int(n_pages)
        if n_pages < 0:
            raise ValueError(f"n_pages must be >= 0, got {n_pages}")

        def _adopt(arr, dtype):
            out = np.asarray(arr, dtype=dtype)
            return out.copy() if copy and out is arr else np.ascontiguousarray(out)

        indptr = _adopt(indptr, np.int64)
        indices = _adopt(indices, np.int64)
        if validate:
            if indptr.shape != (n_pages + 1,):
                raise ValueError("indptr must have shape (n_pages + 1,)")
            if indptr[0] != 0 or indptr[-1] != indices.size:
                raise ValueError("indptr must start at 0 and end at len(indices)")
            if np.any(np.diff(indptr) < 0):
                raise ValueError("indptr must be non-decreasing")
            if indices.size and (indices.min() < 0 or indices.max() >= n_pages):
                raise ValueError("indices contains page ids outside [0, n_pages)")

        graph = cls.__new__(cls)
        graph.n_pages = n_pages
        graph.indptr = indptr
        graph.indices = indices

        if site_of is None:
            graph.site_of = np.zeros(n_pages, dtype=np.int64)
        else:
            graph.site_of = _adopt(site_of, np.int64)
            if validate:
                if graph.site_of.shape != (n_pages,):
                    raise ValueError("site_of must have shape (n_pages,)")
                if n_pages and graph.site_of.min() < 0:
                    raise ValueError("site ids must be non-negative")

        if external_out is None:
            graph.external_out = np.zeros(n_pages, dtype=np.int64)
        else:
            graph.external_out = _adopt(external_out, np.int64)
            if validate:
                if graph.external_out.shape != (n_pages,):
                    raise ValueError("external_out must have shape (n_pages,)")
                if n_pages and graph.external_out.min() < 0:
                    raise ValueError("external_out must be non-negative")

        n_sites = int(graph.site_of.max()) + 1 if n_pages else 0
        if site_names is None:
            graph.site_names = tuple(f"site{i:04d}.example.edu" for i in range(n_sites))
        else:
            graph.site_names = tuple(site_names)
            if len(graph.site_names) < n_sites:
                raise ValueError(
                    f"site_names has {len(graph.site_names)} entries but "
                    f"site ids go up to {n_sites - 1}"
                )

        graph._adj = None
        graph._out_deg = None
        graph._in_deg = None
        graph._fingerprint = None
        return graph

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    #: Elements hashed per :meth:`fingerprint` chunk.  Bounds the
    #: transient buffer at 8 MB regardless of graph size, which keeps
    #: fingerprinting memmap-friendly: a memory-mapped CSR array is
    #: paged through, never materialized as one contiguous byte string.
    FINGERPRINT_CHUNK = 1 << 20

    def fingerprint(self) -> str:
        """Stable hex digest of the graph's full content.

        Covers the CSR structure, site assignment, external-link counts
        and site names, so two graphs share a fingerprint iff they are
        value-equal.  Used as the graph component of content-addressed
        cache keys; cached after first call (the arrays are immutable
        by convention).  Arrays are streamed in fixed-size chunks, so
        the digest of a memory-mapped graph costs O(chunk) resident
        memory; the digest value is byte-for-byte the one the original
        whole-buffer implementation produced.
        """
        if self._fingerprint is None:
            import hashlib

            from repro.graph.io import madvise_dontneed

            h = hashlib.sha1()
            h.update(str(self.n_pages).encode())
            step = self.FINGERPRINT_CHUNK
            for arr in (self.indptr, self.indices, self.site_of, self.external_out):
                for lo in range(0, arr.size, step):
                    chunk = np.ascontiguousarray(arr[lo : lo + step], dtype=np.int64)
                    h.update(chunk.tobytes())
                    # Memory-mapped graphs: hand the hashed pages back
                    # as the stream advances (no-op for plain arrays).
                    madvise_dontneed(arr, lo, min(lo + step, arr.size))
            h.update("\x00".join(self.site_names).encode("utf-8"))
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_internal_links(self) -> int:
        """Number of links whose target is inside the crawl."""
        return int(self.indices.size)

    @property
    def n_external_links(self) -> int:
        """Number of links pointing outside the crawl."""
        return int(self.external_out.sum())

    @property
    def n_links(self) -> int:
        """Total number of links (internal + external)."""
        return self.n_internal_links + self.n_external_links

    @property
    def n_sites(self) -> int:
        """Number of distinct sites."""
        return len(self.site_names)

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    def internal_out_degrees(self) -> np.ndarray:
        """Out-degree counting only internal links (copy-free view math)."""
        return np.diff(self.indptr)

    def out_degrees(self) -> np.ndarray:
        """Total out-degree ``d(u)`` (internal + external), cached."""
        if self._out_deg is None:
            self._out_deg = np.diff(self.indptr) + self.external_out
        return self._out_deg

    def in_degrees(self) -> np.ndarray:
        """In-degree over internal links, cached."""
        if self._in_deg is None:
            self._in_deg = np.bincount(self.indices, minlength=self.n_pages)
        return self._in_deg

    def dangling_pages(self) -> np.ndarray:
        """Pages with total out-degree 0 (forward no rank at all)."""
        return np.flatnonzero(self.out_degrees() == 0)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def successors(self, page: int) -> np.ndarray:
        """Internal out-neighbors of ``page`` (view into CSR storage)."""
        if not 0 <= page < self.n_pages:
            raise IndexError(f"page {page} out of range [0, {self.n_pages})")
        return self.indices[self.indptr[page] : self.indptr[page + 1]]

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return internal links as parallel ``(src, dst)`` arrays."""
        src = np.repeat(np.arange(self.n_pages, dtype=np.int64), np.diff(self.indptr))
        return src, self.indices.copy()

    def adjacency(self) -> sp.csr_matrix:
        """Internal adjacency as a ``scipy.sparse.csr_matrix`` of link counts.

        Entry ``(u, v)`` is the number of links from page u to page v.
        Cached after first call.
        """
        if self._adj is None:
            src, dst = self.edges()
            data = np.ones(src.size, dtype=np.float64)
            self._adj = sp.csr_matrix(
                (data, (src, dst)), shape=(self.n_pages, self.n_pages)
            )
        return self._adj

    # ------------------------------------------------------------------
    # URLs and sites
    # ------------------------------------------------------------------
    def site_name(self, site_id: int) -> str:
        """Hostname of a site."""
        return self.site_names[site_id]

    def url_of(self, page: int) -> str:
        """Deterministic synthetic URL of a page.

        URLs are synthesized on demand rather than stored: at 1M pages a
        stored URL list dominates memory, and partitioning only needs a
        stable string per page.
        """
        if not 0 <= page < self.n_pages:
            raise IndexError(f"page {page} out of range [0, {self.n_pages})")
        host = self.site_names[int(self.site_of[page])]
        return f"http://{host}/page/{page}.html"

    def pages_of_site(self, site_id: int) -> np.ndarray:
        """All page ids belonging to ``site_id``."""
        return np.flatnonzero(self.site_of == site_id)

    # ------------------------------------------------------------------
    # Dynamic-graph support (paper §4.3: link graphs change over time)
    # ------------------------------------------------------------------
    def with_edges_added(
        self, new_src: Iterable[int], new_dst: Iterable[int]
    ) -> "WebGraph":
        """Return a new graph with extra internal links added."""
        src, dst = self.edges()
        add_src = np.asarray(list(new_src), dtype=np.int64)
        add_dst = np.asarray(list(new_dst), dtype=np.int64)
        return WebGraph(
            self.n_pages,
            np.concatenate([src, add_src]),
            np.concatenate([dst, add_dst]),
            site_of=self.site_of,
            external_out=self.external_out,
            site_names=self.site_names,
        )

    def with_edges_removed(
        self, rem_src: Iterable[int], rem_dst: Iterable[int]
    ) -> "WebGraph":
        """Return a new graph with the given internal links removed.

        Each (src, dst) pair removes *one* occurrence of that link;
        pairs not present are ignored.
        """
        src, dst = self.edges()
        keep = np.ones(src.size, dtype=bool)
        # Build a multiset of edges to remove.
        from collections import Counter

        to_remove = Counter(zip(map(int, rem_src), map(int, rem_dst)))
        for i in range(src.size):
            if not to_remove:
                break
            key = (int(src[i]), int(dst[i]))
            if to_remove.get(key, 0) > 0:
                keep[i] = False
                to_remove[key] -= 1
                if to_remove[key] == 0:
                    del to_remove[key]
        return WebGraph(
            self.n_pages,
            src[keep],
            dst[keep],
            site_of=self.site_of,
            external_out=self.external_out,
            site_names=self.site_names,
        )

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.MultiDiGraph` (small graphs only)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        for p in range(self.n_pages):
            g.add_node(p, site=int(self.site_of[p]), external_out=int(self.external_out[p]))
        src, dst = self.edges()
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        return g

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"WebGraph(n_pages={self.n_pages}, internal_links={self.n_internal_links}, "
            f"external_links={self.n_external_links}, sites={self.n_sites})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WebGraph):
            return NotImplemented
        return (
            self.n_pages == other.n_pages
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(np.sort(self._edge_keys()), np.sort(other._edge_keys()))
            and np.array_equal(self.site_of, other.site_of)
            and np.array_equal(self.external_out, other.external_out)
        )

    def _edge_keys(self) -> np.ndarray:
        """Edges encoded as single integers for order-insensitive compare."""
        src, dst = self.edges()
        return src * np.int64(max(self.n_pages, 1)) + dst
