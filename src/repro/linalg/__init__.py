"""Sparse linear-algebra kernels for rank propagation.

The paper's mathematics (§2, §3, appendix) is the fixed-point problem
``R = A R + f`` for a sparse, *substochastic* operator ``A`` with
``‖A‖∞ ≤ α < 1``.  This package provides:

* construction of the global and per-group propagation operators in
  :mod:`~repro.linalg.operators`;
* the Jacobi fixed-point kernel with full iteration accounting in
  :mod:`~repro.linalg.jacobi`;
* the norms and convergence bounds of Theorems 3.1–3.3 in
  :mod:`~repro.linalg.norms`;
* the Monte-Carlo random-walk kernel (Das Sarma et al.) with its
  statistical accuracy contract in :mod:`~repro.linalg.montecarlo`.

Everything is built on ``scipy.sparse`` CSR matrix-vector products —
one SpMV per sweep — per the HPC guidance of keeping hot loops inside
vectorized kernels.
"""

from repro.linalg.operators import (
    propagation_matrix,
    group_blocks,
    GroupBlocks,
)
from repro.linalg.jacobi import (
    JacobiResult,
    JacobiWorkspace,
    csr_matvec_into,
    jacobi_solve,
    jacobi_sweep,
)
from repro.linalg.acceleration import (
    aitken_extrapolate,
    gauss_seidel_solve,
    jacobi_solve_accelerated,
)
from repro.linalg.montecarlo import (
    MonteCarloResult,
    RandomWalkState,
    mc_error_tolerance,
    montecarlo_pagerank,
)
from repro.linalg.norms import (
    l1_norm,
    linf_norm,
    relative_l1_error,
    operator_inf_norm,
    operator_one_norm,
    spectral_radius_upper_bound,
    residual_error_bound,
    contraction_iterations_needed,
)

__all__ = [
    "propagation_matrix",
    "group_blocks",
    "GroupBlocks",
    "JacobiResult",
    "JacobiWorkspace",
    "csr_matvec_into",
    "jacobi_solve",
    "jacobi_sweep",
    "aitken_extrapolate",
    "gauss_seidel_solve",
    "jacobi_solve_accelerated",
    "MonteCarloResult",
    "RandomWalkState",
    "mc_error_tolerance",
    "montecarlo_pagerank",
    "l1_norm",
    "linf_norm",
    "relative_l1_error",
    "operator_inf_norm",
    "operator_one_norm",
    "spectral_radius_upper_bound",
    "residual_error_bound",
    "contraction_iterations_needed",
]
