"""Accelerated and alternative fixed-point solvers.

Two extensions beyond the paper's plain Jacobi iteration:

* **Gauss–Seidel** (:func:`gauss_seidel_solve`) — uses each freshly
  computed component within the same sweep by splitting
  ``A = L + U`` (strict lower / remaining) and solving
  ``(I − L)·x_{k+1} = U·x_k + f`` with a sparse triangular solve.
  For PageRank-type operators this roughly halves the sweep count at
  the same per-sweep cost; it is offered as the DPR inner solver via
  ``DPRNode(..., inner_solver="gauss_seidel")``.
* **Aitken Δ² extrapolation** (:func:`jacobi_solve_accelerated`) —
  the paper cites Kamvar et al.'s extrapolation methods [8] for
  accelerating PageRank; this implements the simplest member of that
  family: periodically replace the iterate by its componentwise
  Aitken extrapolation, which annihilates the dominant geometric
  error term.

Both return the same :class:`~repro.linalg.jacobi.JacobiResult`
contract as :func:`~repro.linalg.jacobi.jacobi_solve` so they are
drop-in replacements, and both are benchmarked against plain Jacobi in
``benchmarks/bench_solvers.py``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.linalg.jacobi import JacobiResult, jacobi_sweep
from repro.linalg.norms import l1_norm

__all__ = ["gauss_seidel_solve", "aitken_extrapolate", "jacobi_solve_accelerated"]


def gauss_seidel_solve(
    p: sp.spmatrix,
    f: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    record_history: bool = False,
) -> JacobiResult:
    """Solve ``x = Px + f`` by forward Gauss–Seidel sweeps.

    Requires ``ρ(P) < 1`` with ``P ≥ 0`` (always true for the
    propagation operators here); under those conditions Gauss–Seidel
    converges at least as fast as Jacobi (Stein–Rosenberg theorem).
    """
    f = np.asarray(f, dtype=np.float64)
    n = f.shape[0]
    if p.shape != (n, n):
        raise ValueError(f"operator shape {p.shape} incompatible with f of size {n}")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")
    if n == 0:
        return JacobiResult(np.zeros(0), 1, True, 0.0)

    csr = p.tocsr()
    lower = sp.tril(csr, k=-1, format="csr")
    upper = (csr - lower).tocsr()
    # (I - L) x_{k+1} = U x_k + f ; I - L is unit lower triangular.
    i_minus_l = (sp.identity(n, format="csr") - lower).tocsr()

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    if x.shape != (n,):
        raise ValueError(f"x0 shape {x.shape} incompatible with f of size {n}")
    deltas: List[float] = []
    delta = np.inf
    iterations = 0
    for iterations in range(1, max_iter + 1):
        rhs = upper @ x + f
        x_new = spsolve_triangular(i_minus_l, rhs, lower=True, unit_diagonal=True)
        delta = l1_norm(x_new - x)
        x = x_new
        if record_history:
            deltas.append(delta)
        if delta <= tol:
            return JacobiResult(x, iterations, True, delta, deltas)
    return JacobiResult(x, iterations, False, float(delta), deltas)


def aitken_extrapolate(
    x0: np.ndarray, x1: np.ndarray, x2: np.ndarray
) -> np.ndarray:
    """Componentwise Aitken Δ² extrapolation of three successive iterates.

    For a component following ``x_k = x* + c·λ^k`` the formula returns
    ``x*`` exactly; components where the denominator vanishes (already
    converged) keep their latest value.
    """
    d1 = x1 - x0
    d2 = x2 - x1
    denom = d2 - d1
    safe = np.abs(denom) > 1e-300
    out = x2.copy()
    out[safe] = x2[safe] - (d2[safe] ** 2) / denom[safe]
    return out


def jacobi_solve_accelerated(
    p: sp.spmatrix,
    f: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    extrapolate_every: int = 10,
    record_history: bool = False,
) -> JacobiResult:
    """Jacobi iteration with periodic Aitken Δ² extrapolation.

    Every ``extrapolate_every`` sweeps, the last three iterates are
    extrapolated and the result — clipped to be non-negative, since
    rank vectors are — replaces the current iterate.  The final answer
    still satisfies the fixed point to ``tol`` because plain sweeps
    continue from the extrapolated iterate.
    """
    if extrapolate_every < 3:
        raise ValueError("extrapolate_every must be >= 3")
    f = np.asarray(f, dtype=np.float64)
    n = f.shape[0]
    if p.shape != (n, n):
        raise ValueError(f"operator shape {p.shape} incompatible with f of size {n}")
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    deltas: List[float] = []
    delta = np.inf
    window: List[np.ndarray] = []
    iterations = 0
    for iterations in range(1, max_iter + 1):
        x_new = jacobi_sweep(p, x, f)
        delta = l1_norm(x_new - x)
        x = x_new
        if record_history:
            deltas.append(delta)
        if delta <= tol:
            return JacobiResult(x, iterations, True, delta, deltas)
        window.append(x)
        if len(window) > 3:
            window.pop(0)
        if iterations % extrapolate_every == 0 and len(window) == 3:
            x = np.maximum(aitken_extrapolate(*window), 0.0)
            window.clear()
    return JacobiResult(x, iterations, False, float(delta), deltas)
