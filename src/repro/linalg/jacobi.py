"""Jacobi fixed-point iteration for ``x = Px + f``.

This is the computational heart of both Algorithm 1 (centralized
PageRank, where ``f = (1−α)E``) and Algorithm 2 (GroupPageRank, where
``f = βE + X``).  Convergence for ``‖P‖∞ < 1`` follows from the
paper's Theorems 3.1–3.2; termination uses the step difference per
Theorem 3.3.

The sweep is a single CSR SpMV plus a vector add — the recommended
"one vectorized kernel per iteration" structure for numerical Python.

Allocation-free hot path
------------------------
``jacobi_solve`` and :func:`jacobi_sweep` accept a reusable
:class:`JacobiWorkspace`, which holds ping-pong iterate buffers and a
scratch vector so that a solve performs **zero** heap allocations per
sweep: the SpMV writes into a preallocated output via the CSR kernel,
``f`` is added in place, and the ``‖Δx‖₁`` termination reduction is
fused into the same scratch buffer.  A long-lived caller (one
:class:`~repro.core.dpr.DPRNode` per ranker) keeps one workspace for
its lifetime, so DPR1's warm-started inner solves stop generating
O(n_local) garbage every outer loop.

The workspace path performs bit-identical arithmetic to the plain
path (same CSR kernel, same operation order), which the equivalence
test layer asserts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.linalg.norms import l1_norm

try:  # scipy's raw CSR kernel: y += A @ x with no temporary
    from scipy.sparse import _sparsetools as _spt

    _CSR_MATVEC = _spt.csr_matvec
except (ImportError, AttributeError):  # pragma: no cover - old scipy
    _CSR_MATVEC = None

__all__ = [
    "JacobiResult",
    "JacobiWorkspace",
    "csr_matvec_into",
    "jacobi_sweep",
    "jacobi_solve",
]


def csr_matvec_into(p: sp.spmatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out ← P @ x`` without allocating the SpMV result.

    Uses scipy's raw CSR kernel (the same routine ``P @ x`` calls
    internally, so results are bit-identical) on a zeroed ``out``.
    Falls back to ``out[:] = P @ x`` for non-CSR operators or scipy
    builds without the private kernel.  ``out`` must not alias ``x``.
    """
    if _CSR_MATVEC is not None and isinstance(p, sp.csr_matrix):
        out[:] = 0.0
        _CSR_MATVEC(
            p.shape[0], p.shape[1], p.indptr, p.indices, p.data, x, out
        )
        return out
    out[:] = p @ x
    return out


@dataclass
class JacobiWorkspace:
    """Reusable buffers making Jacobi sweeps/solves allocation-free.

    Holds two ping-pong iterate buffers and one scratch vector for the
    fused ``‖Δx‖₁`` reduction.  One workspace serves one problem size;
    a node that lives for many outer loops allocates it once.

    Buffers returned to callers (e.g. ``JacobiResult.x`` from a
    workspace-backed solve) remain owned by the workspace: they are
    valid until the workspace's next use, so copy them out if they
    must survive (``DPRNode`` copies into its stable ``r`` array).
    """

    n: int
    _ping: np.ndarray = field(init=False, repr=False)
    _pong: np.ndarray = field(init=False, repr=False)
    _scratch: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("workspace size must be >= 0")
        self._ping = np.zeros(self.n, dtype=np.float64)
        self._pong = np.zeros(self.n, dtype=np.float64)
        self._scratch = np.zeros(self.n, dtype=np.float64)

    def check_size(self, n: int) -> None:
        """Raise if this workspace was sized for a different problem."""
        if n != self.n:
            raise ValueError(f"workspace sized for n={self.n}, problem has n={n}")

    def sliced(self, n: int) -> "JacobiWorkspace":
        """A view-workspace for a smaller problem sharing these buffers.

        Every workspace-backed solve fully (re)initializes its buffers
        from the solve's own inputs, so *sequential* solves of
        different sizes can share one max-size allocation instead of
        each holding its own — K per-group workspaces collapse to one.
        Views alias the parent's memory: never use a view concurrently
        with the parent or a sibling, and copy results out before the
        next solve (callers must already do both).
        """
        if not 0 <= n <= self.n:
            raise ValueError(f"cannot slice a size-{self.n} workspace to n={n}")
        ws = object.__new__(JacobiWorkspace)
        ws.n = n
        ws._ping = self._ping[:n]
        ws._pong = self._pong[:n]
        ws._scratch = self._scratch[:n]
        return ws

    def sweep_delta(
        self, p: sp.spmatrix, x: np.ndarray, f: np.ndarray, out: np.ndarray
    ) -> float:
        """Fused sweep + reduction: ``out ← Px + f``; returns ``‖out − x‖₁``.

        All work happens in preallocated buffers; the delta reduction
        reuses the workspace scratch vector, so the only arrays touched
        are the ones already owned by the caller/workspace.
        """
        csr_matvec_into(p, x, out)
        np.add(out, f, out=out)
        sc = self._scratch
        np.subtract(out, x, out=sc)
        np.abs(sc, out=sc)
        return float(sc.sum())


def jacobi_sweep(
    p: sp.spmatrix, x: np.ndarray, f: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """One sweep ``P @ x + f``.

    ``out`` may be provided to reuse an output buffer, in which case
    the sweep allocates nothing (the SpMV writes straight into
    ``out``); ``out`` must not alias ``x``.
    """
    if out is None:
        return p.dot(x) + f
    csr_matvec_into(p, x, out)
    np.add(out, f, out=out)
    return out


@dataclass
class JacobiResult:
    """Outcome of a Jacobi solve.

    Attributes
    ----------
    x:
        Final iterate.  For a workspace-backed solve this is a
        workspace buffer — valid until the workspace is next used.
    iterations:
        Number of sweeps performed (0 if ``x0`` already met ``tol``
        is impossible — we always perform at least one sweep).
    converged:
        Whether the step difference fell below ``tol`` within
        ``max_iter`` sweeps.
    final_delta:
        ``‖x_m − x_{m−1}‖₁`` at exit.
    deltas:
        Per-sweep step differences when ``record_history`` was set.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    final_delta: float
    deltas: List[float] = field(default_factory=list)


def jacobi_solve(
    p: sp.spmatrix,
    f: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    record_history: bool = False,
    workspace: Optional[JacobiWorkspace] = None,
) -> JacobiResult:
    """Iterate ``x ← P x + f`` until ``‖Δx‖₁ ≤ tol``.

    Parameters
    ----------
    p:
        Sparse operator with ``‖P‖∞ < 1`` for guaranteed convergence
        (not enforced; the iteration count guard catches divergence).
    f:
        Constant term.
    x0:
        Starting iterate; zeros by default (the paper's choice for the
        monotonicity theorems).
    tol:
        L1 step-difference threshold (the paper's ε).
    max_iter:
        Hard sweep limit.
    record_history:
        Keep the per-sweep ``‖Δx‖₁`` series (used by convergence
        plots/tests).
    workspace:
        Optional :class:`JacobiWorkspace` sized for this problem; when
        given, every sweep runs in the workspace's ping-pong buffers
        with zero allocations, and the returned ``x`` **aliases a
        workspace buffer** (copy it if it must outlive the next use).
        Arithmetic is bit-identical to the workspace-free path.
    """
    f = np.asarray(f, dtype=np.float64)
    n = f.shape[0]
    if p.shape != (n, n):
        raise ValueError(f"operator shape {p.shape} incompatible with f of size {n}")
    if tol < 0:
        raise ValueError("tol must be >= 0")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")
    if x0 is not None and np.shape(x0) != (n,):
        raise ValueError(f"x0 shape {np.shape(x0)} incompatible with f of size {n}")

    deltas: List[float] = []
    delta = np.inf
    iterations = 0

    if workspace is not None:
        workspace.check_size(n)
        x = workspace._ping
        y = workspace._pong
        if x0 is None:
            x[:] = 0.0
        else:
            np.copyto(x, np.asarray(x0, dtype=np.float64))
        for iterations in range(1, max_iter + 1):
            delta = workspace.sweep_delta(p, x, f, out=y)
            x, y = y, x
            if record_history:
                deltas.append(delta)
            if delta <= tol:
                return JacobiResult(
                    x=x,
                    iterations=iterations,
                    converged=True,
                    final_delta=delta,
                    deltas=deltas,
                )
        return JacobiResult(
            x=x,
            iterations=iterations,
            converged=False,
            final_delta=float(delta),
            deltas=deltas,
        )

    x = np.zeros(n, dtype=np.float64) if x0 is None else np.array(x0, dtype=np.float64)
    for iterations in range(1, max_iter + 1):
        x_new = jacobi_sweep(p, x, f)
        delta = l1_norm(x_new - x)
        x = x_new
        if record_history:
            deltas.append(delta)
        if delta <= tol:
            return JacobiResult(
                x=x,
                iterations=iterations,
                converged=True,
                final_delta=delta,
                deltas=deltas,
            )
    return JacobiResult(
        x=x,
        iterations=iterations,
        converged=False,
        final_delta=float(delta),
        deltas=deltas,
    )
