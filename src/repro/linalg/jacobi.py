"""Jacobi fixed-point iteration for ``x = Px + f``.

This is the computational heart of both Algorithm 1 (centralized
PageRank, where ``f = (1−α)E``) and Algorithm 2 (GroupPageRank, where
``f = βE + X``).  Convergence for ``‖P‖∞ < 1`` follows from the
paper's Theorems 3.1–3.2; termination uses the step difference per
Theorem 3.3.

The sweep is a single CSR SpMV plus a vector add — the recommended
"one vectorized kernel per iteration" structure for numerical Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.linalg.norms import l1_norm

__all__ = ["JacobiResult", "jacobi_sweep", "jacobi_solve"]


@dataclass
class JacobiResult:
    """Outcome of a Jacobi solve.

    Attributes
    ----------
    x:
        Final iterate.
    iterations:
        Number of sweeps performed (0 if ``x0`` already met ``tol``
        is impossible — we always perform at least one sweep).
    converged:
        Whether the step difference fell below ``tol`` within
        ``max_iter`` sweeps.
    final_delta:
        ``‖x_m − x_{m−1}‖₁`` at exit.
    deltas:
        Per-sweep step differences when ``record_history`` was set.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    final_delta: float
    deltas: List[float] = field(default_factory=list)


def jacobi_sweep(
    p: sp.spmatrix, x: np.ndarray, f: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """One sweep ``P @ x + f``.

    ``out`` may be provided to reuse an output buffer; note that
    ``out`` must not alias ``x``.
    """
    y = p.dot(x)
    if out is None:
        return y + f
    np.add(y, f, out=out)
    return out


def jacobi_solve(
    p: sp.spmatrix,
    f: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    record_history: bool = False,
) -> JacobiResult:
    """Iterate ``x ← P x + f`` until ``‖Δx‖₁ ≤ tol``.

    Parameters
    ----------
    p:
        Sparse operator with ``‖P‖∞ < 1`` for guaranteed convergence
        (not enforced; the iteration count guard catches divergence).
    f:
        Constant term.
    x0:
        Starting iterate; zeros by default (the paper's choice for the
        monotonicity theorems).
    tol:
        L1 step-difference threshold (the paper's ε).
    max_iter:
        Hard sweep limit.
    record_history:
        Keep the per-sweep ``‖Δx‖₁`` series (used by convergence
        plots/tests).
    """
    f = np.asarray(f, dtype=np.float64)
    n = f.shape[0]
    if p.shape != (n, n):
        raise ValueError(f"operator shape {p.shape} incompatible with f of size {n}")
    if tol < 0:
        raise ValueError("tol must be >= 0")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")
    x = np.zeros(n, dtype=np.float64) if x0 is None else np.array(x0, dtype=np.float64)
    if x.shape != (n,):
        raise ValueError(f"x0 shape {x.shape} incompatible with f of size {n}")

    deltas: List[float] = []
    delta = np.inf
    iterations = 0
    for iterations in range(1, max_iter + 1):
        x_new = jacobi_sweep(p, x, f)
        delta = l1_norm(x_new - x)
        x = x_new
        if record_history:
            deltas.append(delta)
        if delta <= tol:
            return JacobiResult(
                x=x,
                iterations=iterations,
                converged=True,
                final_delta=delta,
                deltas=deltas,
            )
    return JacobiResult(
        x=x,
        iterations=iterations,
        converged=False,
        final_delta=float(delta),
        deltas=deltas,
    )
