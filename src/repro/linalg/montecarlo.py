"""Monte-Carlo random-walk PageRank (the ``mc`` engine's kernel).

Das Sarma et al. (PAPERS.md) compute PageRank by *forwarding walk
tokens* instead of rank vectors: every page launches ``R`` tokens; at
each synchronous round a token terminates with probability ``1−α`` or
forwards along one uniformly-sampled out-link; the rank of a page is
estimated from the number of walk terminations (or visits) it
collects.  The whole computation finishes in ``O(log n / log(1/α))``
rounds — the geometric tail of the longest surviving walk — rather
than the Jacobi iteration count, which is what makes it a genuinely
different traffic shape for the transport stack: per-round message
volume *decays* as tokens die instead of staying constant.

Open-system semantics
---------------------
This repo's fixed point is the paper's §3 *open system*
``R = αA R + (1−α)E`` with ``A[v,u] = 1/d(u)`` over internal links
and ``d(u)`` the **total** out-degree (internal + external): rank
leaks through external links, and dangling pages forward nothing.
The walk process mirrors that exactly:

* a token at page ``u`` terminates with probability ``1−α``;
* otherwise it samples one of ``u``'s ``d(u)`` out-links uniformly —
  an internal link forwards the token, an external link carries it
  out of the crawl (the walk dies unseen: the rank leak);
* at a dangling page (``d(u) = 0``) the forwarding step has nowhere
  to go.  The default ``dangling="absorb"`` kills the token — the
  open-system behaviour, matching :func:`repro.core.pagerank
  .pagerank_open` — while ``dangling="jump"`` restarts it at a
  uniformly random page (the classic closed-system random jump; on
  graphs with dangling mass this *biases* the estimate relative to
  the open-system reference, so it is opt-in).

With ``E(v) = e`` for all pages, each page starts ``R`` tokens of
weight ``e`` and the estimators are unbiased for the open-system
fixed point:

* ``walk_mode="terminate"`` — ``R̂(v) = e · #terminations(v) / R``.
  Each visit terminates with probability exactly ``1−α`` regardless
  of how the non-terminating branch resolves, so
  ``E[#terminations(v)] = (1−α) · E[#visits(v)] = R·R(v)/e``.
* ``walk_mode="visit"`` — ``R̂(v) = e·(1−α) · #visits(v) / R``; the
  visit counts *are* the Neumann series ``Σ_t (αA)^t E`` sampled one
  term per round.

Both partial sums are elementwise **monotone non-decreasing** in the
round number (counts only grow), a Monte-Carlo echo of Theorem 4.1.

Accuracy contract (the "Chernoff-style" tolerance)
--------------------------------------------------
In terminate mode page ``v``'s count is a sum of ``n·R`` independent
Bernoulli indicators (each walk terminates at ``v`` at most once), so
``Var R̂(v) ≤ e·R(v)/R`` and, by Cauchy–Schwarz over pages,

    E ‖R̂ − R‖₁ / ‖R‖₁  ≤  sqrt( n / (R · ‖R‖₁/e) ).

Visit mode pays one extra factor ``sqrt(1+α)`` (a walk can revisit a
page; the return chain is dominated by a geometric with ratio ≤ α).
:func:`mc_error_tolerance` evaluates this bound times a safety
factor; since every count is a sum of independent bounded terms the
deviation above the mean decays exponentially (Chernoff), so a small
safety factor makes the bound a robust CI gate.  The key scaling —
relative L1 error ``∝ 1/sqrt(walks_per_page)`` — is what the tests
assert.  Note what the bound says about the method: full-vector L1
accuracy is *expensive* (1% error wants ~10⁴ walks/page); the
random-walk engine's economy is rounds and per-round bytes, not
precision.  See docs/ALGORITHMS.md for the comparison table.

Everything here is vectorized bulk-synchronous state: one int64
position array over the alive tokens, batched CSR out-link sampling
(``floor(u · d)`` into ``indptr``), and ``bincount`` accumulation, so
1e5–1e6-page ensembles run in the flat-engine style with no per-token
Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.graph.webgraph import WebGraph
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_fraction

__all__ = [
    "RandomWalkState",
    "MonteCarloResult",
    "montecarlo_pagerank",
    "mc_error_tolerance",
]

WALK_MODES = ("terminate", "visit")
DANGLING_MODES = ("absorb", "jump")


class RandomWalkState:
    """Vectorized synchronous random-walk ensemble over one graph.

    Holds the alive-token position array and the per-page counts; each
    :meth:`step` advances every alive token by one round and reports
    which tokens moved where (the cut-crossing information the
    distributed engine turns into messages).

    Parameters
    ----------
    graph:
        The crawl.  Only the CSR arrays and out-degrees are read.
    alpha:
        Damping factor; tokens terminate with probability ``1−α``.
    walks_per_page:
        Tokens launched per page (the estimator's ``R``).
    walk_mode:
        ``"terminate"`` credits a page when a token terminates there;
        ``"visit"`` credits every round a token spends there (scaled
        by ``1−α`` in :meth:`estimate`).
    dangling:
        ``"absorb"`` (open-system, default) or ``"jump"`` — see the
        module docstring.
    start_weight:
        Scalar ``E(v)`` all walks carry (the paper's ``E``; vector
        ``E`` would need per-token weights and is not supported).
    rng:
        Seed or :class:`numpy.random.Generator`.  All draws — one
        termination uniform and one link uniform per alive token per
        round, plus jump targets under ``dangling="jump"`` — come from
        this single stream in a fixed order, so equal seeds give
        bit-identical counts, positions, and crossing reports.
    """

    def __init__(
        self,
        graph: WebGraph,
        *,
        alpha: float = 0.85,
        walks_per_page: int = 16,
        walk_mode: str = "terminate",
        dangling: str = "absorb",
        start_weight: float = 1.0,
        rng: RngLike = 0,
    ):
        check_fraction(alpha, "alpha")
        if walks_per_page < 1:
            raise ValueError("walks_per_page must be >= 1")
        if walk_mode not in WALK_MODES:
            raise ValueError(f"walk_mode must be one of {WALK_MODES}")
        if dangling not in DANGLING_MODES:
            raise ValueError(f"dangling must be one of {DANGLING_MODES}")
        if start_weight < 0:
            raise ValueError("start_weight must be non-negative")
        self.n_pages = graph.n_pages
        self.alpha = float(alpha)
        self.walks_per_page = int(walks_per_page)
        self.walk_mode = walk_mode
        self.dangling = dangling
        self.start_weight = float(start_weight)
        self._rng = as_generator(rng)
        self._indptr = graph.indptr
        self._indices = graph.indices
        self._internal_deg = np.diff(graph.indptr)
        self._total_deg = self._internal_deg + graph.external_out
        #: Integer counts — exact, so two equal-seed runs agree bit
        #: for bit and the estimate is a deterministic function of them.
        self._counts = np.zeros(self.n_pages, dtype=np.int64)
        self._pos = np.repeat(
            np.arange(self.n_pages, dtype=np.int64), self.walks_per_page
        )
        self.rounds = 0

    # ------------------------------------------------------------------
    @property
    def pos(self) -> np.ndarray:
        """Positions of the alive tokens (valid until the next step)."""
        return self._pos

    @property
    def alive(self) -> int:
        """Number of tokens still walking."""
        return int(self._pos.size)

    @property
    def walks_launched(self) -> int:
        """Total tokens started (``n_pages · walks_per_page``)."""
        return self.n_pages * self.walks_per_page

    @property
    def estimate_factor(self) -> float:
        """Scalar mapping raw counts to rank units (see module docs)."""
        factor = self.start_weight / self.walks_per_page
        if self.walk_mode == "visit":
            factor *= 1.0 - self.alpha
        return factor

    def estimate(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Current rank estimate (monotone non-decreasing per round)."""
        if out is None:
            out = np.empty(self.n_pages, dtype=np.float64)
        np.multiply(self._counts, self.estimate_factor, out=out)
        return out

    # ------------------------------------------------------------------
    def step(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance every alive token by one synchronous round.

        Returns ``(src, dst, counted)``: the old and new positions of
        tokens that survived the round *and stayed inside the crawl*
        (the candidates for cut-crossing messages; under
        ``dangling="jump"`` restarted tokens appear here too, since a
        ranker must forward a restarted token to its random target),
        and the positions credited to the estimator this round (the
        per-round count increment, for convergence deltas).
        """
        pos = self._pos
        m = pos.size
        rng = self._rng
        if self.walk_mode == "visit":
            counted = pos
            if m:
                self._counts += np.bincount(pos, minlength=self.n_pages)
        # Draw 1: termination.  beta = 1 - alpha per visit, always.
        term = rng.random(m) < (1.0 - self.alpha)
        if self.walk_mode == "terminate":
            counted = pos[term]
            if counted.size:
                self._counts += np.bincount(counted, minlength=self.n_pages)
        movers = pos[~term]
        # Draw 2: one uniform out-link per surviving token, batched as
        # floor(u · d) over the *total* degree — indices < internal
        # degree name a CSR column, the rest are external links (the
        # walk leaves the crawl).  The min-clamp guards the half-ulp
        # case where u·d rounds up to d.
        d = self._total_deg[movers]
        link = (rng.random(movers.size) * d).astype(np.int64)
        np.minimum(link, np.maximum(d - 1, 0), out=link)
        internal = (d > 0) & (link < self._internal_deg[movers])
        src = movers[internal]
        dst = self._indices[self._indptr[src] + link[internal]]
        if self.dangling == "jump" and self.n_pages:
            dangling = self._total_deg[movers] == 0
            n_jump = int(np.count_nonzero(dangling))
            if n_jump:
                jump_dst = rng.integers(
                    0, self.n_pages, n_jump, dtype=np.int64
                )
                src = np.concatenate([src, movers[dangling]])
                dst = np.concatenate([dst, jump_dst])
        self._pos = dst
        self.rounds += 1
        return src, dst, counted


@dataclass
class MonteCarloResult:
    """Outcome of a centralized (single-machine) Monte-Carlo solve.

    Attributes
    ----------
    ranks:
        The rank estimate.
    rounds:
        Synchronous rounds until every token died (or ``max_rounds``).
    walks:
        Tokens launched.
    exhausted:
        True when all tokens terminated within the round budget (the
        estimate is final; more rounds cannot change it).
    """

    ranks: np.ndarray
    rounds: int
    walks: int
    exhausted: bool

    @property
    def mean_rank(self) -> float:
        return float(self.ranks.mean()) if self.ranks.size else 0.0


def montecarlo_pagerank(
    graph: WebGraph,
    *,
    alpha: float = 0.85,
    walks_per_page: int = 16,
    walk_mode: str = "terminate",
    dangling: str = "absorb",
    e: Union[float, None] = None,
    rng: RngLike = 0,
    max_rounds: int = 100_000,
) -> MonteCarloResult:
    """Run the walk ensemble to exhaustion on one machine.

    The centralized counterpart of the distributed ``mc`` engine —
    same kernel, same RNG stream, no partition or traffic — used by
    tests and as the quickest way to get a statistical rank estimate.
    ``e`` is the scalar rank source (default 1, the paper's ``E``).
    """
    state = RandomWalkState(
        graph,
        alpha=alpha,
        walks_per_page=walks_per_page,
        walk_mode=walk_mode,
        dangling=dangling,
        start_weight=1.0 if e is None else float(e),
        rng=rng,
    )
    while state.alive and state.rounds < max_rounds:
        state.step()
    return MonteCarloResult(
        ranks=state.estimate(),
        rounds=state.rounds,
        walks=state.walks_launched,
        exhausted=state.alive == 0,
    )


def mc_error_tolerance(
    reference: np.ndarray,
    walks_per_page: int,
    *,
    alpha: float = 0.85,
    walk_mode: str = "terminate",
    safety: float = 2.0,
) -> float:
    """Documented relative-L1 accuracy bound for the configured ``R``.

    Evaluates the variance bound of the module docstring —
    ``sqrt(n / (R · ‖R*‖₁/e))`` with ``e`` absorbed by using the
    reference's own mass, times ``sqrt(1+α)`` in visit mode, times
    ``safety``.  The expectation bound plus Chernoff concentration of
    the independent per-walk contributions makes ``safety=2`` a
    reliable CI gate; this is the tolerance ``BENCH_mc.json`` gates
    the measured error against.
    """
    if walks_per_page < 1:
        raise ValueError("walks_per_page must be >= 1")
    if walk_mode not in WALK_MODES:
        raise ValueError(f"walk_mode must be one of {WALK_MODES}")
    ref = np.asarray(reference, dtype=np.float64)
    mass = float(np.abs(ref).sum())
    if ref.size == 0 or mass == 0.0:
        return 0.0
    bound = float(np.sqrt(ref.size / (walks_per_page * mass)))
    if walk_mode == "visit":
        bound *= float(np.sqrt(1.0 + alpha))
    return safety * bound
