"""Vector/operator norms and the paper's convergence bounds.

Theorem 3.1 (paper, citing Axelsson): ``x = Ax + f`` converges iff
``ρ(A) < 1``.  Theorem 3.2: ``ρ(A) ≤ ‖A‖`` for any operator norm.
Theorem 3.3: if ``‖A‖ < 1`` then the distance to the fixed point is
bounded by ``‖A‖/(1−‖A‖)·‖x_m − x_{m−1}‖`` — which justifies using the
step difference as the termination test in Algorithms 1 and 2.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_fraction, check_non_negative

__all__ = [
    "l1_norm",
    "linf_norm",
    "relative_l1_error",
    "operator_inf_norm",
    "operator_one_norm",
    "spectral_radius_upper_bound",
    "residual_error_bound",
    "pre_sweep_error_bound",
    "contraction_iterations_needed",
]


def l1_norm(x: np.ndarray) -> float:
    """``‖x‖₁`` — the norm used throughout the paper's algorithms."""
    return float(np.abs(np.asarray(x, dtype=np.float64)).sum())


def linf_norm(x: np.ndarray) -> float:
    """``‖x‖∞``."""
    x = np.asarray(x, dtype=np.float64)
    return float(np.abs(x).max()) if x.size else 0.0


def relative_l1_error(x: np.ndarray, reference: np.ndarray) -> float:
    """The paper's Fig. 6 metric: ``‖x − x*‖₁ / ‖x*‖₁``.

    Returns ``inf`` when the reference is the zero vector but ``x`` is
    not (a zero denominator with a nonzero numerator has no meaningful
    relative error).
    """
    x = np.asarray(x, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if x.shape != reference.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {reference.shape}")
    denom = l1_norm(reference)
    num = l1_norm(x - reference)
    if denom == 0.0:
        return 0.0 if num == 0.0 else math.inf
    return num / denom


def operator_inf_norm(a: sp.spmatrix) -> float:
    """``‖A‖∞`` = max absolute row sum of a sparse matrix."""
    a = a.tocsr()
    if a.shape[0] == 0:
        return 0.0
    row_sums = np.abs(a).sum(axis=1)
    return float(np.asarray(row_sums).max())


def operator_one_norm(a: sp.spmatrix) -> float:
    """``‖A‖₁`` = max absolute column sum of a sparse matrix.

    The propagation operators of :mod:`repro.linalg.operators` are
    stored in propagation orientation (``P[v,u] = α/d(u)``), which is
    the transpose of the paper's ``A``; the paper's bound
    ``‖A‖∞ ≤ α`` therefore reads ``‖P‖₁ ≤ α`` here.
    """
    a = a.tocsc()
    if a.shape[1] == 0:
        return 0.0
    col_sums = np.abs(a).sum(axis=0)
    return float(np.asarray(col_sums).max())


def spectral_radius_upper_bound(a: sp.spmatrix) -> float:
    """Theorem 3.2 bound: ``ρ(A) ≤ min(‖A‖∞, ‖A‖₁)``.

    (``ρ(A) = ρ(Aᵀ)``, so both operator norms bound the radius.)  For
    the paper's propagation operators this evaluates to at most the
    damping factor α, proving (Thm 3.1) that GroupPageRank converges.
    """
    return min(operator_inf_norm(a), operator_one_norm(a))


def residual_error_bound(operator_norm: float, step_difference: float) -> float:
    """Theorem 3.3: ``‖x* − x_m‖ ≤ ‖A‖/(1−‖A‖) · ‖x_m − x_{m−1}‖``."""
    check_fraction(operator_norm, "operator_norm")
    check_non_negative(step_difference, "step_difference")
    return operator_norm / (1.0 - operator_norm) * step_difference


def pre_sweep_error_bound(operator_norm: float, step_difference: float) -> float:
    """Distance to the fixed point of the iterate *before* a sweep.

    Theorem 3.3 bounds the post-sweep iterate: ``‖x* − x_m‖ ≤
    ‖A‖/(1−‖A‖)·Δ`` with ``Δ = ‖x_m − x_{m−1}‖``.  A *serving* system
    measures ``Δ`` with a certification sweep but keeps answering
    queries from the pre-sweep vector ``x_{m−1}``, so its bound gains
    one triangle-inequality step::

        ‖x* − x_{m−1}‖ ≤ Δ + ‖x* − x_m‖ ≤ Δ/(1 − ‖A‖)

    This is the staleness certificate of the serving tier
    (:mod:`repro.serve.incremental`): one O(nnz) sweep converts the
    currently-served vector's step difference into a hard bound on its
    distance to the current graph's fixed point.
    """
    check_fraction(operator_norm, "operator_norm")
    check_non_negative(step_difference, "step_difference")
    return step_difference / (1.0 - operator_norm)


def contraction_iterations_needed(
    operator_norm: float, initial_error: float, target_error: float
) -> int:
    """Iterations guaranteed to reduce the error below ``target_error``.

    A contraction with factor ``‖A‖`` shrinks the error geometrically,
    so ``m ≥ log(target/initial)/log(‖A‖)`` sweeps suffice.  Used by the
    capacity-planning example to translate the paper's per-iteration
    time bound (Table 1) into end-to-end convergence time.
    """
    check_fraction(operator_norm, "operator_norm")
    if initial_error <= 0 or target_error <= 0:
        raise ValueError("errors must be positive")
    if target_error >= initial_error:
        return 0
    return int(math.ceil(math.log(target_error / initial_error) / math.log(operator_norm)))
