"""Construction of rank-propagation operators.

Orientation convention
----------------------
The paper writes ``R = AR + f`` with ``A[u,v] = α/d(u)`` "if there is an
edge from u to v" and then multiplies ``A·R`` — i.e. its matrix is
implicitly the transpose of the adjacency direction.  We store the
operator explicitly in *propagation orientation*: ``P[v, u] = α/d(u)``
for each link ``u → v``, so that a Jacobi sweep is the plain SpMV
``R_new = P @ R + f`` with no transposition at call sites.

``d(u)`` is the **total** out-degree (internal + external links), so
rows of ``P`` sum to at most α and strictly less wherever a page has
external links — the open-system rank leak of §3.

Group blocks
------------
For a partitioned graph, :func:`group_blocks` splits ``P`` into one
diagonal block per group (rank flowing inside a ranker) and one
off-diagonal block per ordered group pair with at least one cut link
(rank flowing between rankers, i.e. the payload of the transports of
§4.4).  Diagonal blocks power ``GroupPageRank``; off-diagonal blocks
compute the efferent vectors ``Y``.

Stacked efferent operators
--------------------------
Computing ``Y`` one destination at a time means one SpMV *and* one
output allocation per destination, preceded by a scan over every
cross block to find this group's.  At build time we therefore
vertically stack each source group's cross blocks (destinations in
ascending order) into a single CSR ``efferent operator`` with a
destination-offset table, and precompute the group-pair adjacency
(``destinations_of``/``sources_of``).  :meth:`GroupBlocks.efferent`
then runs **one** SpMV for all destinations and returns zero-copy
views into the stacked output; :meth:`GroupBlocks.efferent_into`
is the fully allocation-free variant for hot loops.  Row slices of
the stacked operator are the rows of the original blocks, so results
are bit-identical to the per-block products (asserted by the
equivalence tests against :meth:`GroupBlocks.efferent_reference`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.partition import Partition
from repro.graph.webgraph import WebGraph
from repro.linalg.jacobi import csr_matvec_into
from repro.utils.validation import check_fraction

__all__ = [
    "propagation_matrix",
    "group_blocks",
    "source_group_blocks",
    "GroupBlocks",
]


def propagation_matrix(graph: WebGraph, alpha: float = 0.85) -> sp.csr_matrix:
    """Global propagation operator ``P`` with ``P[v,u] = α/d(u)``.

    Duplicate links accumulate (two links u→v confer rank twice).
    Dangling pages (``d(u)=0``) produce empty columns: they forward no
    rank, matching Algorithm 2's ``B[u,v]`` guard ``d(u)>0``.
    """
    check_fraction(alpha, "alpha")
    n = graph.n_pages
    src, dst = graph.edges()
    d = graph.out_degrees().astype(np.float64)
    with np.errstate(divide="ignore"):
        inv_d = np.where(d > 0, 1.0 / np.maximum(d, 1e-300), 0.0)
    data = alpha * inv_d[src]
    return sp.csr_matrix((data, (dst, src)), shape=(n, n))


@dataclass
class GroupBlocks:
    """Per-group decomposition of the propagation operator.

    Attributes
    ----------
    alpha:
        Damping factor used to scale the blocks.
    pages:
        ``pages[g]`` — sorted global page ids owned by group ``g``;
        local index ``i`` within a group refers to ``pages[g][i]``.
    diag:
        ``diag[g]`` — CSR block mapping group ``g``'s local rank vector
        to the in-group rank it receives (the ``A`` of Algorithm 2).
    cross:
        ``cross[(g, h)]`` — CSR block mapping group ``g``'s local rank
        vector to the afferent contribution arriving at group ``h``
        (shape ``(len(pages[h]), len(pages[g]))``).  Only pairs with at
        least one cut link are present.
    """

    alpha: float
    pages: List[np.ndarray]
    diag: List[sp.csr_matrix]
    cross: Dict[Tuple[int, int], sp.csr_matrix] = field(default_factory=dict)
    #: Built once from ``cross`` in ``__post_init__`` (see module docs).
    _dests: List[List[int]] = field(init=False, repr=False)
    _srcs: List[List[int]] = field(init=False, repr=False)
    #: Stacked efferent operators, built on first use: they duplicate
    #: every cross block's storage, and the flat engine — which
    #: assembles its own compressed cut matrix straight from ``cross``
    #: — never needs them.  Only the event engine's per-node
    #: ``efferent_into`` calls pay the copy.
    _efferent_op: Optional[List[sp.csr_matrix]] = field(init=False, repr=False)
    _efferent_offsets: Optional[List[np.ndarray]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        k = self.n_groups
        self._dests = [[] for _ in range(k)]
        self._srcs = [[] for _ in range(k)]
        for g, h in sorted(self.cross):
            self._dests[g].append(h)
            self._srcs[h].append(g)
        self._efferent_op = None
        self._efferent_offsets = None

    def _ensure_efferent(self) -> None:
        if self._efferent_op is not None:
            return
        self._efferent_op = []
        self._efferent_offsets = []
        for g in range(self.n_groups):
            dests = self._dests[g]
            if dests:
                stack = [self.cross[(g, h)] for h in dests]
                op = sp.vstack(stack, format="csr")
                offsets = np.concatenate(
                    [[0], np.cumsum([b.shape[0] for b in stack])]
                ).astype(np.int64)
            else:
                op = sp.csr_matrix((0, self.group_size(g)))
                offsets = np.zeros(1, dtype=np.int64)
            self._efferent_op.append(op)
            self._efferent_offsets.append(offsets)

    @property
    def n_groups(self) -> int:
        return len(self.pages)

    def group_size(self, g: int) -> int:
        """Number of pages owned by group ``g``."""
        return int(self.pages[g].size)

    def destinations_of(self, g: int) -> List[int]:
        """Groups that receive rank from group ``g`` (sorted).

        Precomputed at build time; no scan over the cross dict.
        """
        return list(self._dests[g])

    def sources_of(self, h: int) -> List[int]:
        """Groups that send rank to group ``h`` (sorted).

        Precomputed at build time; no scan over the cross dict.
        """
        return list(self._srcs[h])

    def apply_local(self, g: int, r: np.ndarray) -> np.ndarray:
        """One in-group propagation: returns ``diag[g] @ r``."""
        return self.diag[g] @ r

    def efferent_rows(self, g: int) -> int:
        """Total output length of group ``g``'s stacked efferent operator.

        Computed from the cross block shapes — does not force the
        stacked operators to be built.
        """
        return int(sum(self.cross[(g, h)].shape[0] for h in self._dests[g]))

    def efferent_buffer(self, g: int) -> np.ndarray:
        """Allocate an output buffer suitable for :meth:`efferent_into`."""
        return np.zeros(self.efferent_rows(g), dtype=np.float64)

    def efferent_operator(self, g: int) -> sp.csr_matrix:
        """Group ``g``'s stacked efferent operator (read-only).

        The vertical stack of ``cross[(g, h)]`` for ``h`` in
        :meth:`destinations_of` order; row slices are the rows of the
        original blocks.  Built lazily on first access.
        """
        self._ensure_efferent()
        return self._efferent_op[g]

    def efferent(self, g: int, r: np.ndarray) -> Dict[int, np.ndarray]:
        """Efferent contributions ``Y`` of group ``g`` given its rank ``r``.

        Returns a dict ``destination group -> dense vector`` over the
        destination group's local pages.  This is the paper's
        ``Y = B·R`` computed per destination, with the matrix entry
        corrected to ``α/d(u)`` (see DESIGN.md, "Known typo handled").

        One SpMV over the stacked efferent operator serves every
        destination; the returned vectors are views into a single
        fresh output array (safe to hand to in-flight messages — the
        array is not reused by later calls).
        """
        self._ensure_efferent()
        y = self._efferent_op[g] @ np.asarray(r, dtype=np.float64)
        return self._slice_efferent(g, y)

    def efferent_into(
        self, g: int, r: np.ndarray, out: np.ndarray
    ) -> Dict[int, np.ndarray]:
        """Allocation-free :meth:`efferent`: one SpMV into ``out``.

        ``out`` must have length :meth:`efferent_rows`; the returned
        dict holds views into ``out``, valid until ``out`` is reused.
        """
        if out.shape != (self.efferent_rows(g),):
            raise ValueError(
                f"out has shape {out.shape}, want ({self.efferent_rows(g)},)"
            )
        self._ensure_efferent()
        csr_matvec_into(self._efferent_op[g], r, out)
        return self._slice_efferent(g, out)

    def _slice_efferent(self, g: int, y: np.ndarray) -> Dict[int, np.ndarray]:
        self._ensure_efferent()
        offsets = self._efferent_offsets[g]
        return {
            h: y[offsets[i] : offsets[i + 1]]
            for i, h in enumerate(self._dests[g])
        }

    def efferent_reference(self, g: int, r: np.ndarray) -> Dict[int, np.ndarray]:
        """Naive per-destination efferent (the pre-stacking implementation).

        Scans every cross block and runs one SpMV per destination.
        Kept as the ground truth for the kernel-equivalence tests and
        the before/after benchmarks.
        """
        out: Dict[int, np.ndarray] = {}
        for (src, h), block in self.cross.items():
            if src == g:
                out[h] = block @ r
        return out

    def total_cut_entries(self) -> int:
        """Total stored entries across all cross blocks (≈ cut links)."""
        return sum(int(b.nnz) for b in self.cross.values())

    def release_cross(self) -> None:
        """Drop the cross-block matrices to reclaim their memory.

        The flat engine copies every cross entry into its global cut
        matrix at construction, after which the per-pair matrices are
        dead weight — at K groups their row pointers alone hold K·n
        entries, the dominant term of the builder's footprint on large
        graphs.  After release only the diagonal operators, page maps,
        and topology queries (:meth:`destinations_of` /
        :meth:`sources_of`) remain usable; efferent products and
        :meth:`total_cut_entries` must not be called.
        """
        self.cross.clear()
        self._efferent_op = None
        self._efferent_offsets = None


def group_blocks(
    graph: WebGraph,
    partition: Partition,
    alpha: float = 0.85,
    *,
    mode: str = "auto",
    chunk_edges: int = 1 << 18,
) -> GroupBlocks:
    """Split the propagation operator along a partition.

    Two equivalent builders:

    * ``"eager"`` — one vectorized pass over the full edge list:
      materialize ``(src, dst)``, argsort by ordered group pair, and
      convert each bucket to a CSR block.  Fastest for in-memory
      graphs, but the intermediates are several multiples of the edge
      list.
    * ``"streamed"`` — two bounded passes over CSR page ranges
      (``chunk_edges`` links at a time): pass 1 counts each block's
      per-row entries, pass 2 scatters values into the preallocated
      block arrays through per-row cursors.  Peak transient memory is
      one chunk plus the finished blocks, which is what lets a
      memory-mapped 1e7-page graph rank within the out-of-core
      budget; touched mmap pages are released with ``madvise`` as the
      stream advances.

    ``"auto"`` picks ``"streamed"`` exactly when the graph's CSR
    arrays are memory-mapped (see :func:`repro.graph.io.load_webgraph`),
    so the whole engine stack switches builders by loading the graph
    with ``mmap=True`` — no call-site changes.  Both builders produce
    bit-identical blocks (same values, same canonical CSR layout;
    asserted in ``tests/test_outofcore.py``).
    """
    check_fraction(alpha, "alpha")
    if partition.n_pages != graph.n_pages:
        raise ValueError("partition and graph disagree on n_pages")
    if mode == "auto":
        from repro.graph.io import backing_memmap

        mode = "streamed" if backing_memmap(graph.indices) is not None else "eager"
    if mode == "streamed":
        return _group_blocks_streamed(graph, partition, alpha, chunk_edges)
    if mode != "eager":
        raise ValueError(f"unknown group_blocks mode {mode!r}")

    src, dst = graph.edges()
    d = graph.out_degrees().astype(np.float64)
    with np.errstate(divide="ignore"):
        inv_d = np.where(d > 0, 1.0 / np.maximum(d, 1e-300), 0.0)
    data = alpha * inv_d[src]

    group_of = partition.group_of
    local = partition.local_index()
    k = partition.n_groups
    pages = [partition.pages_of_group(g) for g in range(k)]
    sizes = [p.size for p in pages]

    gs = group_of[src]
    gd = group_of[dst]
    pair_key = gs * np.int64(k) + gd
    order = np.argsort(pair_key, kind="stable")
    pk_sorted = pair_key[order]
    boundaries = np.flatnonzero(np.diff(pk_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [pk_sorted.size]])

    ls = local[src][order]
    ld = local[dst][order]
    dat = data[order]

    diag: List[Optional[sp.csr_matrix]] = [None] * k
    cross: Dict[Tuple[int, int], sp.csr_matrix] = {}
    for s, e in zip(starts, ends):
        if s == e:
            continue
        key = int(pk_sorted[s])
        g, h = divmod(key, k)
        block = sp.csr_matrix(
            (dat[s:e], (ld[s:e], ls[s:e])), shape=(sizes[h], sizes[g])
        )
        if g == h:
            diag[g] = block
        else:
            cross[(g, h)] = block
    for g in range(k):
        if diag[g] is None:
            diag[g] = sp.csr_matrix((sizes[g], sizes[g]))
    return GroupBlocks(alpha=alpha, pages=pages, diag=diag, cross=cross)  # type: ignore[arg-type]


def source_group_blocks(
    alpha: float,
    g: int,
    src_local: np.ndarray,
    dst_global: np.ndarray,
    out_degrees: np.ndarray,
    group_of: np.ndarray,
    local_index: np.ndarray,
    group_sizes: Sequence[int],
) -> Tuple[sp.csr_matrix, Dict[int, sp.csr_matrix]]:
    """Rebuild the operator *columns* owned by one source group.

    The propagation entry ``α/d(u)`` depends only on the source page
    ``u``, so mutating any page's out-links invalidates exactly the
    blocks whose *source* is that page's group: ``diag[g]`` and every
    ``cross[(g, h)]``.  This kernel rebuilds that column stripe from
    the group's current edge list in one vectorized pass — the unit of
    incremental maintenance in :mod:`repro.serve.incremental`.

    Parameters
    ----------
    alpha:
        Damping factor.
    g:
        The source group being rebuilt.
    src_local:
        Per-edge local index of the source page within group ``g``.
    dst_global:
        Per-edge global destination page id (parallel to
        ``src_local``).
    out_degrees:
        **Total** out-degree (internal + external) per local page of
        group ``g`` — the ``d(u)`` denominators.
    group_of, local_index:
        Global page id -> owning group / local index within it.
    group_sizes:
        Current page count of every group (block shapes).

    Returns ``(diag, cross)`` where ``diag`` is group ``g``'s diagonal
    block and ``cross`` maps each destination group ``h != g`` with at
    least one edge to its ``cross[(g, h)]`` block.  Duplicate links
    accumulate exactly as in :func:`group_blocks` (COO→CSR conversion
    sums equal ``α/d(u)`` values), so a stripe rebuilt here is
    bit-identical to the same stripe of a from-scratch
    :func:`group_blocks` build.
    """
    check_fraction(alpha, "alpha")
    size_g = int(group_sizes[g])
    k = len(group_sizes)
    src_local = np.asarray(src_local, dtype=np.int64)
    dst_global = np.asarray(dst_global, dtype=np.int64)
    if src_local.shape != dst_global.shape:
        raise ValueError("src_local and dst_global must be parallel arrays")
    d = np.asarray(out_degrees, dtype=np.float64)
    if d.shape != (size_g,):
        raise ValueError(f"out_degrees must have shape ({size_g},), got {d.shape}")
    with np.errstate(divide="ignore"):
        inv_d = np.where(d > 0, 1.0 / np.maximum(d, 1e-300), 0.0)
    data = alpha * inv_d[src_local]

    gd = group_of[dst_global]
    ld = local_index[dst_global]
    order = np.argsort(gd, kind="stable")
    gd_sorted = gd[order]
    boundaries = np.flatnonzero(np.diff(gd_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [gd_sorted.size]])

    ls = src_local[order]
    lds = ld[order]
    dat = data[order]

    diag: Optional[sp.csr_matrix] = None
    cross: Dict[int, sp.csr_matrix] = {}
    for s, e in zip(starts, ends):
        if s == e:
            continue
        h = int(gd_sorted[s])
        block = sp.csr_matrix(
            (dat[s:e], (lds[s:e], ls[s:e])),
            shape=(int(group_sizes[h]), size_g),
        )
        if h == g:
            diag = block
        else:
            cross[h] = block
    if diag is None:
        diag = sp.csr_matrix((size_g, size_g))
    if k and diag.shape[0] != size_g:  # pragma: no cover - defensive
        raise AssertionError("diag block shape mismatch")
    return diag, cross


def _edge_chunks(indptr: np.ndarray, n_pages: int, chunk_edges: int):
    """Yield page ranges ``(p0, p1)`` covering ~``chunk_edges`` links each."""
    p0 = 0
    while p0 < n_pages:
        p1 = int(np.searchsorted(indptr, int(indptr[p0]) + chunk_edges, side="left"))
        p1 = min(max(p1, p0 + 1), n_pages)
        yield p0, p1
        p0 = p1


def _group_blocks_streamed(
    graph: WebGraph, partition: Partition, alpha: float, chunk_edges: int
) -> GroupBlocks:
    """Two-pass bounded-memory builder (see :func:`group_blocks`).

    Correctness relies on CSR order: streaming pages ascending means
    each block row receives its entries in ascending local-column
    order (local indices are monotone in page id within a group), with
    duplicate links adjacent.  ``sum_duplicates`` then canonicalizes
    each block exactly like the eager path's COO→CSR conversion —
    summed duplicates are sums of *equal* values (``α/d(u)`` depends
    only on the source page), so the summation order cannot change
    the result bits.
    """
    from repro.graph.io import madvise_dontneed

    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    group_of = partition.group_of
    local = partition.local_index()
    k = partition.n_groups
    pages = [partition.pages_of_group(g) for g in range(k)]
    sizes = [p.size for p in pages]
    n = graph.n_pages
    indptr = graph.indptr
    indices = graph.indices
    # Row counts, row pointers, and cursors total O(K·n) entries; at
    # 1e7 pages that term dominates the builder's footprint, so use
    # int32 whenever every count/pointer/local-column value fits
    # (values are bounded by the internal link count / page count).
    i32max = np.iinfo(np.int32).max
    cnt_dtype = np.int32 if graph.n_internal_links < i32max else np.int64
    idx_dtype = (
        np.int32 if graph.n_internal_links < i32max and n < i32max else np.int64
    )
    if local.dtype != idx_dtype and n < i32max:
        local = local.astype(np.int32)
    # 1/d(u) with dangling pages zeroed, computed in place: same
    # divisions, same bits as the expression form, but only one
    # n-sized float temporary is ever live.
    counts64 = graph.out_degrees()
    dangling = counts64 == 0
    inv_d = counts64.astype(np.float64)
    del counts64
    np.maximum(inv_d, 1e-300, out=inv_d)
    np.divide(1.0, inv_d, out=inv_d)
    inv_d[dangling] = 0.0
    del dangling

    def sorted_chunk(p0: int, p1: int):
        """Chunk edges sorted by (block, row); run = one (block, row).

        Per-source quantities come from page-level slices expanded by
        ``np.repeat`` — the CSR layout guarantees the expansion equals
        indexing by an explicit per-edge source array, without ever
        materializing one.
        """
        lo, hi = int(indptr[p0]), int(indptr[p1])
        dst = np.asarray(indices[lo:hi], dtype=np.int64)
        deg = np.diff(np.asarray(indptr[p0 : p1 + 1], dtype=np.int64))
        key = np.repeat(group_of[p0:p1] * np.int64(k), deg) + group_of[dst]
        ld = local[dst]
        order = np.lexsort((ld, key))
        ks, lds = key[order], ld[order]
        if ks.size:
            run_first = np.flatnonzero(
                np.r_[True, (np.diff(ks) != 0) | (np.diff(lds) != 0)]
            )
            pair_first = np.flatnonzero(np.r_[True, np.diff(ks) != 0])
        else:
            run_first = pair_first = np.zeros(0, dtype=np.int64)
        return lo, hi, deg, order, ks, lds, run_first, pair_first

    # --- pass 1: per-(block, row) entry counts -------------------------
    counts: Dict[int, np.ndarray] = {}
    for p0, p1 in _edge_chunks(indptr, n, chunk_edges):
        lo, hi, _, _, ks, lds, run_first, pair_first = sorted_chunk(p0, p1)
        run_len = np.diff(np.r_[run_first, ks.size])
        pair_end = np.r_[pair_first[1:], ks.size]
        for s, e in zip(pair_first, pair_end):
            pk = int(ks[s])
            cnt = counts.get(pk)
            if cnt is None:
                cnt = counts[pk] = np.zeros(sizes[pk % k], dtype=cnt_dtype)
            # Runs are unique rows within the chunk, so a plain fancy
            # add is collision-free.
            r0 = np.searchsorted(run_first, s, side="left")
            r1 = np.searchsorted(run_first, e, side="left")
            cnt[lds[run_first[r0:r1]]] += run_len[r0:r1]
        madvise_dontneed(indices, lo, hi)

    # --- allocate final blocks, turn counts into write cursors --------
    blk_indptr: Dict[int, np.ndarray] = {}
    blk_indices: Dict[int, np.ndarray] = {}
    cursor: Dict[int, np.ndarray] = {}
    for pk in sorted(counts):
        cnt = counts.pop(pk)
        nnz = int(cnt.sum())
        # Row-start trick: bip[1:] starts as each row's write cursor
        # (the exclusive prefix sum) and is advanced in place by pass
        # 2, after which it holds exactly the final inclusive row
        # pointer — the cursors never need their own O(rows) copy.
        bip = np.zeros(cnt.size + 1, dtype=cnt_dtype)
        if cnt.size > 1:
            np.cumsum(cnt[:-1], out=bip[2:])
        blk_indptr[pk] = bip
        blk_indices[pk] = np.empty(nnz, dtype=idx_dtype)
        cursor[pk] = bip[1:]

    # --- pass 2: scatter column indices through the cursors ------------
    # Only indices are scattered; values are recovered at assembly from
    # the column index (every entry of block (g, h) column ``c`` is
    # exactly ``α/d(pages[g][c])``), which keeps a float64 copy of the
    # whole edge list out of the builder's peak.
    for p0, p1 in _edge_chunks(indptr, n, chunk_edges):
        lo, hi, deg, order, ks, lds, run_first, pair_first = sorted_chunk(p0, p1)
        lss = np.repeat(local[p0:p1], deg)[order]
        run_id = np.zeros(ks.size, dtype=np.int64)
        run_id[run_first[1:]] = 1
        np.cumsum(run_id, out=run_id)
        ramp = np.arange(ks.size, dtype=np.int64) - run_first[run_id]
        run_len = np.diff(np.r_[run_first, ks.size])
        pair_end = np.r_[pair_first[1:], ks.size]
        for s, e in zip(pair_first, pair_end):
            pk = int(ks[s])
            cur = cursor[pk]
            pos = cur[lds[s:e]] + ramp[s:e]
            blk_indices[pk][pos] = lss[s:e]
            r0 = np.searchsorted(run_first, s, side="left")
            r1 = np.searchsorted(run_first, e, side="left")
            cur[lds[run_first[r0:r1]]] += run_len[r0:r1]
        madvise_dontneed(indices, lo, hi)
    del cursor, local

    # --- assemble ------------------------------------------------------
    # α/d(u) per page, computed once; gathering it through a block's
    # column indices reproduces the per-edge products bit for bit
    # (same two operands per entry, in whatever order).
    np.multiply(inv_d, alpha, out=inv_d)
    diag: List[Optional[sp.csr_matrix]] = [None] * k
    cross: Dict[Tuple[int, int], sp.csr_matrix] = {}
    w_g = -1
    w: Optional[np.ndarray] = None
    for pk in sorted(blk_indptr):
        g, h = divmod(pk, k)
        bip = blk_indptr.pop(pk)
        bidx = blk_indices.pop(pk)
        if bip.dtype != np.int32 and int(bip[-1]) < i32max and sizes[g] < i32max:
            # Match scipy's own index-dtype choice (and halve the
            # blocks' index memory) wherever int32 suffices.
            bip = bip.astype(np.int32)
            bidx = bidx.astype(np.int32)
        if w_g != g:
            w_g, w = g, inv_d[pages[g]]
        block = sp.csr_matrix(
            (w[bidx], bidx, bip), shape=(sizes[h], sizes[g])
        )
        block.sum_duplicates()
        if g == h:
            diag[g] = block
        else:
            cross[(g, h)] = block
    for g in range(k):
        if diag[g] is None:
            diag[g] = sp.csr_matrix((sizes[g], sizes[g]))
    return GroupBlocks(alpha=alpha, pages=pages, diag=diag, cross=cross)  # type: ignore[arg-type]
