"""Construction of rank-propagation operators.

Orientation convention
----------------------
The paper writes ``R = AR + f`` with ``A[u,v] = α/d(u)`` "if there is an
edge from u to v" and then multiplies ``A·R`` — i.e. its matrix is
implicitly the transpose of the adjacency direction.  We store the
operator explicitly in *propagation orientation*: ``P[v, u] = α/d(u)``
for each link ``u → v``, so that a Jacobi sweep is the plain SpMV
``R_new = P @ R + f`` with no transposition at call sites.

``d(u)`` is the **total** out-degree (internal + external links), so
rows of ``P`` sum to at most α and strictly less wherever a page has
external links — the open-system rank leak of §3.

Group blocks
------------
For a partitioned graph, :func:`group_blocks` splits ``P`` into one
diagonal block per group (rank flowing inside a ranker) and one
off-diagonal block per ordered group pair with at least one cut link
(rank flowing between rankers, i.e. the payload of the transports of
§4.4).  Diagonal blocks power ``GroupPageRank``; off-diagonal blocks
compute the efferent vectors ``Y``.

Stacked efferent operators
--------------------------
Computing ``Y`` one destination at a time means one SpMV *and* one
output allocation per destination, preceded by a scan over every
cross block to find this group's.  At build time we therefore
vertically stack each source group's cross blocks (destinations in
ascending order) into a single CSR ``efferent operator`` with a
destination-offset table, and precompute the group-pair adjacency
(``destinations_of``/``sources_of``).  :meth:`GroupBlocks.efferent`
then runs **one** SpMV for all destinations and returns zero-copy
views into the stacked output; :meth:`GroupBlocks.efferent_into`
is the fully allocation-free variant for hot loops.  Row slices of
the stacked operator are the rows of the original blocks, so results
are bit-identical to the per-block products (asserted by the
equivalence tests against :meth:`GroupBlocks.efferent_reference`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.partition import Partition
from repro.graph.webgraph import WebGraph
from repro.linalg.jacobi import csr_matvec_into
from repro.utils.validation import check_fraction

__all__ = ["propagation_matrix", "group_blocks", "GroupBlocks"]


def propagation_matrix(graph: WebGraph, alpha: float = 0.85) -> sp.csr_matrix:
    """Global propagation operator ``P`` with ``P[v,u] = α/d(u)``.

    Duplicate links accumulate (two links u→v confer rank twice).
    Dangling pages (``d(u)=0``) produce empty columns: they forward no
    rank, matching Algorithm 2's ``B[u,v]`` guard ``d(u)>0``.
    """
    check_fraction(alpha, "alpha")
    n = graph.n_pages
    src, dst = graph.edges()
    d = graph.out_degrees().astype(np.float64)
    with np.errstate(divide="ignore"):
        inv_d = np.where(d > 0, 1.0 / np.maximum(d, 1e-300), 0.0)
    data = alpha * inv_d[src]
    return sp.csr_matrix((data, (dst, src)), shape=(n, n))


@dataclass
class GroupBlocks:
    """Per-group decomposition of the propagation operator.

    Attributes
    ----------
    alpha:
        Damping factor used to scale the blocks.
    pages:
        ``pages[g]`` — sorted global page ids owned by group ``g``;
        local index ``i`` within a group refers to ``pages[g][i]``.
    diag:
        ``diag[g]`` — CSR block mapping group ``g``'s local rank vector
        to the in-group rank it receives (the ``A`` of Algorithm 2).
    cross:
        ``cross[(g, h)]`` — CSR block mapping group ``g``'s local rank
        vector to the afferent contribution arriving at group ``h``
        (shape ``(len(pages[h]), len(pages[g]))``).  Only pairs with at
        least one cut link are present.
    """

    alpha: float
    pages: List[np.ndarray]
    diag: List[sp.csr_matrix]
    cross: Dict[Tuple[int, int], sp.csr_matrix] = field(default_factory=dict)
    #: Built once from ``cross`` in ``__post_init__`` (see module docs).
    _dests: List[List[int]] = field(init=False, repr=False)
    _srcs: List[List[int]] = field(init=False, repr=False)
    _efferent_op: List[sp.csr_matrix] = field(init=False, repr=False)
    _efferent_offsets: List[np.ndarray] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        k = self.n_groups
        self._dests = [[] for _ in range(k)]
        self._srcs = [[] for _ in range(k)]
        for g, h in sorted(self.cross):
            self._dests[g].append(h)
            self._srcs[h].append(g)
        self._efferent_op = []
        self._efferent_offsets = []
        for g in range(k):
            dests = self._dests[g]
            if dests:
                stack = [self.cross[(g, h)] for h in dests]
                op = sp.vstack(stack, format="csr")
                offsets = np.concatenate(
                    [[0], np.cumsum([b.shape[0] for b in stack])]
                ).astype(np.int64)
            else:
                op = sp.csr_matrix((0, self.group_size(g)))
                offsets = np.zeros(1, dtype=np.int64)
            self._efferent_op.append(op)
            self._efferent_offsets.append(offsets)

    @property
    def n_groups(self) -> int:
        return len(self.pages)

    def group_size(self, g: int) -> int:
        """Number of pages owned by group ``g``."""
        return int(self.pages[g].size)

    def destinations_of(self, g: int) -> List[int]:
        """Groups that receive rank from group ``g`` (sorted).

        Precomputed at build time; no scan over the cross dict.
        """
        return list(self._dests[g])

    def sources_of(self, h: int) -> List[int]:
        """Groups that send rank to group ``h`` (sorted).

        Precomputed at build time; no scan over the cross dict.
        """
        return list(self._srcs[h])

    def apply_local(self, g: int, r: np.ndarray) -> np.ndarray:
        """One in-group propagation: returns ``diag[g] @ r``."""
        return self.diag[g] @ r

    def efferent_rows(self, g: int) -> int:
        """Total output length of group ``g``'s stacked efferent operator."""
        return int(self._efferent_op[g].shape[0])

    def efferent_buffer(self, g: int) -> np.ndarray:
        """Allocate an output buffer suitable for :meth:`efferent_into`."""
        return np.zeros(self.efferent_rows(g), dtype=np.float64)

    def efferent_operator(self, g: int) -> sp.csr_matrix:
        """Group ``g``'s stacked efferent operator (read-only).

        The vertical stack of ``cross[(g, h)]`` for ``h`` in
        :meth:`destinations_of` order; row slices are the rows of the
        original blocks.  The flat execution engine block-diagonalizes
        these into one whole-system cut matrix.
        """
        return self._efferent_op[g]

    def efferent(self, g: int, r: np.ndarray) -> Dict[int, np.ndarray]:
        """Efferent contributions ``Y`` of group ``g`` given its rank ``r``.

        Returns a dict ``destination group -> dense vector`` over the
        destination group's local pages.  This is the paper's
        ``Y = B·R`` computed per destination, with the matrix entry
        corrected to ``α/d(u)`` (see DESIGN.md, "Known typo handled").

        One SpMV over the stacked efferent operator serves every
        destination; the returned vectors are views into a single
        fresh output array (safe to hand to in-flight messages — the
        array is not reused by later calls).
        """
        y = self._efferent_op[g] @ np.asarray(r, dtype=np.float64)
        return self._slice_efferent(g, y)

    def efferent_into(
        self, g: int, r: np.ndarray, out: np.ndarray
    ) -> Dict[int, np.ndarray]:
        """Allocation-free :meth:`efferent`: one SpMV into ``out``.

        ``out`` must have length :meth:`efferent_rows`; the returned
        dict holds views into ``out``, valid until ``out`` is reused.
        """
        if out.shape != (self.efferent_rows(g),):
            raise ValueError(
                f"out has shape {out.shape}, want ({self.efferent_rows(g)},)"
            )
        csr_matvec_into(self._efferent_op[g], r, out)
        return self._slice_efferent(g, out)

    def _slice_efferent(self, g: int, y: np.ndarray) -> Dict[int, np.ndarray]:
        offsets = self._efferent_offsets[g]
        return {
            h: y[offsets[i] : offsets[i + 1]]
            for i, h in enumerate(self._dests[g])
        }

    def efferent_reference(self, g: int, r: np.ndarray) -> Dict[int, np.ndarray]:
        """Naive per-destination efferent (the pre-stacking implementation).

        Scans every cross block and runs one SpMV per destination.
        Kept as the ground truth for the kernel-equivalence tests and
        the before/after benchmarks.
        """
        out: Dict[int, np.ndarray] = {}
        for (src, h), block in self.cross.items():
            if src == g:
                out[h] = block @ r
        return out

    def total_cut_entries(self) -> int:
        """Total stored entries across all cross blocks (≈ cut links)."""
        return sum(int(b.nnz) for b in self.cross.values())


def group_blocks(
    graph: WebGraph,
    partition: Partition,
    alpha: float = 0.85,
) -> GroupBlocks:
    """Split the propagation operator along a partition.

    Builds all diagonal and cross blocks in one vectorized pass over
    the edge list (no per-edge Python loop): edges are bucketed by
    ordered group pair, then each bucket becomes one CSR block.
    """
    check_fraction(alpha, "alpha")
    if partition.n_pages != graph.n_pages:
        raise ValueError("partition and graph disagree on n_pages")

    src, dst = graph.edges()
    d = graph.out_degrees().astype(np.float64)
    with np.errstate(divide="ignore"):
        inv_d = np.where(d > 0, 1.0 / np.maximum(d, 1e-300), 0.0)
    data = alpha * inv_d[src]

    group_of = partition.group_of
    local = partition.local_index()
    k = partition.n_groups
    pages = [partition.pages_of_group(g) for g in range(k)]
    sizes = [p.size for p in pages]

    gs = group_of[src]
    gd = group_of[dst]
    pair_key = gs * np.int64(k) + gd
    order = np.argsort(pair_key, kind="stable")
    pk_sorted = pair_key[order]
    boundaries = np.flatnonzero(np.diff(pk_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [pk_sorted.size]])

    ls = local[src][order]
    ld = local[dst][order]
    dat = data[order]

    diag: List[Optional[sp.csr_matrix]] = [None] * k
    cross: Dict[Tuple[int, int], sp.csr_matrix] = {}
    for s, e in zip(starts, ends):
        if s == e:
            continue
        key = int(pk_sorted[s])
        g, h = divmod(key, k)
        block = sp.csr_matrix(
            (dat[s:e], (ld[s:e], ls[s:e])), shape=(sizes[h], sizes[g])
        )
        if g == h:
            diag[g] = block
        else:
            cross[(g, h)] = block
    for g in range(k):
        if diag[g] is None:
            diag[g] = sp.csr_matrix((sizes[g], sizes[g]))
    return GroupBlocks(alpha=alpha, pages=pages, diag=diag, cross=cross)  # type: ignore[arg-type]
