"""Asynchronous network simulation substrate.

The paper evaluates its algorithms with a simulator ("We run a
simulator to verify the discussion", §5): page rankers wake at random
exponential intervals, exchange rank vectors, and messages may be lost.
This package provides that simulator:

* :mod:`~repro.net.simulator` — a deterministic discrete-event core
  (time-ordered heap with stable tie-breaking, so identical seeds give
  identical runs).
* :mod:`~repro.net.message` — the typed payloads: score updates (the
  paper's ``<url_from, url_to, score>`` records in vectorized form),
  DHT lookups, and multi-payload packages for indirect transmission.
* :mod:`~repro.net.transport` — **direct transmission** (lookup + end
  to end send, §4.4 Fig 3) and **indirect transmission** (hop-by-hop
  forwarding with per-neighbor pack/recombine, §4.4 Figs 4–5).
* :mod:`~repro.net.bandwidth` — message/byte accounting used to verify
  formulas 4.1–4.4 (calibrated and paper-model counters in parallel).
* :mod:`~repro.net.codec` / :mod:`~repro.net.adaptive` — delta-coded,
  error-budgeted wire compression of cross-group score updates
  (varint-packed frames, per-pair reconstruction mirrors, certified
  ε_comm accounting).
* :mod:`~repro.net.failures` — Bernoulli message loss (the paper's
  ``p``), node pause/resume churn, permanent crash injection, and
  the chaos model (duplication / reordering / ACK loss).
* :mod:`~repro.net.reliable` — ACK/retry/dedup reliability layer over
  either transport (at-least-once delivery, idempotent receive).
* :mod:`~repro.net.heartbeat` — heartbeat-based failure detection
  feeding the recovery layer.
* :mod:`~repro.net.latency` — fixed/uniform per-hop latency models.
"""

from repro.net.simulator import Simulator, EventHandle
from repro.net.message import (
    ScoreUpdate,
    Ack,
    Package,
    LookupCost,
    LINK_RECORD_BYTES,
    LOOKUP_MESSAGE_BYTES,
    ACK_MESSAGE_BYTES,
)
from repro.net.bandwidth import TrafficAccountant, TrafficSnapshot
from repro.net.codec import (
    CODECS,
    FRAME_HEADER_BYTES,
    decode_frame,
    encode_frame,
    frame_wire_bytes,
    token_frame_bytes,
)
from repro.net.adaptive import AdaptiveCodec, EncodedFrame
from repro.net.failures import (
    BernoulliLoss,
    ChaosModel,
    NoLoss,
    NodeCrashInjector,
    NodePauseInjector,
)
from repro.net.heartbeat import HeartbeatMonitor
from repro.net.latency import FixedLatency, UniformLatency, LatencyModel
from repro.net.transport import Transport, DirectTransport, IndirectTransport, build_transport
from repro.net.reliable import ReliableTransport, RetryPolicy
from repro.net.gossip import PushSumProtocol
from repro.net.tracing import MessageRecord, MessageTrace, install_tracing

__all__ = [
    "Simulator",
    "EventHandle",
    "ScoreUpdate",
    "Ack",
    "Package",
    "LookupCost",
    "LINK_RECORD_BYTES",
    "LOOKUP_MESSAGE_BYTES",
    "ACK_MESSAGE_BYTES",
    "TrafficAccountant",
    "TrafficSnapshot",
    "CODECS",
    "FRAME_HEADER_BYTES",
    "decode_frame",
    "encode_frame",
    "frame_wire_bytes",
    "token_frame_bytes",
    "AdaptiveCodec",
    "EncodedFrame",
    "BernoulliLoss",
    "ChaosModel",
    "NoLoss",
    "NodeCrashInjector",
    "NodePauseInjector",
    "HeartbeatMonitor",
    "FixedLatency",
    "UniformLatency",
    "LatencyModel",
    "Transport",
    "DirectTransport",
    "IndirectTransport",
    "build_transport",
    "ReliableTransport",
    "RetryPolicy",
    "PushSumProtocol",
    "MessageRecord",
    "MessageTrace",
    "install_tracing",
]
