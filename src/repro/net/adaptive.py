"""Adaptive per-pair codec sessions with a certified error budget.

One :class:`AdaptiveCodec` instance serves a whole run.  For every
ordered (src-group, dst-group) pair it keeps the sender-side
**reconstruction mirror** ``recon`` — the exact float64 vector the
receiver holds after replaying every frame shipped so far (frames are
exact-replay by construction, see :mod:`repro.net.codec`) — plus the
outstanding **residual** ``‖true − recon‖₁``: the efferent mass the
receiver has not seen.

Encoding one emission of the true efferent vector ``v``:

1. ``delta = v − recon``; candidate entries are those with
   ``|delta| > θ`` where ``θ = ε_pair / (2·len(v))`` (with a zero
   budget every changed entry is a candidate).
2. Candidates are quantized at the codec's width (float32 for
   ``delta``, float16 for ``delta-q16``) and the *post-frame* residual
   is computed: withheld mass plus quantization error.
3. **Budget check** — the per-pair budget is
   ``ε_pair = ε_comm / n_pairs``:

   * residual ≤ ε_pair → ship the quantized frame, advance ``recon``
     by the exact float64 upcast of what was shipped.
   * residual > ε_pair → **exact flush**: ship every index where
     ``recon ≠ v`` as float64 deltas; ``recon`` becomes ``v`` and the
     pair's residual drops to 0.
   * no candidates and residual ≤ ε_pair → suppress the frame
     entirely (zero bytes on the wire).

The invariant after every encode is therefore
``residual(pair) ≤ ε_pair``, so the total efferent perturbation the
codec ever injects is ``Σ_pairs residual ≤ ε_comm`` at all times —
the certificate :meth:`AdaptiveCodec.certified_bound` turns into a
rank-error bound via the contraction argument in DESIGN.md §15
(``‖R − R̃‖₁ ≤ ε_comm / (1 − α)``).

With the default ``ε_comm = 0`` every frame that ships is an exact
flush and unchanged vectors are suppressed for free: the codec is
**lossless** (delivered values bit-identical to an uncompressed run)
while still replacing the paper's 100 B/record charge with
~10 B/changed-entry frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.net.codec import (
    CODEC_DELTA,
    CODEC_DELTA_Q16,
    VALUE_BYTES,
    VALUE_DTYPE,
    frame_wire_bytes,
)

__all__ = ["AdaptiveCodec", "EncodedFrame"]


@dataclass
class EncodedFrame:
    """One encoded pair emission: what ships and what it costs.

    ``values`` is the receiver's post-frame reconstruction — a *view*
    of the codec's mirror, valid until the pair's next encode; copy it
    before handing it to anything with a longer lifetime (in-flight
    messages, held state).
    """

    values: np.ndarray
    wire_bytes: int
    entries: int
    exact: bool


class _PairState:
    __slots__ = ("recon", "residual")

    def __init__(self, size: int):
        self.recon = np.zeros(size, dtype=np.float64)
        self.residual = 0.0


class AdaptiveCodec:
    """Per-pair delta codec sessions under one shared error budget.

    Parameters
    ----------
    codec:
        ``"delta"`` (float32 quantized deltas) or ``"delta-q16"``
        (float16).  ``"none"`` never constructs a codec — callers skip
        the layer entirely.
    epsilon:
        The run's total error budget ε_comm in efferent L1 mass.  0
        (default) means lossless: every shipped frame is an exact
        float64 flush.
    n_pairs:
        Number of communicating pairs; the per-pair budget is
        ``epsilon / n_pairs``.
    """

    def __init__(self, codec: str, *, epsilon: float = 0.0, n_pairs: int = 1):
        if codec not in (CODEC_DELTA, CODEC_DELTA_Q16):
            raise ValueError(
                f"unknown delta codec {codec!r} (expected 'delta' or 'delta-q16')"
            )
        if epsilon < 0.0:
            raise ValueError("comm epsilon must be >= 0")
        self.codec = codec
        self.epsilon = float(epsilon)
        self.n_pairs = max(1, int(n_pairs))
        self.pair_budget = self.epsilon / self.n_pairs
        self.value_bytes = VALUE_BYTES[codec]
        self._dtype = VALUE_DTYPE[codec]
        self._pairs: Dict[Tuple[int, int], _PairState] = {}
        #: Frames shipped (quantized + exact flushes).
        self.frames = 0
        #: Emissions suppressed entirely (zero wire bytes).
        self.suppressed_frames = 0
        #: Frames escalated to an exact float64 flush.
        self.exact_flushes = 0
        #: Total entries shipped across all frames.
        self.entries_sent = 0
        #: Pair sessions dropped (receiver resync after takeover).
        self.resyncs = 0

    # ------------------------------------------------------------------
    def encode(
        self,
        src: int,
        dst: int,
        values: np.ndarray,
        index_map: Optional[np.ndarray] = None,
    ) -> Optional[EncodedFrame]:
        """Encode one emission; ``None`` means the frame was suppressed.

        ``index_map`` translates positions in ``values`` to the wire's
        destination-local index space before gap coding.  The flat
        engine passes its compressed segments with their nonzero-row
        map so frames cost exactly what the event engine's dense
        emissions cost (a dense vector's structural zeros never change,
        so both views select the same wire indices); the event engine
        passes dense vectors and no map.
        """
        vec = np.asarray(values, dtype=np.float64)
        state = self._pairs.get((src, dst))
        if state is None:
            state = _PairState(vec.size)
            self._pairs[(src, dst)] = state
        elif state.recon.size != vec.size:
            raise ValueError(
                f"pair ({src}, {dst}) efferent length changed "
                f"({state.recon.size} -> {vec.size})"
            )
        delta = vec - state.recon
        if self.pair_budget > 0.0:
            theta = self.pair_budget / (2.0 * max(1, vec.size))
            send = np.abs(delta) > theta
        else:
            send = delta != 0.0
        idx = np.flatnonzero(send)
        if idx.size == 0:
            residual = float(np.abs(delta).sum())
            if residual <= self.pair_budget:
                state.residual = residual
                self.suppressed_frames += 1
                return None
            return self._exact_flush(state, vec, delta, index_map=index_map)
        if self.pair_budget == 0.0:
            # Lossless mode: ship the changed entries exactly.
            return self._exact_flush(
                state, vec, delta, idx=idx, index_map=index_map
            )
        quant = delta[idx].astype(self._dtype).astype(np.float64)
        # Post-frame residual = withheld mass + quantization error,
        # computed *before* committing so an over-budget frame
        # escalates to a single exact flush instead of two frames.
        withheld = float(np.abs(np.where(send, 0.0, delta)).sum())
        residual = withheld + float(np.abs(delta[idx] - quant).sum())
        if residual > self.pair_budget:
            return self._exact_flush(state, vec, delta, index_map=index_map)
        state.recon[idx] += quant
        state.residual = residual
        self.frames += 1
        self.entries_sent += int(idx.size)
        wire_idx = idx if index_map is None else index_map[idx]
        return EncodedFrame(
            values=state.recon,
            wire_bytes=frame_wire_bytes(
                wire_idx, value_bytes=self.value_bytes
            ),
            entries=int(idx.size),
            exact=False,
        )

    def _exact_flush(
        self,
        state: _PairState,
        vec: np.ndarray,
        delta: np.ndarray,
        idx: Optional[np.ndarray] = None,
        index_map: Optional[np.ndarray] = None,
    ) -> EncodedFrame:
        if idx is None:
            idx = np.flatnonzero(delta)
        np.copyto(state.recon, vec)
        state.residual = 0.0
        self.frames += 1
        self.exact_flushes += 1
        self.entries_sent += int(idx.size)
        wire_idx = idx if index_map is None else index_map[idx]
        return EncodedFrame(
            values=state.recon,
            wire_bytes=frame_wire_bytes(
                wire_idx, value_bytes=self.value_bytes, exact=True
            ),
            entries=int(idx.size),
            exact=True,
        )

    # ------------------------------------------------------------------
    def recon(self, src: int, dst: int) -> np.ndarray:
        """The receiver's current reconstruction for a pair (a view)."""
        return self._pairs[(src, dst)].recon

    def reset_pair(self, src: int, dst: int) -> None:
        """Drop a pair session (receiver lost state; next frame resyncs).

        The next :meth:`encode` for the pair starts from an all-zero
        mirror, so it ships a full exact-replayable frame — the resync
        handshake a takeover or rejoin would perform on a real wire.
        """
        if self._pairs.pop((src, dst), None) is not None:
            self.resyncs += 1

    def residual_mass(self) -> float:
        """Outstanding suppressed mass Σ_pairs ‖true − recon‖₁."""
        return float(sum(s.residual for s in self._pairs.values()))

    def certified_bound(self, alpha: float) -> float:
        """Certified L1 rank-deviation bound ε_comm / (1 − α).

        Valid at every instant of the run: the encode invariant keeps
        each pair's residual at or below its budget share, so the total
        efferent perturbation never exceeds ε_comm, and the open-system
        iteration contracts perturbations by α per exchange (DESIGN.md
        §15).  With ε_comm = 0 the bound is exactly 0 — the lossless
        contract.
        """
        if alpha >= 1.0:
            raise ValueError("alpha must be < 1 for the contraction bound")
        return self.epsilon / (1.0 - alpha)

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for RunResult / reports."""
        return {
            "codec": self.codec,
            "epsilon": self.epsilon,
            "pairs": len(self._pairs),
            "frames": self.frames,
            "suppressed_frames": self.suppressed_frames,
            "exact_flushes": self.exact_flushes,
            "entries_sent": self.entries_sent,
            "resyncs": self.resyncs,
            "residual_mass": self.residual_mass(),
        }
