"""Traffic accounting.

Every physical message in the simulation is recorded here, split into
the two categories of the paper's analysis (§4.4):

* ``data`` — messages/bytes carrying score records (both transports);
* ``lookup`` — DHT resolution traffic (direct transmission only).

When a wire codec is active (``DistributedConfig.codec != "none"``)
the ``data`` counters hold the *calibrated* encoded-frame bytes, and
the parallel ``paper_data_bytes`` counter keeps accumulating what the
same messages would cost under the paper's flat 100 B/record model —
so §4.4 comparisons and compression ratios come out of one accountant.
Codec-free runs charge both counters identically.

The accountant also tracks per-node ingress/egress bytes, which is what
the per-node *bottleneck bandwidth* constraint of formula 4.7 is about,
and supports interval snapshots so benches can report per-iteration
traffic (formulas 4.1–4.4 are all per-iteration quantities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["TrafficAccountant", "TrafficSnapshot"]


@dataclass
class TrafficSnapshot:
    """Immutable copy of the counters at one instant.

    ``ack_*`` counters track the reliability layer's acknowledgement
    traffic.  They are reported separately and deliberately excluded
    from :attr:`total_messages`/:attr:`total_bytes`, which remain the
    paper's data + lookup quantities (formulas 4.1–4.4) so fault-free
    runs over the reliable transport stay comparable to plain runs.
    """

    time: float
    data_messages: int
    data_bytes: int
    lookup_messages: int
    lookup_bytes: int
    ack_messages: int = 0
    ack_bytes: int = 0
    #: Paper-model (§4.4) bytes for the same data messages; equals
    #: ``data_bytes`` unless a wire codec re-priced the payloads.
    paper_data_bytes: int = 0

    @property
    def total_messages(self) -> int:
        return self.data_messages + self.lookup_messages

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.lookup_bytes

    def delta(self, earlier: "TrafficSnapshot") -> "TrafficSnapshot":
        """Traffic between ``earlier`` and this snapshot."""
        return TrafficSnapshot(
            time=self.time,
            data_messages=self.data_messages - earlier.data_messages,
            data_bytes=self.data_bytes - earlier.data_bytes,
            lookup_messages=self.lookup_messages - earlier.lookup_messages,
            lookup_bytes=self.lookup_bytes - earlier.lookup_bytes,
            ack_messages=self.ack_messages - earlier.ack_messages,
            ack_bytes=self.ack_bytes - earlier.ack_bytes,
            paper_data_bytes=self.paper_data_bytes - earlier.paper_data_bytes,
        )


class TrafficAccountant:
    """Running counters of simulated network traffic."""

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.n_nodes = int(n_nodes)
        self.data_messages = 0
        self.data_bytes = 0
        self.lookup_messages = 0
        self.lookup_bytes = 0
        self.ack_messages = 0
        self.ack_bytes = 0
        self.paper_data_bytes = 0
        self.bytes_out = np.zeros(n_nodes, dtype=np.int64)
        self.bytes_in = np.zeros(n_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    def record_data_message(
        self,
        src: int,
        dst: int,
        n_bytes: int,
        paper_bytes: Optional[int] = None,
    ) -> None:
        """One physical score-carrying message from ``src`` to ``dst``.

        ``n_bytes`` is what actually crosses the wire (the calibrated
        charge); ``paper_bytes`` is the §4.4 flat-model charge for the
        same message, defaulting to ``n_bytes`` when no codec re-priced
        the payload.  Per-node ingress/egress aggregates track the
        calibrated bytes — they feed the bottleneck-bandwidth
        constraint (formula 4.7), which is about real link load.
        """
        self.data_messages += 1
        self.data_bytes += int(n_bytes)
        self.paper_data_bytes += int(
            n_bytes if paper_bytes is None else paper_bytes
        )
        self.bytes_out[src] += n_bytes
        self.bytes_in[dst] += n_bytes

    def record_lookup(self, src: int, hops: int, bytes_per_hop: int) -> None:
        """One DHT lookup of ``hops`` hop messages originated by ``src``.

        Intermediate-node ingress/egress is charged to the originator's
        egress aggregate only (the per-node constraint in the paper is
        about the rankers' own access links; transit traffic is covered
        by the bisection term).
        """
        self.lookup_messages += int(hops)
        total = int(hops) * int(bytes_per_hop)
        self.lookup_bytes += total
        self.bytes_out[src] += total

    def record_ack(self, src: int, dst: int, n_bytes: int) -> None:
        """One reliability-layer acknowledgement from ``src`` to ``dst``.

        ACK traffic is counted apart from data/lookup (it is not part of
        the paper's byte model) but still charged to the per-node
        ingress/egress aggregates — a real access link carries it.
        """
        self.ack_messages += 1
        self.ack_bytes += int(n_bytes)
        self.bytes_out[src] += n_bytes
        self.bytes_in[dst] += n_bytes

    def merge(self, other: "TrafficAccountant") -> None:
        """Accumulate another accountant's counters into this one.

        This is the single reporting path shared by both execution
        engines: the event engine records message-by-message, while the
        synchronous engine records one *calibration round* into a
        scratch accountant and merges it once per round — so both
        engines' :class:`TrafficSnapshot` totals come out of identical
        counter arithmetic.
        """
        if other.n_nodes != self.n_nodes:
            raise ValueError(
                f"cannot merge accountant for {other.n_nodes} nodes into "
                f"one for {self.n_nodes}"
            )
        self.data_messages += other.data_messages
        self.data_bytes += other.data_bytes
        self.lookup_messages += other.lookup_messages
        self.lookup_bytes += other.lookup_bytes
        self.ack_messages += other.ack_messages
        self.ack_bytes += other.ack_bytes
        self.paper_data_bytes += other.paper_data_bytes
        self.bytes_out += other.bytes_out
        self.bytes_in += other.bytes_in

    # ------------------------------------------------------------------
    def snapshot(self, time: float) -> TrafficSnapshot:
        """Copy the counters, stamped with the simulated time."""
        return TrafficSnapshot(
            time=float(time),
            data_messages=self.data_messages,
            data_bytes=self.data_bytes,
            lookup_messages=self.lookup_messages,
            lookup_bytes=self.lookup_bytes,
            ack_messages=self.ack_messages,
            ack_bytes=self.ack_bytes,
            paper_data_bytes=self.paper_data_bytes,
        )

    def node_bandwidth_peak(self) -> Dict[str, float]:
        """Max per-node cumulative ingress/egress bytes."""
        return {
            "max_bytes_out": float(self.bytes_out.max()),
            "max_bytes_in": float(self.bytes_in.max()),
            "mean_bytes_out": float(self.bytes_out.mean()),
            "mean_bytes_in": float(self.bytes_in.mean()),
        }
