"""Wire frames for cross-group score updates: delta + varint coding.

The paper's §4.4 byte model charges a flat
:data:`~repro.net.message.LINK_RECORD_BYTES` (100 B) per crossing link
record.  This module defines the *calibrated* alternative: a compact
frame that carries only the efferent-vector entries that changed since
the receiver's last reconstruction, as

``frame = header | varint-packed index gaps | packed value deltas``

* **Header** — :data:`FRAME_HEADER_BYTES` (5 B): one flags byte (bit 0
  marks an exact float64 flush, bits 1–7 store the value width in
  bytes) and a little-endian ``u32`` entry count.
* **Index gaps** — entry positions are destination-local indices into
  the pair's compressed efferent vector, strictly ascending; the frame
  stores ``idx[0], idx[i] - idx[i-1] - 1`` as LEB128 varints so runs of
  consecutive indices cost one byte each.
* **Values** — the per-entry deltas, packed little-endian at the
  codec's width: float32 (``delta``), float16 (``delta-q16``), or
  float64 for an exact flush.

Decoding is **exact replay**: :func:`decode_frame` returns the same
integer indices and the same float64-upcast deltas the sender applied
to its reconstruction mirror, so sender and receiver state stay
bit-identical no matter how many frames have flowed (see
:mod:`repro.net.adaptive` for the session layer that owns that
mirror).

The Monte-Carlo engine ships walk tokens, not score vectors; its
frames (:func:`encode_token_frame`) are varint gap lists over the
sorted global target page ids — exact by construction, no value
payload at all.

The hot paths never materialize frames: :func:`frame_wire_bytes` and
:func:`token_frame_bytes` compute the exact encoded size with
vectorized varint-length arithmetic, and the engines charge those
bytes to the accountant while shipping numpy views in-process.  Tests
pin ``frame_wire_bytes(...) == len(encode_frame(...))`` so the fast
size model can never drift from the real encoder.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

__all__ = [
    "CODECS",
    "CODEC_NONE",
    "CODEC_DELTA",
    "CODEC_DELTA_Q16",
    "FRAME_HEADER_BYTES",
    "EXACT_VALUE_BYTES",
    "VALUE_BYTES",
    "VALUE_DTYPE",
    "encode_uvarint",
    "decode_uvarint",
    "uvarint_sizes",
    "index_gaps",
    "frame_wire_bytes",
    "encode_frame",
    "decode_frame",
    "token_frame_bytes",
    "encode_token_frame",
    "decode_token_frame",
]

#: Codec names accepted by ``DistributedConfig.codec`` / ``--codec``.
CODEC_NONE = "none"
CODEC_DELTA = "delta"
CODEC_DELTA_Q16 = "delta-q16"
CODECS = (CODEC_NONE, CODEC_DELTA, CODEC_DELTA_Q16)

#: Fixed frame header: flags byte + little-endian u32 entry count.
FRAME_HEADER_BYTES = 5
#: Value width of an exact (float64) flush entry.
EXACT_VALUE_BYTES = 8
#: Quantized value width per codec.
VALUE_BYTES = {CODEC_DELTA: 4, CODEC_DELTA_Q16: 2}
#: Quantization dtype per codec (upcast back to float64 after rounding).
VALUE_DTYPE = {CODEC_DELTA: np.float32, CODEC_DELTA_Q16: np.float16}

_FLAG_EXACT = 0x01
_WIDTH_DTYPE = {2: "<f2", 4: "<f4", 8: "<f8"}


def encode_uvarint(value: int) -> bytes:
    """LEB128-encode one unsigned integer."""
    if value < 0:
        raise ValueError("uvarint cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one LEB128 varint at ``pos``; return ``(value, next_pos)``."""
    value = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def uvarint_sizes(values: np.ndarray) -> np.ndarray:
    """Vectorized LEB128 encoded length (bytes) per value."""
    v = np.asarray(values, dtype=np.uint64)
    sizes = np.ones(v.shape, dtype=np.int64)
    limit = int(v.max()) if v.size else 0
    for shift in range(7, 64, 7):
        if limit < (1 << shift):
            break
        sizes += v >= np.uint64(1 << shift)
    return sizes


def index_gaps(indices: np.ndarray) -> np.ndarray:
    """Strictly-ascending indices → gap form ``idx[0], diff - 1``."""
    idx = np.asarray(indices, dtype=np.int64)
    gaps = np.empty(idx.shape, dtype=np.int64)
    if idx.size:
        gaps[0] = idx[0]
        np.subtract(idx[1:], idx[:-1], out=gaps[1:])
        gaps[1:] -= 1
    if gaps.size and gaps.min() < 0:
        raise ValueError("frame indices must be strictly ascending and >= 0")
    return gaps


def frame_wire_bytes(
    indices: np.ndarray, *, value_bytes: int, exact: bool = False
) -> int:
    """Exact encoded size of a delta frame, without materializing it."""
    idx = np.asarray(indices, dtype=np.int64)
    width = EXACT_VALUE_BYTES if exact else value_bytes
    return (
        FRAME_HEADER_BYTES
        + int(uvarint_sizes(index_gaps(idx)).sum())
        + idx.size * width
    )


def encode_frame(
    indices: np.ndarray,
    deltas: np.ndarray,
    *,
    value_bytes: int,
    exact: bool = False,
) -> bytes:
    """Materialize one delta frame (tests and wire-format consumers).

    ``deltas`` are the float64 values the sender applied to its
    reconstruction mirror — already quantization-stable, i.e.
    ``float64(width(delta)) == delta`` (the adaptive layer quantizes
    before updating its mirror, so this holds by construction).
    """
    idx = np.asarray(indices, dtype=np.int64)
    vals = np.asarray(deltas, dtype=np.float64)
    if idx.shape != vals.shape:
        raise ValueError("indices and deltas must have matching shapes")
    width = EXACT_VALUE_BYTES if exact else value_bytes
    buf = bytearray()
    buf.append((_FLAG_EXACT if exact else 0) | (width << 1))
    buf += struct.pack("<I", idx.size)
    for gap in index_gaps(idx):
        buf += encode_uvarint(int(gap))
    buf += np.ascontiguousarray(vals).astype(_WIDTH_DTYPE[width]).tobytes()
    return bytes(buf)


def decode_frame(data: bytes) -> Tuple[np.ndarray, np.ndarray, bool]:
    """Exact-replay decode: ``(indices, float64 deltas, exact_flag)``.

    Applying ``state[indices] += deltas`` reproduces the sender's
    reconstruction mirror bit for bit.
    """
    flags = data[0]
    exact = bool(flags & _FLAG_EXACT)
    width = flags >> 1
    (n,) = struct.unpack_from("<I", data, 1)
    pos = FRAME_HEADER_BYTES
    gaps = np.empty(n, dtype=np.int64)
    for i in range(n):
        gaps[i], pos = decode_uvarint(data, pos)
    indices = np.cumsum(gaps + 1) - 1 if n else gaps
    vals = np.frombuffer(data, dtype=_WIDTH_DTYPE[width], count=n, offset=pos)
    return indices, vals.astype(np.float64), exact


def token_frame_bytes(sorted_ids: np.ndarray) -> int:
    """Exact encoded size of a Monte-Carlo walk-token frame.

    ``sorted_ids`` are the global target page ids of the tokens a pair
    forwards this round, ascending (duplicates allowed — a repeated id
    encodes as a zero gap, one byte).
    """
    ids = np.asarray(sorted_ids, dtype=np.int64)
    if ids.size == 0:
        return FRAME_HEADER_BYTES
    gaps = np.empty_like(ids)
    gaps[0] = ids[0]
    np.subtract(ids[1:], ids[:-1], out=gaps[1:])
    if gaps.min() < 0:
        raise ValueError("token ids must be sorted ascending and >= 0")
    return FRAME_HEADER_BYTES + int(uvarint_sizes(gaps).sum())


def encode_token_frame(sorted_ids: np.ndarray) -> bytes:
    """Materialize one walk-token frame (varint gaps, no values)."""
    ids = np.asarray(sorted_ids, dtype=np.int64)
    buf = bytearray()
    buf.append(0)
    buf += struct.pack("<I", ids.size)
    prev = 0
    for i, pid in enumerate(ids):
        gap = int(pid) - (prev if i else 0)
        if gap < 0:
            raise ValueError("token ids must be sorted ascending and >= 0")
        buf += encode_uvarint(gap)
        prev = int(pid)
    return bytes(buf)


def decode_token_frame(data: bytes) -> np.ndarray:
    """Decode a walk-token frame back to its sorted global page ids."""
    (n,) = struct.unpack_from("<I", data, 1)
    pos = FRAME_HEADER_BYTES
    ids = np.empty(n, dtype=np.int64)
    prev = 0
    for i in range(n):
        gap, pos = decode_uvarint(data, pos)
        prev = prev + gap if i else gap
        ids[i] = prev
    return ids
