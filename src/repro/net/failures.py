"""Failure injection.

Two failure modes from the paper:

* **Message loss** — "vector Y may fail to be sent to other groups
  with a probability p" (§5).  The experiment labels make clear that
  the parameter sweeps are over the *delivery* probability (the
  best-behaved curves are labelled ``p = 1``), so
  :class:`BernoulliLoss` is parameterized by ``delivery_prob``.
* **Node churn** — rankers may "sleep for some time, suspend … or even
  shutdown" (§4.2).  :class:`NodePauseInjector` schedules random pause
  windows during which a ranker skips its work loop entirely.
"""

from __future__ import annotations

from typing import List, Protocol, TYPE_CHECKING

from repro.utils.rng import as_generator, RngLike
from repro.utils.validation import check_non_negative, check_probability

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.simulator import Simulator

__all__ = ["LossModel", "NoLoss", "BernoulliLoss", "NodePauseInjector"]


class LossModel(Protocol):
    """Decides whether an outgoing score update is delivered."""

    def delivered(self, src_group: int, dst_group: int) -> bool:
        """True if this send attempt survives."""


class NoLoss:
    """Every message is delivered (the paper's ``p = 1``)."""

    def delivered(self, src_group: int, dst_group: int) -> bool:
        """Always True."""
        return True


class BernoulliLoss:
    """Independent per-send delivery with probability ``delivery_prob``.

    Applied at the origin, to the whole per-destination update — the
    granularity the paper describes (the Y vector for a destination
    group either goes out or it does not).
    """

    def __init__(self, delivery_prob: float, *, seed: RngLike = 0):
        self.delivery_prob = check_probability(delivery_prob, "delivery_prob")
        self._rng = as_generator(seed)

    def delivered(self, src_group: int, dst_group: int) -> bool:
        """Bernoulli draw: True with probability ``delivery_prob``."""
        if self.delivery_prob >= 1.0:
            return True
        return bool(self._rng.random() < self.delivery_prob)


class NodePauseInjector:
    """Randomly pauses and resumes rankers during a run.

    Each injected fault picks a ranker, pauses it at a random time and
    resumes it after an exponentially distributed outage.  Paused
    rankers skip their wake-ups (they neither compute nor send), but
    their inboxes keep accumulating — exactly the paper's "sleep /
    suspend" behaviour.  DPR1/DPR2 tolerate this by design; the failure
    tests assert the final ranks still match the centralized reference.
    """

    def __init__(
        self,
        *,
        n_faults: int,
        horizon: float,
        mean_outage: float,
        seed: RngLike = 0,
    ):
        if n_faults < 0:
            raise ValueError("n_faults must be >= 0")
        self.n_faults = int(n_faults)
        self.horizon = check_non_negative(horizon, "horizon")
        self.mean_outage = check_non_negative(mean_outage, "mean_outage")
        self._rng = as_generator(seed)
        self.injected: List[tuple] = []

    def install(self, sim: "Simulator", rankers: List) -> None:
        """Schedule the pause/resume events onto ``sim``.

        ``rankers`` must expose a boolean ``paused`` attribute (see
        :class:`repro.core.ranker.PageRanker`).
        """
        for _ in range(self.n_faults):
            node = int(self._rng.integers(0, len(rankers)))
            start = float(self._rng.random() * self.horizon)
            outage = float(self._rng.exponential(self.mean_outage))
            ranker = rankers[node]
            sim.schedule_at(start, self._set_paused, ranker, True)
            sim.schedule_at(start + outage, self._set_paused, ranker, False)
            self.injected.append((node, start, outage))

    @staticmethod
    def _set_paused(ranker, value: bool) -> None:
        ranker.paused = value
