"""Failure injection.

Failure modes, from the paper and beyond:

* **Message loss** — "vector Y may fail to be sent to other groups
  with a probability p" (§5).  The experiment labels make clear that
  the parameter sweeps are over the *delivery* probability (the
  best-behaved curves are labelled ``p = 1``), so
  :class:`BernoulliLoss` is parameterized by ``delivery_prob``.
* **Node churn** — rankers may "sleep for some time, suspend … or even
  shutdown" (§4.2).  :class:`NodePauseInjector` schedules random pause
  windows during which a ranker skips its work loop entirely.
* **Permanent crashes** — the "even shutdown" end of §4.2 taken
  literally: :class:`NodeCrashInjector` kills rankers for good.  A
  crashed ranker stops computing, sending, and acknowledging; without
  the recovery layer (:mod:`repro.core.recovery`) its page group
  freezes forever, which is exactly the failure the checkpoint-based
  takeover exists to survive.
* **Message chaos** — :class:`ChaosModel` bundles the reliability
  layer's adversaries: duplication (the same sequenced update put on
  the wire twice), reordering (random extra delay before an update is
  handed to the underlying transport), and ACK loss (the paper's ``p``
  applied to the reverse path).  All three are no-ops at their default
  probabilities so a fault-free run draws no randomness from them.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, TYPE_CHECKING

from repro.utils.rng import as_generator, RngLike
from repro.utils.validation import check_non_negative, check_probability

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.simulator import Simulator

__all__ = [
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "NodePauseInjector",
    "NodeCrashInjector",
    "ChaosModel",
]


class LossModel(Protocol):
    """Decides whether an outgoing score update is delivered."""

    def delivered(self, src_group: int, dst_group: int) -> bool:
        """True if this send attempt survives."""


class NoLoss:
    """Every message is delivered (the paper's ``p = 1``)."""

    def delivered(self, src_group: int, dst_group: int) -> bool:
        """Always True."""
        return True


class BernoulliLoss:
    """Independent per-send delivery with probability ``delivery_prob``.

    Applied at the origin, to the whole per-destination update — the
    granularity the paper describes (the Y vector for a destination
    group either goes out or it does not).
    """

    def __init__(self, delivery_prob: float, *, seed: RngLike = 0):
        self.delivery_prob = check_probability(delivery_prob, "delivery_prob")
        self._rng = as_generator(seed)

    def delivered(self, src_group: int, dst_group: int) -> bool:
        """Bernoulli draw: True with probability ``delivery_prob``."""
        if self.delivery_prob >= 1.0:
            return True
        return bool(self._rng.random() < self.delivery_prob)


class NodePauseInjector:
    """Randomly pauses and resumes rankers during a run.

    Each injected fault picks a ranker, pauses it at a random time and
    resumes it after an exponentially distributed outage.  Paused
    rankers skip their wake-ups (they neither compute nor send), but
    their inboxes keep accumulating — exactly the paper's "sleep /
    suspend" behaviour.  DPR1/DPR2 tolerate this by design; the failure
    tests assert the final ranks still match the centralized reference.
    """

    def __init__(
        self,
        *,
        n_faults: int,
        horizon: float,
        mean_outage: float,
        seed: RngLike = 0,
    ):
        if n_faults < 0:
            raise ValueError("n_faults must be >= 0")
        self.n_faults = int(n_faults)
        self.horizon = check_non_negative(horizon, "horizon")
        self.mean_outage = check_non_negative(mean_outage, "mean_outage")
        self._rng = as_generator(seed)
        self.injected: List[tuple] = []

    def install(self, sim: "Simulator", rankers: List) -> None:
        """Schedule the pause/resume events onto ``sim``.

        ``rankers`` must expose a boolean ``paused`` attribute (see
        :class:`repro.core.ranker.PageRanker`).
        """
        for _ in range(self.n_faults):
            node = int(self._rng.integers(0, len(rankers)))
            start = float(self._rng.random() * self.horizon)
            outage = float(self._rng.exponential(self.mean_outage))
            ranker = rankers[node]
            sim.schedule_at(start, self._set_paused, ranker, True)
            sim.schedule_at(start + outage, self._set_paused, ranker, False)
            self.injected.append((node, start, outage))

    @staticmethod
    def _set_paused(ranker, value: bool) -> None:
        ranker.paused = value


class NodeCrashInjector:
    """Permanently crashes a random subset of rankers.

    Each ranker independently crashes with probability ``crash_prob``;
    a doomed ranker's crash time is drawn uniformly from
    ``[after, after + horizon]`` (``after`` is the post-warmup guard:
    crashing before any useful state exists is a different, less
    interesting experiment).  Crashing sets ``ranker.crashed = True``
    — the ranker's wake loop dies, its inbox goes dark, and it never
    ACKs again, so only a failure detector + takeover can save its
    page group.

    The injector crashes *by index through the live list*, so a group
    that was already recovered onto a replacement ranker by the time
    its crash fires kills the replacement (churn on churn), which the
    recovery layer must also survive.
    """

    def __init__(
        self,
        *,
        crash_prob: float,
        after: float = 0.0,
        horizon: float = 10.0,
        max_crashes: Optional[int] = None,
        seed: RngLike = 0,
    ):
        self.crash_prob = check_probability(crash_prob, "crash_prob")
        self.after = check_non_negative(after, "after")
        self.horizon = check_non_negative(horizon, "horizon")
        self.max_crashes = None if max_crashes is None else int(max_crashes)
        if self.max_crashes is not None and self.max_crashes < 0:
            raise ValueError("max_crashes must be >= 0")
        self._rng = as_generator(seed)
        #: (group index, crash time) per scheduled crash.
        self.injected: List[tuple] = []

    def install(self, sim: "Simulator", rankers: List) -> None:
        """Draw the doomed set and schedule the crash events.

        ``rankers`` must be the *live* list (the recovery layer swaps
        replacements into it); entries must expose a writable
        ``crashed`` attribute.
        """
        for g in range(len(rankers)):
            if self._rng.random() >= self.crash_prob:
                continue
            if self.max_crashes is not None and len(self.injected) >= self.max_crashes:
                break
            when = self.after + float(self._rng.random() * self.horizon)
            sim.schedule_at(when, self._crash, rankers, g)
            self.injected.append((g, when))

    @staticmethod
    def _crash(rankers: List, g: int) -> None:
        rankers[g].crashed = True

    def fired(self, now: float) -> int:
        """How many scheduled crashes have fired by simulated ``now``.

        Recovered groups hold a live replacement, so "currently
        crashed" undercounts churn; this counts injections whose crash
        time has passed, which is what run reports mean by
        ``crashed_groups``.
        """
        return sum(1 for (_, t) in self.injected if t <= now)


class ChaosModel:
    """Adversarial message behaviour for the reliability layer.

    Parameters
    ----------
    duplicate_prob:
        Probability a sequenced transmission is put on the wire twice
        (same seq — the receiver must suppress the copy).
    reorder_prob, reorder_max_delay:
        With probability ``reorder_prob`` a transmission is held back
        by a uniform extra delay in ``(0, reorder_max_delay]`` before
        reaching the underlying transport, letting later sends overtake
        it.
    ack_loss_prob:
        Probability an acknowledgement vanishes in transit (the data
        arrived; the sender retransmits anyway — the duplicate must be
        dropped and re-ACKed at the receiver).
    seed:
        Private deterministic stream; the model draws nothing when all
        probabilities are zero, so enabling the reliable transport with
        default chaos perturbs no other random stream.
    """

    def __init__(
        self,
        *,
        duplicate_prob: float = 0.0,
        reorder_prob: float = 0.0,
        reorder_max_delay: float = 0.0,
        ack_loss_prob: float = 0.0,
        seed: RngLike = 0,
    ):
        self.duplicate_prob = check_probability(duplicate_prob, "duplicate_prob")
        self.reorder_prob = check_probability(reorder_prob, "reorder_prob")
        self.reorder_max_delay = check_non_negative(
            reorder_max_delay, "reorder_max_delay"
        )
        self.ack_loss_prob = check_probability(ack_loss_prob, "ack_loss_prob")
        self._rng = as_generator(seed)

    @property
    def active(self) -> bool:
        """True when any adversary can fire."""
        return (
            self.duplicate_prob > 0.0
            or self.reorder_prob > 0.0
            or self.ack_loss_prob > 0.0
        )

    def duplicate(self) -> bool:
        """Should this transmission be sent twice?"""
        if self.duplicate_prob <= 0.0:
            return False
        return bool(self._rng.random() < self.duplicate_prob)

    def reorder_delay(self) -> float:
        """Extra send-side delay for this transmission (0 = in order)."""
        if self.reorder_prob <= 0.0 or self.reorder_max_delay <= 0.0:
            return 0.0
        if self._rng.random() >= self.reorder_prob:
            return 0.0
        return float(self._rng.random() * self.reorder_max_delay)

    def ack_lost(self) -> bool:
        """Does this acknowledgement vanish in transit?"""
        if self.ack_loss_prob <= 0.0:
            return False
        return bool(self._rng.random() < self.ack_loss_prob)
