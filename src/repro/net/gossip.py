"""Push-sum gossip aggregation over the overlay.

Paper §3 notes that in a distributed setting "operations like ‖Ri‖
[are] time-consuming" — which is exactly why Open System PageRank is
designed to avoid global norms.  But a deployment still wants global
aggregates: the average rank (Fig 7's y-axis), the total crawled page
count ``w = |W|`` of formula 3.2, or a global residual for
termination.  Push-sum (Kempe–Dobra–Gehrke) computes such sums/means
with only neighbor gossip:

* every node ``i`` holds a pair ``(s_i, w_i)``, initialized to
  ``(value_i, 1)``;
* each round it keeps half of both and sends the other half to one
  uniformly chosen overlay neighbor;
* ``s_i / w_i`` converges to the network-wide mean of the initial
  values, exponentially fast, because the *mass invariants*
  ``Σ s_i = Σ value_i`` and ``Σ w_i = N`` hold at every instant.

The protocol runs on the same event simulator and overlay as the page
rankers, with the same asynchronous wake-up model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.net.simulator import Simulator
from repro.overlay.base import Overlay
from repro.utils.rng import as_generator, RngLike
from repro.utils.validation import check_positive

__all__ = ["PushSumProtocol"]


class _PushSumNode:
    __slots__ = ("index", "s", "w")

    def __init__(self, index: int, value: float):
        self.index = index
        self.s = float(value)
        self.w = 1.0

    @property
    def estimate(self) -> float:
        return self.s / self.w if self.w > 0 else 0.0


class PushSumProtocol:
    """Asynchronous push-sum mean estimation over an overlay.

    Parameters
    ----------
    sim, overlay:
        The shared event engine and neighbor structure.
    values:
        One initial value per overlay node; the protocol estimates
        their mean (multiply by ``n`` for the sum).
    mean_wait:
        Mean of each node's exponential gossip interval.
    message_delay:
        One-hop delivery latency for a gossip share.
    """

    def __init__(
        self,
        sim: Simulator,
        overlay: Overlay,
        values: Sequence[float],
        *,
        mean_wait: float = 1.0,
        message_delay: float = 0.1,
        seed: RngLike = 0,
    ):
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (overlay.n_nodes,):
            raise ValueError(
                f"need one value per node: got {values.shape}, "
                f"overlay has {overlay.n_nodes}"
            )
        check_positive(mean_wait, "mean_wait")
        if message_delay < 0:
            raise ValueError("message_delay must be >= 0")
        self.sim = sim
        self.overlay = overlay
        self.mean_wait = float(mean_wait)
        self.message_delay = float(message_delay)
        self._rng = as_generator(seed)
        self.nodes = [_PushSumNode(i, v) for i, v in enumerate(values)]
        self.true_mean = float(values.mean())
        self.messages_sent = 0
        self.rounds_executed = 0
        self._in_flight_s = 0.0
        self._in_flight_w = 0.0
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every node's first gossip round."""
        if self._started:
            raise RuntimeError("protocol already started")
        self._started = True
        for node in self.nodes:
            self.sim.schedule(
                float(self._rng.exponential(self.mean_wait)), self._round, node
            )

    def _round(self, node: _PushSumNode) -> None:
        neighbors = self.overlay.neighbors(node.index)
        if neighbors:
            target = int(neighbors[int(self._rng.integers(0, len(neighbors)))])
            # Keep half, push half.
            share_s, share_w = node.s / 2.0, node.w / 2.0
            node.s -= share_s
            node.w -= share_w
            self._in_flight_s += share_s
            self._in_flight_w += share_w
            self.messages_sent += 1
            self.sim.schedule(
                self.message_delay, self._deliver, target, share_s, share_w
            )
        self.rounds_executed += 1
        self.sim.schedule(
            float(self._rng.exponential(self.mean_wait)), self._round, node
        )

    def _deliver(self, target: int, share_s: float, share_w: float) -> None:
        node = self.nodes[target]
        node.s += share_s
        node.w += share_w
        self._in_flight_s -= share_s
        self._in_flight_w -= share_w

    # ------------------------------------------------------------------
    def estimates(self) -> np.ndarray:
        """Current per-node estimates of the global mean."""
        return np.array([n.estimate for n in self.nodes])

    def max_relative_error(self) -> float:
        """Worst per-node deviation from the true mean (0 mean ⇒ abs)."""
        est = self.estimates()
        scale = abs(self.true_mean) if self.true_mean != 0 else 1.0
        return float(np.abs(est - self.true_mean).max() / scale)

    def mass_invariants(self) -> Dict[str, float]:
        """The conservation laws push-sum relies on.

        Includes mass carried by in-flight messages (the simulator's
        pending deliveries), so the sums are exact at any instant the
        caller inspects them between events.
        """
        total_s = sum(n.s for n in self.nodes) + self._in_flight_s
        total_w = sum(n.w for n in self.nodes) + self._in_flight_w
        return {"sum_s": total_s, "sum_w": total_w}

    def run_until_accurate(
        self,
        tolerance: float = 1e-6,
        *,
        check_interval: float = 1.0,
        max_time: float = 10_000.0,
    ) -> Optional[float]:
        """Run the simulation until every node's estimate is within
        ``tolerance`` of the true mean; returns the convergence time
        (None if ``max_time`` elapsed first).

        In-flight shares make the node-local sums fluctuate, so the
        check samples between events at a fixed cadence.
        """
        if not self._started:
            self.start()
        check_positive(check_interval, "check_interval")
        deadline = self.sim.now + max_time
        while self.sim.now < deadline:
            self.sim.run(until=min(self.sim.now + check_interval, deadline))
            if self.max_relative_error() <= tolerance:
                return self.sim.now
            if self.sim.peek_time() is None:  # pragma: no cover - safety
                break
        return None
