"""Heartbeat-based failure detection.

The paper assumes rankers may "sleep for some time, suspend … or even
shutdown" (§4.2) but never says how anyone *notices* a shutdown.  This
module supplies the standard answer: every ranker beats periodically;
a monitor that misses ``miss_threshold`` consecutive beats from a
ranker declares it dead and fires the registered death callbacks
(typically :meth:`repro.core.recovery.RecoveryManager.on_death`).

The simulation keeps the detector deliberately simple and fully
deterministic: one sweep event per ``interval`` both collects beats
from live rankers and checks staleness, so detection latency is
bounded by ``(miss_threshold + 1) * interval`` and identical runs
produce identical detection times.  A *paused* ranker still beats —
its failure-detector daemon is alive while the ranking loop sleeps —
so transient churn never triggers a takeover; only ``crashed`` rankers
go silent.  A recovered group (fresh ranker swapped into the live
list with ``crashed = False``) beats again and is welcomed back.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set

from repro.net.simulator import Simulator

__all__ = ["HeartbeatMonitor"]

DeathCallback = Callable[[int], None]


class HeartbeatMonitor:
    """Declares rankers dead after ``miss_threshold`` missed beats.

    Parameters
    ----------
    sim:
        The event engine the sweep chain runs on.
    rankers:
        The *live* ranker list, indexed by group.  The recovery layer
        replaces entries in place; the monitor always reads the current
        occupant, so replacements are observed automatically.
    interval:
        Beat/sweep period (simulated time units).
    miss_threshold:
        Consecutive missed beats before a ranker is declared dead.
    """

    def __init__(
        self,
        sim: Simulator,
        rankers: Sequence,
        *,
        interval: float,
        miss_threshold: int = 3,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.sim = sim
        self.rankers = rankers
        self.interval = float(interval)
        self.miss_threshold = int(miss_threshold)
        self._on_death: List[DeathCallback] = []
        #: Consecutive missed beats per group.
        self.missed: Dict[int, int] = {g: 0 for g in range(len(rankers))}
        #: Groups currently considered dead.
        self.dead: Set[int] = set()
        #: Total death declarations (re-deaths after recovery included).
        self.deaths_detected = 0
        #: Groups that resumed beating after having been declared dead.
        self.rejoins = 0
        #: Completed sweep events (detection latency = sweeps × interval).
        self.sweeps = 0
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    def add_death_callback(self, callback: DeathCallback) -> None:
        """Register ``callback(group)`` to run on each death detection."""
        self._on_death.append(callback)

    def start(self) -> None:
        """Begin the periodic sweep chain (raises if already started)."""
        if self._started:
            raise RuntimeError("heartbeat monitor already started")
        self._started = True
        self.sim.schedule(self.interval, self._sweep)

    def stop(self) -> None:
        """Stop scheduling further sweeps."""
        self._stopped = True

    def is_dead(self, group: int) -> bool:
        """True while ``group`` is in the declared-dead set."""
        return group in self.dead

    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        if self._stopped:
            return
        self.sweeps += 1
        for g in range(len(self.rankers)):
            if getattr(self.rankers[g], "crashed", False):
                self.missed[g] += 1
                if self.missed[g] >= self.miss_threshold and g not in self.dead:
                    self.dead.add(g)
                    self.deaths_detected += 1
                    for callback in self._on_death:
                        callback(g)
            else:
                # A live (or newly recovered) ranker beat this round.
                if g in self.dead:
                    self.dead.discard(g)
                    self.rejoins += 1
                self.missed[g] = 0
        self.sim.schedule(self.interval, self._sweep)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeartbeatMonitor(interval={self.interval}, "
            f"miss_threshold={self.miss_threshold}, dead={sorted(self.dead)})"
        )
