"""Per-hop latency models.

Latency units are the same arbitrary "time units" as the rankers' wait
times (the paper's figures use unitless time axes).  The defaults keep
one overlay hop well under one ranker wait interval so message delays
and compute cadence interact the way the paper's simulator implies.
"""

from __future__ import annotations

from typing import Protocol

from repro.utils.rng import as_generator, RngLike
from repro.utils.validation import check_non_negative

__all__ = ["LatencyModel", "FixedLatency", "UniformLatency"]


class LatencyModel(Protocol):
    """Produces one-hop message delays."""

    def hop_delay(self, src: int, dst: int) -> float:
        """Delay for one physical hop from ``src`` to ``dst``."""


class FixedLatency:
    """Constant per-hop delay (the default; keeps runs deterministic)."""

    def __init__(self, delay: float = 0.5):
        self.delay = check_non_negative(delay, "delay")

    def hop_delay(self, src: int, dst: int) -> float:
        """The configured constant delay."""
        return self.delay


class UniformLatency:
    """Per-hop delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float, *, seed: RngLike = 0):
        low = check_non_negative(low, "low")
        high = check_non_negative(high, "high")
        if high < low:
            raise ValueError("high must be >= low")
        self.low = low
        self.high = high
        self._rng = as_generator(seed)

    def hop_delay(self, src: int, dst: int) -> float:
        """A fresh uniform draw from ``[low, high]``."""
        return float(self._rng.uniform(self.low, self.high))
