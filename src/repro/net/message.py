"""Message types exchanged between page rankers.

Two wire-size accounting modes coexist:

**Paper model** (§4.5): a link-score record has the form
``<url_from, url_to, score>``; with a mean URL of 40 bytes the paper
rounds one record to ``l = 100`` bytes
(:data:`LINK_RECORD_BYTES`), so an update costs
``n_link_records × LINK_RECORD_BYTES`` plus a
:data:`PACKAGE_HEADER_BYTES` frame header per physical package.  A DHT
lookup message carries one key plus addressing, modelled at ``r = 50``
bytes (the paper leaves ``r`` symbolic; any constant ≪ payload works,
and the bench reports both terms separately).

**Calibrated model** (wire codec, ``DistributedConfig.codec != "none"``):
the codec layer of :mod:`repro.net.codec` / :mod:`repro.net.adaptive`
delta-encodes each pair's update against the receiver's last
reconstruction and stamps the exact encoded frame size into
:attr:`ScoreUpdate.wire_bytes`.  Transports then charge
``header + wire_bytes`` as data traffic, while the paper-model charge
for the same update is *always* accumulated in parallel (the
``paper_*`` counters of :class:`~repro.net.bandwidth.TrafficAccountant`)
so §4.4 comparisons survive compression.  ``wire_bytes = -1`` (the
default) means "no encoded frame": both models charge the paper bytes,
which keeps codec-free runs bit-identical to historical accounting.

The simulator carries score updates in *vectorized* form — one dense
vector per (source group → destination group) pair, precomputed by the
cross blocks of :class:`~repro.linalg.operators.GroupBlocks`; neither
model ever serializes the vectors on the hot path (the codec computes
frame sizes with exact varint arithmetic — see
:func:`repro.net.codec.frame_wire_bytes`).

>>> import numpy as np
>>> u = ScoreUpdate(0, 1, np.zeros(3), n_link_records=7, generation=0)
>>> u.payload_bytes            # paper model: 7 records x 100 B
700
>>> u.effective_payload_bytes  # no encoded frame: falls back to paper
700
>>> u.wire_bytes = 68          # codec stamped a 68-byte frame
>>> u.effective_payload_bytes
68
>>> u.payload_bytes            # paper charge is unchanged
700

All message classes are ``slots=True`` dataclasses: an event-driven
run materializes one :class:`ScoreUpdate` per (src, dst) pair per
outer loop, so the per-instance ``__dict__`` is measurable overhead at
scale (and attribute typos fail loudly instead of silently growing the
instance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = [
    "LINK_RECORD_BYTES",
    "LOOKUP_MESSAGE_BYTES",
    "PACKAGE_HEADER_BYTES",
    "ACK_MESSAGE_BYTES",
    "ScoreUpdate",
    "Ack",
    "Package",
    "LookupCost",
]

#: Paper §4.5: ``l`` — bytes per <url_from, url_to, score> record.
LINK_RECORD_BYTES = 100

#: ``r`` — bytes per DHT lookup message (key + routing header).
LOOKUP_MESSAGE_BYTES = 50

#: Fixed framing overhead charged once per physical package.
PACKAGE_HEADER_BYTES = 20

#: One acknowledgement: (src, dst, seq) triple plus framing.  ACKs are
#: a reliability-layer extension (not in the paper's byte model), so
#: they are accounted separately from data/lookup traffic.
ACK_MESSAGE_BYTES = 20


@dataclass(slots=True)
class ScoreUpdate:
    """Afferent rank contribution from one group to another.

    This is the paper's ``Y`` vector restricted to one destination
    group: entry ``i`` is the rank arriving at the destination group's
    local page ``i`` through cut links from the source group.

    Attributes
    ----------
    src_group, dst_group:
        Ranker indices.
    values:
        Dense float64 vector over the destination group's local pages.
    n_link_records:
        Number of <url_from, url_to, score> records this vector stands
        for (the nnz of the cross block) — the byte-accounting unit.
    generation:
        The sender's outer-loop index when the update was produced;
        receivers keep only the newest generation per source ("refresh
        X" in Algorithms 3 and 4).
    sent_at:
        Simulated send time (diagnostics only).
    hops_taken:
        Physical hops traversed so far (maintained by the indirect
        transport; its TTL guard drops updates that exceed the limit).
    seq:
        Per-(src, dst) transport sequence number stamped by
        :class:`~repro.net.reliable.ReliableTransport` (-1 when the
        update travels over a plain transport).  Receivers use it for
        idempotent duplicate suppression; retransmissions reuse the
        original seq.
    wire_bytes:
        Exact encoded frame size stamped by the wire codec
        (:mod:`repro.net.adaptive`), or -1 when the update carries no
        encoded frame and is charged at the paper model.
        Retransmissions resend the same update object, so the encoded
        frame — and its byte charge — ride along unchanged.
    """

    src_group: int
    dst_group: int
    values: np.ndarray
    n_link_records: int
    generation: int
    sent_at: float = 0.0
    hops_taken: int = 0
    seq: int = -1
    wire_bytes: int = -1

    @property
    def payload_bytes(self) -> int:
        """Bytes on the wire under the paper's record model."""
        return self.n_link_records * LINK_RECORD_BYTES

    @property
    def effective_payload_bytes(self) -> int:
        """Calibrated bytes: the encoded frame, or the paper fallback."""
        return self.wire_bytes if self.wire_bytes >= 0 else self.payload_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScoreUpdate({self.src_group}->{self.dst_group}, gen={self.generation}, "
            f"records={self.n_link_records})"
        )


@dataclass(slots=True)
class Package:
    """A physical message between overlay neighbors (indirect mode).

    Indirect transmission packs every queued :class:`ScoreUpdate`
    sharing the same next hop into one package; receivers unpack,
    deliver what is theirs, and recombine the rest (paper Fig 4).
    """

    from_node: int
    to_node: int
    updates: List[ScoreUpdate] = field(default_factory=list)

    @property
    def payload_bytes(self) -> int:
        """Paper-model bytes: summed record payloads plus one header."""
        return PACKAGE_HEADER_BYTES + sum(u.payload_bytes for u in self.updates)

    @property
    def wire_payload_bytes(self) -> int:
        """Calibrated bytes: encoded frames (or paper fallback) + header."""
        return PACKAGE_HEADER_BYTES + sum(
            u.effective_payload_bytes for u in self.updates
        )

    def __len__(self) -> int:
        return len(self.updates)


@dataclass(frozen=True, slots=True)
class Ack:
    """Receiver-side acknowledgement of one sequenced score update.

    Flows from ``dst_group`` back to ``src_group`` over the reliability
    layer; receipt clears the sender's pending-retransmission entry for
    ``seq``.  Duplicated deliveries are re-ACKed (the first ACK may have
    been lost), which keeps the protocol at-least-once on the data path
    and idempotent at the receiver.
    """

    src_group: int  # original data sender (the ACK's destination)
    dst_group: int  # original data receiver (the ACK's origin)
    seq: int

    @property
    def payload_bytes(self) -> int:
        return ACK_MESSAGE_BYTES


@dataclass(slots=True)
class LookupCost:
    """Accounting record of one DHT lookup (direct mode).

    Direct transmission must resolve a ranker id to an IP/port before
    each send (paper Fig 3B); a lookup traverses ``hops`` overlay hops,
    each carrying one ``r``-byte message.
    """

    from_node: int
    for_node: int
    hops: int

    @property
    def total_bytes(self) -> int:
        return self.hops * LOOKUP_MESSAGE_BYTES
