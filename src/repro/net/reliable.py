"""Reliable delivery over an unreliable transport.

The paper's transports are fire-and-forget: the loss model drops an
update at the origin and nobody ever notices.  That is faithful to the
experiments of §5 — DPR tolerates *transient* loss statistically — but
a production deployment (and the permanent-crash scenarios of
:mod:`repro.core.recovery`) needs positive acknowledgement.

:class:`ReliableTransport` wraps either concrete transport
(:class:`~repro.net.transport.DirectTransport` or
:class:`~repro.net.transport.IndirectTransport`) with a classic
ARQ layer:

* every update is stamped with a per-(src, dst) **sequence number**;
* the receiver side **dedups** on (src, dst, seq) and **ACKs** every
  delivery — including duplicates, whose original ACK may have been
  the thing that got lost;
* the sender keeps a pending entry per in-flight seq and, on an ACK
  **timeout**, retransmits with **exponential backoff + jitter** up to
  a bounded retry budget, re-rolling the origin loss model on every
  attempt (each attempt is an independent Bernoulli trial, exactly the
  paper's ``p`` semantics).

The combination is *at-least-once* delivery with an *idempotent*
receiver, which is sufficient for DPR correctness: a
:class:`~repro.net.message.ScoreUpdate` **replaces** the per-source
afferent vector at the destination (generation-stamped, newest wins),
so applying a duplicate — or applying attempt #3 after attempt #1
already landed — is a no-op.  See DESIGN.md §9 for the full argument.

Fault-free behaviour is deliberately transparent: updates flow through
the inner transport with identical timing, ACK events ride the same
simulator without touching any ranker's random stream, and ACK traffic
is accounted separately from the paper's data/lookup byte model — so a
run over ``ReliableTransport`` with no faults is bit-identical to a
run over the bare transport, *provided the retry timeout exceeds the
ACK round-trip time*.  With a timeout shorter than the RTT the sender
retransmits spuriously (classic ARQ); the receiver's dedup makes that
harmless but not free, so size ``RetryPolicy.timeout`` above the
slowest path's round trip.

The layer is **codec-agnostic**: when a wire codec is active
(:mod:`repro.net.adaptive`) every retransmission resends the *same*
:class:`~repro.net.message.ScoreUpdate` object, so the encoded frame
— and its :attr:`~repro.net.message.ScoreUpdate.wire_bytes` charge —
ride along unchanged; dedup and ACK accounting never look at the
payload at all.  Sequence numbers double as the codec's delivery
order, which is why delta sessions compose with ARQ but not with
fire-and-forget loss (see ``core/capabilities.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.failures import ChaosModel
from repro.net.message import ACK_MESSAGE_BYTES, Ack, ScoreUpdate
from repro.net.simulator import EventHandle
from repro.net.transport import Transport
from repro.utils.rng import as_generator, RngLike
from repro.utils.validation import check_non_negative

__all__ = ["ReliableTransport", "RetryPolicy"]

#: (src_group, dst_group, seq) — the identity of one sequenced send.
_Key = Tuple[int, int, int]


class RetryPolicy:
    """Timeout/backoff schedule for unacknowledged sends.

    Attempt ``k`` (0-based) waits ``timeout * backoff**k`` before
    retransmitting, plus a uniform jitter in ``[0, jitter]`` that
    de-synchronizes retry storms, capped at ``max_timeout``.  After
    ``max_retries`` retransmissions the sender gives up — DPR tolerates
    the loss statistically, and a permanently dead receiver is the
    recovery layer's problem, not the transport's.
    """

    def __init__(
        self,
        *,
        timeout: float = 4.0,
        backoff: float = 2.0,
        jitter: float = 0.0,
        max_timeout: float = 60.0,
        max_retries: int = 8,
    ):
        self.timeout = check_non_negative(timeout, "timeout")
        if self.timeout <= 0:
            raise ValueError("timeout must be > 0")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        self.backoff = float(backoff)
        self.jitter = check_non_negative(jitter, "jitter")
        self.max_timeout = check_non_negative(max_timeout, "max_timeout")
        if self.max_timeout < self.timeout:
            raise ValueError("max_timeout must be >= timeout")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = int(max_retries)

    def delay(self, attempt: int, rng) -> float:
        """ACK wait before retransmission number ``attempt + 1``."""
        base = min(self.timeout * self.backoff**attempt, self.max_timeout)
        if self.jitter > 0.0:
            base += float(rng.random() * self.jitter)
        return base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryPolicy(timeout={self.timeout}, backoff={self.backoff}, "
            f"jitter={self.jitter}, max_retries={self.max_retries})"
        )


class _Pending:
    """Sender-side bookkeeping for one unacknowledged update."""

    __slots__ = ("update", "attempts", "timer")

    def __init__(self, update: ScoreUpdate):
        self.update = update
        self.attempts = 0  # retransmissions performed so far
        self.timer: Optional[EventHandle] = None


class ReliableTransport(Transport):
    """ACK/retry/dedup wrapper around a concrete transport.

    Parameters
    ----------
    inner:
        The transport actually moving bytes (direct or indirect).  The
        wrapper installs itself as the inner deliver upcall; callers
        must :meth:`attach` to the *wrapper*, never to ``inner``.
    retry:
        The timeout/backoff schedule (default :class:`RetryPolicy`).
    chaos:
        Optional :class:`~repro.net.failures.ChaosModel` supplying
        duplication, reordering, and ACK loss.  ``None`` disables all
        three without consuming randomness.
    alive:
        Optional liveness oracle ``group -> bool`` consulted on every
        receive.  A dead (crashed) group neither delivers nor ACKs —
        the message is simply swallowed, as a dead machine would.
    seed:
        Private stream for retry jitter.  Only consumed when a timeout
        actually fires, so fault-free runs draw nothing.
    """

    def __init__(
        self,
        inner: Transport,
        *,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosModel] = None,
        alive: Optional[Callable[[int], bool]] = None,
        seed: RngLike = 0,
    ):
        # ``inner`` must exist before Transport.__init__ runs: the base
        # constructor assigns ``dropped_updates = 0``, which our property
        # setter routes to the inner transport's counter.
        self.inner = inner
        super().__init__(
            inner.sim,
            inner.overlay,
            inner.accountant,
            loss=inner.loss,
            latency=inner.latency,
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = chaos if chaos is not None else ChaosModel()
        self.alive = alive
        self._rng = as_generator(seed)
        self.inner.attach(self._on_inner_deliver)

        # Sender side ---------------------------------------------------
        self._next_seq: Dict[Tuple[int, int], int] = {}
        self._pending: Dict[_Key, _Pending] = {}
        #: Retransmissions performed (timer fired, budget left).
        self.retransmits = 0
        #: Sends abandoned after exhausting the retry budget.
        self.gave_up = 0
        #: ACKs that arrived for already-cleared sends (late/duplicate).
        self.stale_acks = 0

        # Receiver side -------------------------------------------------
        self._delivered_seqs: Dict[Tuple[int, int], Set[int]] = {}
        #: Duplicate deliveries suppressed by the (src, dst, seq) dedup.
        self.dup_drops = 0
        #: Updates swallowed because the destination group was dead.
        self.dead_drops = 0
        #: Duplicated transmissions injected by the chaos model.
        self.chaos_duplicates = 0
        #: ACKs destroyed in transit by the chaos model.
        self.acks_lost = 0

    # ------------------------------------------------------------------
    # Proxied diagnostics: origin loss happens inside the inner
    # transport (once per attempt), so its counter is authoritative.
    # ------------------------------------------------------------------
    @property
    def dropped_updates(self) -> int:  # type: ignore[override]
        return self.inner.dropped_updates

    @dropped_updates.setter
    def dropped_updates(self, value: int) -> None:
        # Transport.__init__ assigns 0; route it to the inner counter.
        self.inner.dropped_updates = value

    @property
    def in_flight(self) -> int:
        """Currently unacknowledged sends."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Sender path
    # ------------------------------------------------------------------
    def send_updates(self, src_group: int, updates: List[ScoreUpdate]) -> None:
        """Stamp, register, and transmit; arm one ACK timer per update.

        In-order (un-reordered) updates are forwarded to the inner
        transport as one batch so the indirect transport's per-next-hop
        packing sees exactly what a bare send would — fault-free runs
        must produce identical packages.
        """
        batch: List[ScoreUpdate] = []
        for update in updates:
            pair = (src_group, update.dst_group)
            seq = self._next_seq.get(pair, 0)
            self._next_seq[pair] = seq + 1
            update.seq = seq
            key = (src_group, update.dst_group, seq)
            entry = _Pending(update)
            self._pending[key] = entry
            self._stage(key, entry, batch)
        if batch:
            self.inner.send_updates(src_group, batch)

    def _stage(self, key: _Key, entry: _Pending, batch: List[ScoreUpdate]) -> None:
        """Prepare one wire attempt: chaos (reorder/duplicate) staging,
        then either append to ``batch`` (sent by the caller in one inner
        call) or schedule the delayed copy.  Arms the ACK timer."""
        update = entry.update
        # A fresh physical transmission starts its hop budget over.
        update.hops_taken = 0
        delay = self.chaos.reorder_delay() if self.chaos.active else 0.0
        if delay > 0.0:
            self.sim.schedule(delay, self._inner_send, update)
        else:
            batch.append(update)
        if self.chaos.active and self.chaos.duplicate():
            self.chaos_duplicates += 1
            self._inner_send(update)
        entry.timer = self.sim.schedule(
            self.retry.delay(entry.attempts, self._rng), self._on_timeout, key
        )

    def _transmit(self, key: _Key, entry: _Pending) -> None:
        """One solo wire attempt (the retransmission path)."""
        batch: List[ScoreUpdate] = []
        self._stage(key, entry, batch)
        if batch:
            self.inner.send_updates(entry.update.src_group, batch)

    def _inner_send(self, update: ScoreUpdate) -> None:
        self.inner.send_updates(update.src_group, [update])

    def _on_timeout(self, key: _Key) -> None:
        entry = self._pending.get(key)
        if entry is None:  # ACKed between scheduling and firing
            return
        if entry.attempts >= self.retry.max_retries:
            del self._pending[key]
            self.gave_up += 1
            return
        entry.attempts += 1
        self.retransmits += 1
        self._transmit(key, entry)

    def _on_ack(self, ack: Ack) -> None:
        entry = self._pending.pop((ack.src_group, ack.dst_group, ack.seq), None)
        if entry is None:
            self.stale_acks += 1
            return
        if entry.timer is not None:
            entry.timer.cancel()

    # ------------------------------------------------------------------
    # Receiver path
    # ------------------------------------------------------------------
    def _on_inner_deliver(self, dst_group: int, update: ScoreUpdate) -> None:
        if self.alive is not None and not self.alive(dst_group):
            self.dead_drops += 1
            return
        pair = (update.src_group, dst_group)
        seen = self._delivered_seqs.setdefault(pair, set())
        if update.seq in seen:
            self.dup_drops += 1
        else:
            seen.add(update.seq)
            self._deliver_local(update)
        # ACK unconditionally (duplicates included): the sender may be
        # retransmitting precisely because the previous ACK was lost.
        self._send_ack(Ack(update.src_group, dst_group, update.seq))

    def _send_ack(self, ack: Ack) -> None:
        self.accountant.record_ack(ack.dst_group, ack.src_group, ACK_MESSAGE_BYTES)
        if self.chaos.active and self.chaos.ack_lost():
            self.acks_lost += 1
            return
        delay = self.latency.hop_delay(ack.dst_group, ack.src_group)
        self.sim.schedule(delay, self._on_ack, ack)

    # ------------------------------------------------------------------
    def window_state(self) -> Dict[Tuple[int, int], Dict[str, object]]:
        """Debug snapshot of every (src, dst) sequencing window.

        Maps each pair that has ever sent to ``{"next_seq": int,
        "pending": sorted unACKed seqs}``.  The hybrid engine's
        equivalence tests use this to assert sequence continuity across
        fast/replayed round boundaries: seq numbering must never reset
        or skip when the engine switches execution paths mid-run.
        """
        state: Dict[Tuple[int, int], Dict[str, object]] = {}
        for pair, nxt in self._next_seq.items():
            state[pair] = {"next_seq": nxt, "pending": []}
        for (src, dst, seq) in self._pending:
            state.setdefault(
                (src, dst), {"next_seq": 0, "pending": []}
            )["pending"].append(seq)
        for entry in state.values():
            entry["pending"] = sorted(entry["pending"])
        return state

    def stats(self) -> Dict[str, int]:
        """Reliability counters in one dict (reporting convenience)."""
        return {
            "retransmits": self.retransmits,
            "gave_up": self.gave_up,
            "dup_drops": self.dup_drops,
            "dead_drops": self.dead_drops,
            "stale_acks": self.stale_acks,
            "chaos_duplicates": self.chaos_duplicates,
            "acks_lost": self.acks_lost,
            "in_flight": self.in_flight,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReliableTransport({self.inner.__class__.__name__}, "
            f"in_flight={self.in_flight}, retransmits={self.retransmits})"
        )
