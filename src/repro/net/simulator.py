"""Deterministic discrete-event simulation core.

A minimal but complete event engine: callbacks scheduled at absolute
simulated times, executed in (time, insertion-sequence) order so that
equal-time events run in a reproducible order.  All of the paper's
asynchrony — rankers waking on exponential timers, messages arriving
after per-hop delays, nodes pausing — is expressed as events on this
single queue.

The engine is intentionally callback-based rather than
coroutine-based: the hot path of an experiment is dominated by the
numpy kernels inside the callbacks, and a plain heap keeps the
scheduling overhead negligible and the control flow easy to audit.

Heap representation: entries are plain ``(time, seq, event)`` tuples,
so heap sifting compares native floats/ints directly instead of going
through ``@dataclass(order=True)``'s generated ``__lt__`` (which
builds a comparison tuple per call).  ``_Event`` itself is a slotted
record carrying only the callback, its arguments, and the
cancellation flag.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "EventHandle"]


class _Event:
    """Mutable payload of one heap entry (see module docs)."""

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False


class EventHandle:
    """Opaque handle allowing a scheduled event to be cancelled."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled execution time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from running (idempotent)."""
        self._event.cancelled = True


class Simulator:
    """Discrete-event simulator with deterministic tie-breaking.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> _ = sim.schedule(2.0, log.append, "b")
    >>> _ = sim.schedule(1.0, log.append, "a")
    >>> sim.run()
    >>> log
    ['a', 'b']
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, _Event]] = []
        self._seq = itertools.count()
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated time units."""
        if delay < 0 or math.isnan(delay):
            raise ValueError(f"delay must be >= 0, got {delay!r}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, requested={time})"
            )
        ev = _Event(float(time), callback, args)
        heapq.heappush(self._heap, (ev.time, next(self._seq), ev))
        return EventHandle(ev)

    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, if any."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Execute the next event; return False if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        time, _, ev = heapq.heappop(self._heap)
        self.now = time
        self.events_executed += 1
        ev.callback(*ev.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event would execute after this time
            (``now`` is advanced to ``until`` in that case, including
            when the queue drains — by running dry or by callbacks
            cancelling everything left — before reaching it).
        max_events:
            Hard cap on events executed by *this* call.
        stop_condition:
            Checked after every event; simulation stops when it
            returns True (used for convergence-triggered termination).
        """
        executed = 0
        while True:
            # A callback may have cancelled events mid-drain; drop them
            # *before* looking at the head, and only then decide whether
            # the next live event is beyond ``until``.  Comparing against
            # a stale (possibly cancelled) head would stop the run on an
            # event that was never going to execute.
            self._drop_cancelled()
            if not self._heap:
                if until is not None and self.now < until:
                    self.now = float(until)
                break
            if until is not None and self._heap[0][0] > until:
                self.now = float(until)
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
            if stop_condition is not None and stop_condition():
                break

    @property
    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for entry in self._heap if not entry[2].cancelled)
