"""Structured message tracing.

A :class:`MessageTrace` records one row per physical message — time,
endpoints, kind, payload size, and for score updates the (src_group,
dst_group, generation) triple — into a bounded ring buffer.  It is the
debugging/visibility companion to the aggregate counters of
:class:`~repro.net.bandwidth.TrafficAccountant`: the accountant answers
"how much", the trace answers "what exactly, when, through whom".

Attach a trace to any transport via :func:`install_tracing`; the hook
wraps the accountant's record methods, so both transports (and any
future one that accounts honestly) are covered without per-transport
code.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.net.bandwidth import TrafficAccountant
from repro.net.simulator import Simulator

__all__ = ["MessageRecord", "MessageTrace", "install_tracing"]


@dataclass(frozen=True)
class MessageRecord:
    """One traced physical message."""

    time: float
    kind: str  # "data" | "lookup" | "ack"
    src: int
    dst: int  # -1 for lookups (resolution path, not a point message)
    n_bytes: int


class MessageTrace:
    """Bounded in-memory log of physical messages.

    Parameters
    ----------
    capacity:
        Maximum records retained; older records are dropped silently
        (the ``dropped`` counter says how many).
    """

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._records: Deque[MessageRecord] = deque(maxlen=self.capacity)
        self.dropped = 0

    def add(self, record: MessageRecord) -> None:
        """Append a record, evicting the oldest beyond capacity."""
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def records(
        self,
        *,
        kind: Optional[str] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        since: float = float("-inf"),
    ) -> List[MessageRecord]:
        """Filtered copy of the retained records."""
        out = []
        for r in self._records:
            if kind is not None and r.kind != kind:
                continue
            if src is not None and r.src != src:
                continue
            if dst is not None and r.dst != dst:
                continue
            if r.time < since:
                continue
            out.append(r)
        return out

    def bytes_between(self, a: int, b: int) -> int:
        """Total data bytes that crossed the directed link a -> b."""
        return sum(r.n_bytes for r in self.records(kind="data", src=a, dst=b))

    def busiest_links(self, top: int = 5) -> List[tuple]:
        """The ``top`` directed links by data bytes carried."""
        totals: dict = {}
        for r in self._records:
            if r.kind != "data":
                continue
            key = (r.src, r.dst)
            totals[key] = totals.get(key, 0) + r.n_bytes
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(src, dst, n) for (src, dst), n in ranked[:top]]


def install_tracing(
    sim: Simulator, accountant: TrafficAccountant, trace: MessageTrace
) -> Callable[[], None]:
    """Mirror every accounted message into ``trace``.

    Wraps the accountant's record methods in place; returns an
    ``uninstall`` callable restoring the originals.
    """
    orig_data = accountant.record_data_message
    orig_lookup = accountant.record_lookup
    orig_ack = accountant.record_ack

    def record_data(
        src: int, dst: int, n_bytes: int, paper_bytes=None
    ) -> None:
        # Traced size is the calibrated wire charge; the parallel
        # paper-model counter stays inside the accountant.
        orig_data(src, dst, n_bytes, paper_bytes=paper_bytes)
        trace.add(MessageRecord(sim.now, "data", src, dst, int(n_bytes)))

    def record_lookup(src: int, hops: int, bytes_per_hop: int) -> None:
        orig_lookup(src, hops, bytes_per_hop)
        trace.add(
            MessageRecord(sim.now, "lookup", src, -1, int(hops) * int(bytes_per_hop))
        )

    def record_ack(src: int, dst: int, n_bytes: int) -> None:
        orig_ack(src, dst, n_bytes)
        trace.add(MessageRecord(sim.now, "ack", src, dst, int(n_bytes)))

    accountant.record_data_message = record_data  # type: ignore[method-assign]
    accountant.record_lookup = record_lookup  # type: ignore[method-assign]
    accountant.record_ack = record_ack  # type: ignore[method-assign]

    def uninstall() -> None:
        accountant.record_data_message = orig_data  # type: ignore[method-assign]
        accountant.record_lookup = orig_lookup  # type: ignore[method-assign]
        accountant.record_ack = orig_ack  # type: ignore[method-assign]

    return uninstall
