"""Direct and indirect transmission (paper §4.4).

**Direct transmission** (Fig 3): the sender resolves each destination
ranker through a DHT lookup (``h`` hop messages of ``r`` bytes), then
ships the score records in a single end-to-end message.  Per iteration
this costs about ``(h+1)·N²`` messages and ``l·W + h·r·N²`` bytes
network-wide (formulas 4.2/4.4).

**Indirect transmission** (Figs 4–5): score records ride the overlay's
own routing paths.  Each node packs everything bound for the same next
hop into one package; intermediate nodes unpack, deliver what is
theirs, *recombine* the rest per next hop, and forward.  Per iteration
this costs about ``g·N`` messages (one package per neighbor link) but
``h·l·W`` bytes, since every record is carried ``h`` times (formulas
4.1/4.3).

Both transports share the same interface so the distributed ranker
never knows which one it is running over.  Loss (the paper's ``p``) is
applied at the origin, per destination update — the granularity of
"vector Y may fail to be sent".
"""

from __future__ import annotations

import abc
from collections import defaultdict
from typing import Callable, Dict, List, Optional

from repro.net.bandwidth import TrafficAccountant
from repro.net.failures import LossModel, NoLoss
from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import (
    LOOKUP_MESSAGE_BYTES,
    PACKAGE_HEADER_BYTES,
    Package,
    ScoreUpdate,
)
from repro.net.simulator import Simulator
from repro.overlay.base import Overlay

__all__ = ["Transport", "DirectTransport", "IndirectTransport", "build_transport"]

DeliverFn = Callable[[int, ScoreUpdate], None]


class Transport(abc.ABC):
    """Common machinery for both transmission schemes."""

    def __init__(
        self,
        sim: Simulator,
        overlay: Overlay,
        accountant: TrafficAccountant,
        *,
        loss: Optional[LossModel] = None,
        latency: Optional[LatencyModel] = None,
    ):
        self.sim = sim
        self.overlay = overlay
        self.accountant = accountant
        self.loss: LossModel = loss if loss is not None else NoLoss()
        self.latency: LatencyModel = latency if latency is not None else FixedLatency()
        self._deliver: Optional[DeliverFn] = None
        #: Updates dropped by the loss model (diagnostics).
        self.dropped_updates = 0

    def attach(self, deliver: DeliverFn) -> None:
        """Install the upcall invoked when an update reaches its group."""
        self._deliver = deliver

    def _deliver_local(self, update: ScoreUpdate) -> None:
        if self._deliver is None:
            raise RuntimeError("transport used before attach()")
        self._deliver(update.dst_group, update)

    @abc.abstractmethod
    def send_updates(self, src_group: int, updates: List[ScoreUpdate]) -> None:
        """Ship one iteration's worth of updates from ``src_group``."""


class DirectTransport(Transport):
    """Lookup-then-send end-to-end transmission.

    Parameters
    ----------
    cache_lookups:
        When True, a sender resolves each destination only once and
        reuses the address afterwards — an obvious engineering
        improvement the paper does *not* assume (its formulas charge a
        lookup per send), kept as an ablation knob, default off.
    """

    def __init__(self, *args, cache_lookups: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.cache_lookups = bool(cache_lookups)
        self._resolved: Dict[int, set] = defaultdict(set)

    def send_updates(self, src_group: int, updates: List[ScoreUpdate]) -> None:
        """Lookup each destination (unless cached), then send end to end."""
        for update in updates:
            if not self.loss.delivered(src_group, update.dst_group):
                self.dropped_updates += 1
                continue
            dst = update.dst_group
            delay = 0.0
            needs_lookup = not (
                self.cache_lookups and dst in self._resolved[src_group]
            )
            if needs_lookup and src_group != dst:
                hops = self.overlay.hops(src_group, dst)
                self.accountant.record_lookup(src_group, hops, LOOKUP_MESSAGE_BYTES)
                delay += hops * self.latency.hop_delay(src_group, dst)
                if self.cache_lookups:
                    self._resolved[src_group].add(dst)
            # One end-to-end data message (IP-level, a single "hop").
            # Calibrated charge (codec frame when stamped) plus the
            # parallel paper-model charge for §4.4 comparability.
            self.accountant.record_data_message(
                src_group,
                dst,
                PACKAGE_HEADER_BYTES + update.effective_payload_bytes,
                paper_bytes=PACKAGE_HEADER_BYTES + update.payload_bytes,
            )
            delay += self.latency.hop_delay(src_group, dst)
            update.sent_at = self.sim.now
            self.sim.schedule(delay, self._deliver_local, update)


class IndirectTransport(Transport):
    """Hop-by-hop forwarding with per-neighbor pack/recombine.

    Parameters
    ----------
    aggregation_delay:
        How long an intermediate node buffers arriving records before
        flushing packages to its neighbors.  A non-zero window is what
        lets flows from several upstream neighbors *recombine* into a
        single downstream package (paper Fig 4).  Zero disables
        buffering (every arrival forwards immediately).
    ttl:
        Hop budget per update.  Structured-overlay routes are loop-free
        on static membership, so the TTL never fires in normal
        operation; it is the safety net a real deployment carries
        against routing anomalies.  Expired updates are counted in
        :attr:`expired_updates` and dropped.
    """

    def __init__(self, *args, aggregation_delay: float = 0.25, ttl: int = 64, **kwargs):
        super().__init__(*args, **kwargs)
        if aggregation_delay < 0:
            raise ValueError("aggregation_delay must be >= 0")
        if ttl < 1:
            raise ValueError("ttl must be >= 1")
        self.aggregation_delay = float(aggregation_delay)
        self.ttl = int(ttl)
        #: Updates dropped by the TTL guard (should stay 0).
        self.expired_updates = 0
        # Per-node forwarding buffer: node -> list of in-transit updates.
        self._buffer: Dict[int, List[ScoreUpdate]] = defaultdict(list)
        self._flush_scheduled: Dict[int, bool] = defaultdict(bool)
        #: Total packages put on the wire (== physical data messages).
        self.packages_sent = 0

    # ------------------------------------------------------------------
    def send_updates(self, src_group: int, updates: List[ScoreUpdate]) -> None:
        """Apply loss at the origin and inject survivors into the mesh."""
        survivors = []
        for update in updates:
            if not self.loss.delivered(src_group, update.dst_group):
                self.dropped_updates += 1
                continue
            update.sent_at = self.sim.now
            survivors.append(update)
        if not survivors:
            return
        self._enqueue(src_group, survivors)

    def _enqueue(self, node: int, updates: List[ScoreUpdate]) -> None:
        """Buffer updates at ``node`` and arrange a flush."""
        local = [u for u in updates if u.dst_group == node]
        transit = [u for u in updates if u.dst_group != node]
        for u in local:
            self._deliver_local(u)
        if not transit:
            return
        self._buffer[node].extend(transit)
        if self.aggregation_delay == 0.0:
            self._flush(node)
        elif not self._flush_scheduled[node]:
            self._flush_scheduled[node] = True
            self.sim.schedule(self.aggregation_delay, self._flush, node)

    def _flush(self, node: int) -> None:
        """Pack buffered updates per next hop and send one package each."""
        self._flush_scheduled[node] = False
        pending = self._buffer[node]
        if not pending:
            return
        self._buffer[node] = []
        by_next: Dict[int, List[ScoreUpdate]] = defaultdict(list)
        for u in pending:
            nxt = self.overlay.next_hop(node, u.dst_group)
            by_next[nxt].append(u)
        for nxt, batch in by_next.items():
            package = Package(from_node=node, to_node=nxt, updates=batch)
            self.accountant.record_data_message(
                node,
                nxt,
                package.wire_payload_bytes,
                paper_bytes=package.payload_bytes,
            )
            self.packages_sent += 1
            self.sim.schedule(
                self.latency.hop_delay(node, nxt), self._arrive, package
            )

    def _arrive(self, package: Package) -> None:
        """Unpack at the receiving node and recombine onward traffic."""
        alive = []
        for u in package.updates:
            u.hops_taken += 1
            if u.dst_group != package.to_node and u.hops_taken >= self.ttl:
                self.expired_updates += 1
                continue
            alive.append(u)
        if alive:
            self._enqueue(package.to_node, alive)


def build_transport(
    kind: str,
    sim: Simulator,
    overlay: Overlay,
    accountant: TrafficAccountant,
    *,
    loss: Optional[LossModel] = None,
    latency: Optional[LatencyModel] = None,
    **kwargs,
) -> Transport:
    """Construct a transport by name: ``direct`` or ``indirect``."""
    kinds = {"direct": DirectTransport, "indirect": IndirectTransport}
    if kind not in kinds:
        raise ValueError(f"unknown transport {kind!r}; expected one of {sorted(kinds)}")
    return kinds[kind](sim, overlay, accountant, loss=loss, latency=latency, **kwargs)
