"""Structured peer-to-peer overlay substrate.

The paper runs page rankers as nodes of a structured overlay network
(Pastry [6]; Chord [14], CAN [13] and Tapestry [15] are cited as the
same class).  The overlay contributes two quantities to the paper's
analysis:

* ``h`` — the mean routing hop count (≈2.5 / 3.5 / 4.0 for Pastry with
  10³ / 10⁴ / 10⁵ nodes), which multiplies the bandwidth of indirect
  transmission (formula 4.1) and the lookup cost of direct
  transmission (formula 4.2);
* ``g`` — the mean neighbor count, which bounds the per-iteration
  message count of indirect transmission (formula 4.3, ``S_it = gN``).

This package implements Pastry (prefix routing + leaf set), Chord
(finger-table routing) and CAN (d-torus greedy routing) behind one
:class:`~repro.overlay.base.Overlay` interface, plus hop/neighbor
statistics used by the cost model and the Table 1 bench.

Implementation note: routing state is *derived on demand* from the
sorted id array via binary search rather than materialized per node,
which keeps 100 000-node overlays cheap while producing exactly the
entries a fully materialized routing table would hold.
"""

from repro.overlay.base import Overlay, RouteResult
from repro.overlay.node_id import (
    ID_BITS,
    ID_SPACE,
    node_id_of,
    digits_of,
    digit_at,
    shared_prefix_digits,
    ring_distance,
    clockwise_distance,
)
from repro.overlay.pastry import PastryOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.can import CANOverlay
from repro.overlay.tapestry import TapestryOverlay
from repro.overlay.metrics import hop_statistics, neighbor_statistics, HopStatistics

__all__ = [
    "Overlay",
    "RouteResult",
    "ID_BITS",
    "ID_SPACE",
    "node_id_of",
    "digits_of",
    "digit_at",
    "shared_prefix_digits",
    "ring_distance",
    "clockwise_distance",
    "PastryOverlay",
    "ChordOverlay",
    "CANOverlay",
    "TapestryOverlay",
    "hop_statistics",
    "neighbor_statistics",
    "HopStatistics",
    "build_overlay",
]


def build_overlay(kind: str, n_nodes: int, *, seed: int = 0, **kwargs):
    """Construct an overlay by name: ``pastry``, ``chord`` or ``can``."""
    kinds = {
        "pastry": PastryOverlay,
        "chord": ChordOverlay,
        "can": CANOverlay,
        "tapestry": TapestryOverlay,
    }
    if kind not in kinds:
        raise ValueError(f"unknown overlay kind {kind!r}; expected one of {sorted(kinds)}")
    return kinds[kind](n_nodes, seed=seed, **kwargs)
