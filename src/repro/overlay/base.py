"""Common overlay interface.

An overlay connects the ``N`` page rankers (indices ``0..N-1``).  The
distributed page-ranking layer uses exactly three capabilities:

* ``neighbors(i)`` — the ranker indices node ``i`` maintains open
  connections to (leaf set + routing table for Pastry, fingers for
  Chord, zone neighbors for CAN).  Indirect transmission forwards data
  only along these edges.
* ``route(src, dst)`` — the overlay path a message takes from ranker
  ``src`` to ranker ``dst``; its length is the hop count ``h``.
* ``next_hop(at, dst)`` — a single routing step, used by the event
  simulator to forward packages hop by hop.

Invariant required of every implementation: from any node, repeatedly
applying ``next_hop`` toward ``dst`` terminates at ``dst`` (no routing
loops on a static membership).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.rng import as_generator, RngLike

__all__ = ["Overlay", "RouteResult"]


@dataclass
class RouteResult:
    """A resolved route.

    Attributes
    ----------
    path:
        Node indices from source to destination inclusive;
        ``path[0] == src`` and ``path[-1] == dst``.
    """

    path: List[int]

    @property
    def hops(self) -> int:
        """Number of overlay hops (edges traversed)."""
        return len(self.path) - 1


class Overlay(abc.ABC):
    """Abstract structured overlay over ``n_nodes`` rankers."""

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError("overlay needs at least one node")
        self.n_nodes = int(n_nodes)

    # -- mandatory interface -------------------------------------------
    @abc.abstractmethod
    def neighbors(self, node: int) -> Sequence[int]:
        """Indices of the nodes ``node`` keeps connections to."""

    @abc.abstractmethod
    def next_hop(self, at: int, dst: int) -> int:
        """The node ``at`` forwards to when routing toward ``dst``.

        Must return ``dst`` itself in one or more applications; never
        returns ``at``.
        """

    # -- derived helpers -----------------------------------------------
    def route(self, src: int, dst: int, *, max_hops: int = 256) -> RouteResult:
        """Full routing path from ``src`` to ``dst``.

        Raises ``RuntimeError`` if the path exceeds ``max_hops`` —
        which would indicate a routing loop and is treated as a bug.
        """
        self._check_node(src)
        self._check_node(dst)
        path = [src]
        at = src
        while at != dst:
            nxt = self.next_hop(at, dst)
            if nxt == at:
                raise RuntimeError(f"overlay made no progress at node {at} -> {dst}")
            path.append(nxt)
            at = nxt
            if len(path) > max_hops:
                raise RuntimeError(
                    f"route {src}->{dst} exceeded {max_hops} hops; routing loop?"
                )
        return RouteResult(path=path)

    def hops(self, src: int, dst: int) -> int:
        """Hop count of :meth:`route`."""
        return self.route(src, dst).hops

    def mean_neighbor_count(self) -> float:
        """Average ``g`` over all nodes (formula 4.3's neighbor count)."""
        return float(
            np.mean([len(self.neighbors(i)) for i in range(self.n_nodes)])
        )

    def sample_mean_hops(
        self, n_samples: int = 1000, *, seed: RngLike = 0
    ) -> float:
        """Monte-Carlo estimate of the mean hop count ``h``.

        Samples ordered (src, dst) pairs uniformly with ``src != dst``
        (when more than one node exists).
        """
        if self.n_nodes == 1:
            return 0.0
        rng = as_generator(seed)
        total = 0
        for _ in range(n_samples):
            src = int(rng.integers(0, self.n_nodes))
            dst = int(rng.integers(0, self.n_nodes - 1))
            if dst >= src:
                dst += 1
            total += self.hops(src, dst)
        return total / n_samples

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range [0, {self.n_nodes})")
