"""CAN overlay (Ratnasamy et al., SIGCOMM 2001) — ref [13].

CAN maps nodes to zones of a d-dimensional torus and routes greedily
through zone neighbors; with d=2 the expected path length grows as
``O(√N)`` — markedly worse than Pastry/Chord's logarithmic hops, which
is visible in the overlay-hops bench and is why the paper's bandwidth
analysis assumes a logarithmic overlay.

This implementation models the common analysis simplification of a
*converged, evenly loaded* CAN: the unit torus is cut into ``rows``
horizontal bands, each band into equal zones, with band/zone counts as
equal as ``n_nodes`` allows.  Nodes are assigned to zones by a seeded
permutation (so node index order is uncorrelated with torus position,
as in a real join sequence).  Routing is deterministic: first travel
vertically the shorter way around to the destination band, then
horizontally the shorter way within the band — each step crosses one
zone boundary through a real CAN neighbor, so hop counts match greedy
CAN on this zone layout.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.overlay.base import Overlay
from repro.utils.hashing import stable_uint64
from repro.utils.rng import as_generator

__all__ = ["CANOverlay"]


class CANOverlay(Overlay):
    """A converged 2-d CAN torus over ``n_nodes`` rankers."""

    def __init__(self, n_nodes: int, *, seed: int = 0):
        super().__init__(n_nodes)
        self.seed = int(seed)
        self.rows = max(1, int(math.isqrt(n_nodes)))
        base = n_nodes // self.rows
        extra = n_nodes % self.rows
        # Band r holds cols_of[r] zones; first `extra` bands get one more.
        self.cols_of = np.array(
            [base + (1 if r < extra else 0) for r in range(self.rows)], dtype=np.int64
        )
        self.row_start = np.zeros(self.rows, dtype=np.int64)
        np.cumsum(self.cols_of[:-1], out=self.row_start[1:])

        rng = as_generator(stable_uint64(f"can:{seed}", salt="overlay"))
        self.cell_of_node = rng.permutation(n_nodes).astype(np.int64)
        self.node_of_cell = np.empty(n_nodes, dtype=np.int64)
        self.node_of_cell[self.cell_of_node] = np.arange(n_nodes)
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Cell geometry
    # ------------------------------------------------------------------
    def cell_coords(self, cell: int) -> Tuple[int, int]:
        """(band row, column within band) of a zone index."""
        row = int(np.searchsorted(self.row_start, cell, side="right")) - 1
        col = int(cell - self.row_start[row])
        return row, col

    def cell_at(self, row: int, col: int) -> int:
        """Zone index from (band row, column), with torus wrap."""
        row %= self.rows
        col %= int(self.cols_of[row])
        return int(self.row_start[row] + col)

    def zone_rect(self, node: int) -> Tuple[float, float, float, float]:
        """Zone of ``node`` as ``(x0, x1, y0, y1)`` in the unit torus."""
        self._check_node(node)
        row, col = self.cell_coords(int(self.cell_of_node[node]))
        cols = int(self.cols_of[row])
        return (col / cols, (col + 1) / cols, row / self.rows, (row + 1) / self.rows)

    def owner_of_point(self, x: float, y: float) -> int:
        """Node owning the torus point ``(x, y)``."""
        x %= 1.0
        y %= 1.0
        row = min(int(y * self.rows), self.rows - 1)
        col = min(int(x * int(self.cols_of[row])), int(self.cols_of[row]) - 1)
        return int(self.node_of_cell[self.cell_at(row, col)])

    def owner(self, key: int) -> int:
        """Node owning a hashed key (key -> torus point -> zone)."""
        x = (stable_uint64(key, salt="can-x") % (1 << 53)) / float(1 << 53)
        y = (stable_uint64(key, salt="can-y") % (1 << 53)) / float(1 << 53)
        return self.owner_of_point(x, y)

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Zone neighbors: adjacent in-band zones plus all zones of the
        adjacent bands whose x-interval overlaps (torus wrap in both
        axes)."""
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        self._check_node(node)
        row, col = self.cell_coords(int(self.cell_of_node[node]))
        cols = int(self.cols_of[row])
        ns = set()
        if cols > 1:
            ns.add(int(self.node_of_cell[self.cell_at(row, col - 1)]))
            ns.add(int(self.node_of_cell[self.cell_at(row, col + 1)]))
        x0, x1 = col / cols, (col + 1) / cols
        for drow in (-1, 1):
            if self.rows == 1:
                break
            nrow = (row + drow) % self.rows
            ncols = int(self.cols_of[nrow])
            for ncol in range(ncols):
                nx0, nx1 = ncol / ncols, (ncol + 1) / ncols
                if self._intervals_touch(x0, x1, nx0, nx1):
                    ns.add(int(self.node_of_cell[self.cell_at(nrow, ncol)]))
        ns.discard(node)
        result = tuple(sorted(ns))
        self._neighbor_cache[node] = result
        return result

    @staticmethod
    def _intervals_touch(a0: float, a1: float, b0: float, b1: float) -> bool:
        """Overlap test for circular intervals on [0, 1) (closed ends so
        zones sharing only a corner still count as CAN neighbors)."""
        eps = 1e-12
        # Unwrap: compare on the circle by also shifting one interval.
        for shift in (-1.0, 0.0, 1.0):
            if a0 + shift <= b1 + eps and b0 <= a1 + shift + eps:
                return True
        return False

    def next_hop(self, at: int, dst: int) -> int:
        """CAN forwarding: vertical leg toward the destination band
        (shorter way around), then horizontal within the band."""
        self._check_node(at)
        self._check_node(dst)
        if at == dst:
            return dst
        row_a, col_a = self.cell_coords(int(self.cell_of_node[at]))
        row_d, col_d = self.cell_coords(int(self.cell_of_node[dst]))

        if row_a != row_d:
            # Vertical leg: step one band the shorter way around.
            down = (row_d - row_a) % self.rows
            up = (row_a - row_d) % self.rows
            drow = 1 if down <= up else -1
            nrow = (row_a + drow) % self.rows
            # Enter the adjacent band at the zone closest (circularly)
            # to the destination's x-center.
            ncols = int(self.cols_of[nrow])
            dcols = int(self.cols_of[row_d])
            target_x = (col_d + 0.5) / dcols
            # Candidate zones must overlap our zone's x-interval.
            cols_a = int(self.cols_of[row_a])
            x0, x1 = col_a / cols_a, (col_a + 1) / cols_a
            best, best_d = None, float("inf")
            for ncol in range(ncols):
                nx0, nx1 = ncol / ncols, (ncol + 1) / ncols
                if not self._intervals_touch(x0, x1, nx0, nx1):
                    continue
                center = (ncol + 0.5) / ncols
                d = abs(center - target_x)
                d = min(d, 1.0 - d)
                if d < best_d - 1e-15 or (abs(d - best_d) <= 1e-15 and best is None):
                    best, best_d = self.cell_at(nrow, ncol), d
            assert best is not None
            return int(self.node_of_cell[best])

        # Horizontal leg within the destination band.
        cols = int(self.cols_of[row_a])
        right = (col_d - col_a) % cols
        left = (col_a - col_d) % cols
        dcol = 1 if right <= left else -1
        return int(self.node_of_cell[self.cell_at(row_a, col_a + dcol)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CANOverlay(n_nodes={self.n_nodes}, rows={self.rows})"
