"""Chord overlay (Stoica et al., SIGCOMM 2001) — ref [14].

Chord arranges nodes on the same 128-bit ring and routes strictly
clockwise.  Node ``n`` keeps a finger table: finger ``i`` is the first
node clockwise from ``n.id + 2^i``.  Lookup forwards to the closest
finger preceding the key, halving the remaining clockwise distance each
step, giving ``O(log₂ N)`` hops — roughly twice Pastry's ``b = 4`` hop
count, which the transport benches surface when comparing overlays.

As with Pastry, routing state is derived from the sorted id array on
demand (``successor`` is one binary search), so large-N hop statistics
stay cheap.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.overlay.base import Overlay
from repro.overlay.node_id import (
    ID_BITS,
    ID_SPACE,
    clockwise_distance,
    node_id_of,
)

__all__ = ["ChordOverlay"]


class ChordOverlay(Overlay):
    """A converged Chord ring over ``n_nodes`` rankers."""

    def __init__(self, n_nodes: int, *, seed: int = 0):
        super().__init__(n_nodes)
        self.seed = int(seed)
        ids = [node_id_of(i, salt=str(seed)) for i in range(n_nodes)]
        if len(set(ids)) != n_nodes:  # pragma: no cover - 2^-128 event
            raise RuntimeError("node id collision; change the seed")
        self.id_of = np.array(ids, dtype=object)
        order = sorted(range(n_nodes), key=lambda i: ids[i])
        self.sorted_indices = np.array(order, dtype=np.int64)
        self.sorted_ids: List[int] = [ids[i] for i in order]
        self.rank_of = np.empty(n_nodes, dtype=np.int64)
        self.rank_of[self.sorted_indices] = np.arange(n_nodes)
        self._finger_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def _bisect(self, key: int) -> int:
        lo, hi = 0, self.n_nodes
        ids = self.sorted_ids
        while lo < hi:
            mid = (lo + hi) // 2
            if ids[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def successor(self, key: int) -> int:
        """First node clockwise from ``key`` (inclusive)."""
        pos = self._bisect(key % ID_SPACE)
        return int(self.sorted_indices[pos % self.n_nodes])

    def successor_node(self, node: int) -> int:
        """The node immediately clockwise of ``node`` on the ring."""
        r = int(self.rank_of[node])
        return int(self.sorted_indices[(r + 1) % self.n_nodes])

    def predecessor_node(self, node: int) -> int:
        """The node immediately counter-clockwise of ``node``."""
        r = int(self.rank_of[node])
        return int(self.sorted_indices[(r - 1) % self.n_nodes])

    def fingers(self, node: int) -> Tuple[int, ...]:
        """Distinct finger-table entries of ``node`` (cached)."""
        cached = self._finger_cache.get(node)
        if cached is not None:
            return cached
        self._check_node(node)
        own = self.id_of[node]
        out = []
        seen = set()
        for i in range(ID_BITS):
            f = self.successor((own + (1 << i)) % ID_SPACE)
            if f != node and f not in seen:
                seen.add(f)
                out.append(f)
        result = tuple(out)
        self._finger_cache[node] = result
        return result

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Fingers plus immediate successor and predecessor."""
        ns = set(self.fingers(node))
        ns.add(self.successor_node(node))
        ns.add(self.predecessor_node(node))
        ns.discard(node)
        return tuple(sorted(ns))

    def next_hop(self, at: int, dst: int) -> int:
        """Chord forwarding: successor if the key is next, else the
        closest preceding finger."""
        self._check_node(at)
        self._check_node(dst)
        if at == dst:
            return dst
        key = self.id_of[dst]
        own = self.id_of[at]
        succ = self.successor_node(at)
        # Deliver if the key lies in (own, successor].
        if clockwise_distance(own, key) <= clockwise_distance(own, self.id_of[succ]):
            return succ if succ != dst else dst
        # Closest preceding finger: the finger farthest clockwise while
        # still strictly before the key.
        target_span = clockwise_distance(own, key)
        best, best_span = None, 0
        for f in self.fingers(at):
            span = clockwise_distance(own, self.id_of[f])
            if 0 < span < target_span and span > best_span:
                best, best_span = f, span
        return best if best is not None else succ

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChordOverlay(n_nodes={self.n_nodes})"
