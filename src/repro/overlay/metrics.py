"""Hop-count and neighbor statistics over overlays.

These feed the cost model (§4.4/4.5): ``h`` enters formulas 4.1, 4.2
and 4.4; ``g`` enters formula 4.3.  The paper quotes Pastry's measured
means — ~2.5 hops at 1 000 nodes, ~3.5 at 10 000, ~4.0 at 100 000 —
which the Table 1 bench re-derives from these estimators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.overlay.base import Overlay
from repro.utils.rng import as_generator, RngLike

__all__ = ["HopStatistics", "hop_statistics", "neighbor_statistics"]


@dataclass
class HopStatistics:
    """Sampled distribution of overlay route lengths."""

    n_nodes: int
    n_samples: int
    mean: float
    p50: float
    p95: float
    max: int

    def as_dict(self) -> Dict[str, float]:
        """Statistics as a flat mapping (for table rows / JSON)."""
        return {
            "n_nodes": float(self.n_nodes),
            "n_samples": float(self.n_samples),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "max": float(self.max),
        }


def hop_statistics(
    overlay: Overlay, n_samples: int = 2000, *, seed: RngLike = 0
) -> HopStatistics:
    """Sample random (src, dst) routes and summarize their hop counts."""
    rng = as_generator(seed)
    n = overlay.n_nodes
    if n == 1:
        return HopStatistics(n, n_samples, 0.0, 0.0, 0.0, 0)
    hops = np.empty(n_samples, dtype=np.int64)
    for i in range(n_samples):
        src = int(rng.integers(0, n))
        dst = int(rng.integers(0, n - 1))
        if dst >= src:
            dst += 1
        hops[i] = overlay.hops(src, dst)
    return HopStatistics(
        n_nodes=n,
        n_samples=n_samples,
        mean=float(hops.mean()),
        p50=float(np.percentile(hops, 50)),
        p95=float(np.percentile(hops, 95)),
        max=int(hops.max()),
    )


def neighbor_statistics(
    overlay: Overlay, max_nodes: int = 2000, *, seed: RngLike = 0
) -> Dict[str, float]:
    """Mean/max neighbor count ``g``; sampled when the overlay is large.

    Neighbor-set derivation costs ``O(2^b log N)`` per node, so for
    very large overlays a random subset of ``max_nodes`` nodes is used.
    """
    rng = as_generator(seed)
    n = overlay.n_nodes
    if n <= max_nodes:
        nodes = range(n)
        sampled = False
    else:
        nodes = rng.choice(n, size=max_nodes, replace=False)
        sampled = True
    counts = np.array([len(overlay.neighbors(int(i))) for i in nodes], dtype=np.int64)
    return {
        "mean": float(counts.mean()),
        "max": float(counts.max()),
        "min": float(counts.min()),
        "sampled": float(sampled),
    }
