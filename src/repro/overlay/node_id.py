"""Node identifiers and circular id-space arithmetic.

All overlays share a 128-bit circular identifier space (Pastry's
native width; Chord's analysis is width-independent).  Node ids are
derived from the ranker index by stable hashing, so the same index
always lands at the same point of the ring across runs and overlay
kinds.
"""

from __future__ import annotations

from typing import List

from repro.utils.hashing import stable_uint128

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "node_id_of",
    "digits_of",
    "digit_at",
    "shared_prefix_digits",
    "ring_distance",
    "clockwise_distance",
]

ID_BITS = 128
ID_SPACE = 1 << ID_BITS


def node_id_of(node_index: int, *, salt: str = "") -> int:
    """Stable 128-bit overlay id of ranker ``node_index``."""
    return stable_uint128(f"node:{node_index}", salt=f"overlay:{salt}")


def digits_of(node_id: int, bits_per_digit: int) -> List[int]:
    """Big-endian base-``2^bits_per_digit`` digits of a 128-bit id."""
    if ID_BITS % bits_per_digit != 0:
        raise ValueError(f"bits_per_digit must divide {ID_BITS}")
    n_digits = ID_BITS // bits_per_digit
    mask = (1 << bits_per_digit) - 1
    return [
        (node_id >> (bits_per_digit * (n_digits - 1 - i))) & mask
        for i in range(n_digits)
    ]


def digit_at(node_id: int, position: int, bits_per_digit: int) -> int:
    """Big-endian digit ``position`` (0 = most significant)."""
    n_digits = ID_BITS // bits_per_digit
    if not 0 <= position < n_digits:
        raise ValueError(f"digit position {position} out of range [0, {n_digits})")
    shift = bits_per_digit * (n_digits - 1 - position)
    return (node_id >> shift) & ((1 << bits_per_digit) - 1)


def shared_prefix_digits(a: int, b: int, bits_per_digit: int) -> int:
    """Length of the common big-endian digit prefix of two ids."""
    n_digits = ID_BITS // bits_per_digit
    x = a ^ b
    if x == 0:
        return n_digits
    # Index of the highest differing bit, counted from the MSB side.
    high_bit = x.bit_length() - 1
    msb_offset = ID_BITS - 1 - high_bit
    return msb_offset // bits_per_digit


def ring_distance(a: int, b: int) -> int:
    """Shorter-way circular distance between two ids."""
    d = (a - b) % ID_SPACE
    return min(d, ID_SPACE - d)


def clockwise_distance(a: int, b: int) -> int:
    """Distance travelling clockwise (increasing ids) from ``a`` to ``b``."""
    return (b - a) % ID_SPACE
