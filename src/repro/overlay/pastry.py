"""Pastry overlay (Rowstron & Druschel, Middleware 2001) — ref [6].

Pastry nodes hold a 128-bit id interpreted as digits of base ``2^b``.
Routing state per node:

* **Leaf set** — the ``L/2`` numerically closest ids on either side of
  the node's own id.
* **Routing table** — for each digit position ``r`` and digit value
  ``c`` differing from the node's own digit at ``r``, one node whose id
  shares the first ``r`` digits with the node and has digit ``c`` at
  position ``r``.

Routing a key: if the key falls within the leaf-set span, deliver to
the numerically closest leaf; otherwise forward to the routing-table
entry matching one more digit of the key; otherwise (rare) to any known
node closer to the key.  Expected hop count is ``log_{2^b} N`` — ~2.5
hops at N=1000 with b=4, the figure the paper plugs into its bandwidth
analysis.

Implementation: rather than materializing per-node tables, entries are
resolved on demand by binary search over the globally sorted id array.
The resolved entry (smallest id with the required prefix) is exactly a
valid table entry, and the derivation is deterministic, so the overlay
behaves like a converged Pastry network without O(N·2^b·log N) setup
memory — which is what keeps 100 000-node hop measurements (Table 1's
``h``) tractable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.overlay.base import Overlay
from repro.overlay.node_id import (
    ID_BITS,
    ID_SPACE,
    clockwise_distance,
    digit_at,
    node_id_of,
    ring_distance,
    shared_prefix_digits,
)

__all__ = ["PastryOverlay"]


class PastryOverlay(Overlay):
    """A converged Pastry network over ``n_nodes`` rankers.

    Parameters
    ----------
    n_nodes:
        Number of overlay nodes (page rankers).
    bits_per_digit:
        Pastry's ``b``; the routing table has ``2^b`` columns.  The
        paper's hop numbers correspond to the common ``b = 4``.
    leaf_set_size:
        Total leaf-set size ``L`` (half on each side).  Pastry's
        typical value is 16.
    seed:
        Salts the node-id hash so different seeds give different id
        placements.
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        bits_per_digit: int = 4,
        leaf_set_size: int = 16,
        seed: int = 0,
    ):
        super().__init__(n_nodes)
        if ID_BITS % bits_per_digit != 0:
            raise ValueError(f"bits_per_digit must divide {ID_BITS}")
        if leaf_set_size < 2 or leaf_set_size % 2:
            raise ValueError("leaf_set_size must be an even number >= 2")
        self.b = int(bits_per_digit)
        self.n_digits = ID_BITS // self.b
        self.leaf_half = min(leaf_set_size // 2, max(n_nodes - 1, 0))
        self.seed = int(seed)

        ids = [node_id_of(i, salt=str(seed)) for i in range(n_nodes)]
        if len(set(ids)) != n_nodes:  # pragma: no cover - 2^-128 event
            raise RuntimeError("node id collision; change the seed")
        self.id_of = np.array(ids, dtype=object)
        order = sorted(range(n_nodes), key=lambda i: ids[i])
        self.sorted_indices = np.array(order, dtype=np.int64)
        self.sorted_ids: List[int] = [ids[i] for i in order]
        self.rank_of = np.empty(n_nodes, dtype=np.int64)
        self.rank_of[self.sorted_indices] = np.arange(n_nodes)
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Id-space search helpers
    # ------------------------------------------------------------------
    def _bisect(self, key: int) -> int:
        """Index of the first sorted id >= key (may equal n_nodes)."""
        lo, hi = 0, self.n_nodes
        ids = self.sorted_ids
        while lo < hi:
            mid = (lo + hi) // 2
            if ids[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _first_in_range(self, lo_key: int, hi_key: int) -> int:
        """Node index of the smallest id in ``[lo_key, hi_key]``; -1 if none."""
        pos = self._bisect(lo_key)
        if pos < self.n_nodes and self.sorted_ids[pos] <= hi_key:
            return int(self.sorted_indices[pos])
        return -1

    def owner(self, key: int) -> int:
        """Node whose id is numerically closest to ``key`` on the ring.

        Ties (exactly half the ring away) break toward the clockwise
        candidate.  This mirrors Pastry's "numerically closest node"
        delivery rule.
        """
        pos = self._bisect(key % ID_SPACE)
        after = int(self.sorted_indices[pos % self.n_nodes])
        before = int(self.sorted_indices[(pos - 1) % self.n_nodes])
        da = ring_distance(self.id_of[after], key % ID_SPACE)
        db = ring_distance(self.id_of[before], key % ID_SPACE)
        return after if da <= db else before

    # ------------------------------------------------------------------
    # Routing state (derived on demand)
    # ------------------------------------------------------------------
    def leaf_set(self, node: int) -> List[int]:
        """Leaf set of ``node``: nearest ids on both sides, excluding self."""
        self._check_node(node)
        r = int(self.rank_of[node])
        leaves = []
        for off in range(1, self.leaf_half + 1):
            leaves.append(int(self.sorted_indices[(r + off) % self.n_nodes]))
            leaves.append(int(self.sorted_indices[(r - off) % self.n_nodes]))
        # With tiny networks the two sides overlap; dedupe, drop self.
        out = []
        seen = {node}
        for x in leaves:
            if x not in seen:
                seen.add(x)
                out.append(x)
        return out

    def table_entry(self, node: int, row: int, col: int) -> int:
        """Routing-table entry at (row, col) for ``node``; -1 if empty.

        The entry is the smallest id sharing ``row`` digits with the
        node and having digit ``col`` at position ``row`` — a
        deterministic stand-in for the proximity-chosen entry of a real
        deployment (hop counts are unaffected by which valid entry is
        chosen).
        """
        self._check_node(node)
        own = self.id_of[node]
        if digit_at(own, row, self.b) == col:
            return -1
        remaining = ID_BITS - self.b * (row + 1)
        prefix = own >> (ID_BITS - self.b * row) if row > 0 else 0
        lo = ((prefix << self.b) | col) << remaining
        hi = lo | ((1 << remaining) - 1)
        found = self._first_in_range(lo, hi)
        return found if found != node else -1

    def _leaf_span_contains(self, node: int, key: int) -> bool:
        """True if ``key`` lies within the arc covered by the leaf set."""
        if self.n_nodes <= self.leaf_half * 2 + 1:
            return True  # leaf set covers the whole ring
        r = int(self.rank_of[node])
        lo_id = self.id_of[int(self.sorted_indices[(r - self.leaf_half) % self.n_nodes])]
        hi_id = self.id_of[int(self.sorted_indices[(r + self.leaf_half) % self.n_nodes])]
        span = clockwise_distance(lo_id, hi_id)
        return clockwise_distance(lo_id, key) <= span

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------
    def next_hop(self, at: int, dst: int) -> int:
        """Pastry forwarding: leaf-set delivery, else routing table,
        else the closer-node fallback (raw Pastry semantics)."""
        self._check_node(at)
        self._check_node(dst)
        if at == dst:
            return dst
        key = self.id_of[dst]
        own = self.id_of[at]

        # 1. Leaf-set delivery: key within leaf span -> closest leaf.
        if self._leaf_span_contains(at, key):
            best = dst if dst in set(self.leaf_set(at)) else None
            if best is not None:
                return best
            # Closest leaf to the key (the key IS dst's id, so the
            # closest node overall is dst; among leaves pick nearest).
            leaves = self.leaf_set(at)
            return min(leaves, key=lambda x: (ring_distance(self.id_of[x], key), x))

        # 2. Routing table: match one more digit.
        row = shared_prefix_digits(own, key, self.b)
        col = digit_at(key, row, self.b)
        entry = self.table_entry(at, row, col)
        if entry >= 0 and entry != at:
            return entry

        # 3. Rare fallback: any known node with >= row shared digits
        #    strictly closer to the key than we are.
        own_dist = ring_distance(own, key)
        candidates = list(self.leaf_set(at))
        for c in range(1 << self.b):
            e = self.table_entry(at, row, c)
            if e >= 0:
                candidates.append(e)
        best, best_d = None, own_dist
        for cand in candidates:
            cid = self.id_of[cand]
            if shared_prefix_digits(cid, key, self.b) >= row:
                d = ring_distance(cid, key)
                if d < best_d:
                    best, best_d = cand, d
        if best is not None:
            return best
        # Guaranteed progress through the leaf set toward the key.
        leaves = self.leaf_set(at)
        return min(leaves, key=lambda x: (ring_distance(self.id_of[x], key), x))

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Leaf set plus all populated routing-table entries (cached)."""
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        self._check_node(node)
        ns = set(self.leaf_set(node))
        own = self.id_of[node]
        for row in range(self.n_digits):
            remaining = ID_BITS - self.b * (row + 1)
            prefix = own >> (ID_BITS - self.b * row) if row > 0 else 0
            # If the row's whole prefix range holds no node but self,
            # all deeper rows are empty too.
            row_lo = prefix << (remaining + self.b)
            row_hi = row_lo | ((1 << (remaining + self.b)) - 1)
            pos = self._bisect(row_lo)
            nodes_in_row = 0
            while pos + nodes_in_row < self.n_nodes and nodes_in_row < 2:
                if self.sorted_ids[pos + nodes_in_row] <= row_hi:
                    nodes_in_row += 1
                else:
                    break
            for col in range(1 << self.b):
                e = self.table_entry(node, row, col)
                if e >= 0:
                    ns.add(e)
            if nodes_in_row < 2:
                break
        ns.discard(node)
        result = tuple(sorted(ns))
        self._neighbor_cache[node] = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PastryOverlay(n_nodes={self.n_nodes}, b={self.b}, "
            f"leaf_set={2 * self.leaf_half})"
        )
