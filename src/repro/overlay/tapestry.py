"""Tapestry overlay (Zhao, Kubiatowicz, Joseph) — ref [15].

Tapestry is the Plaxton-mesh member of the paper's overlay list: it
routes by resolving the destination id one digit per hop like Pastry,
but matches **suffixes** (least-significant digit first) rather than
prefixes, and fills holes with *surrogate routing* — when no node
carries the required next digit, the digit value is bumped (mod 2^b)
until a populated slot is found, deterministically.

Implementation trick: suffix matching on ids is prefix matching on
digit-*reversed* ids, so one sorted array of reversed ids supports the
same binary-search-derived routing state as our Pastry (see
``overlay/pastry.py``).  Expected hops are the same
``log_{2^b} N`` — which is why the paper treats Pastry/Tapestry as
interchangeable for its analysis; the hop benches confirm it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.overlay.base import Overlay
from repro.overlay.node_id import ID_BITS, node_id_of

__all__ = ["TapestryOverlay"]


def _reverse_digits(value: int, bits_per_digit: int) -> int:
    """Reverse the base-``2^b`` digits of a 128-bit id."""
    n_digits = ID_BITS // bits_per_digit
    mask = (1 << bits_per_digit) - 1
    out = 0
    for _ in range(n_digits):
        out = (out << bits_per_digit) | (value & mask)
        value >>= bits_per_digit
    return out


def _shared_suffix_digits(a: int, b: int, bits_per_digit: int) -> int:
    """Number of matching low-order digits of two ids."""
    n_digits = ID_BITS // bits_per_digit
    x = a ^ b
    if x == 0:
        return n_digits
    trailing = (x & -x).bit_length() - 1
    return trailing // bits_per_digit


def _digit_from_low(value: int, position: int, bits_per_digit: int) -> int:
    """Digit ``position`` counted from the least-significant end."""
    return (value >> (bits_per_digit * position)) & ((1 << bits_per_digit) - 1)


class TapestryOverlay(Overlay):
    """A converged Tapestry mesh over ``n_nodes`` rankers."""

    def __init__(self, n_nodes: int, *, bits_per_digit: int = 4, seed: int = 0):
        super().__init__(n_nodes)
        if ID_BITS % bits_per_digit != 0:
            raise ValueError(f"bits_per_digit must divide {ID_BITS}")
        self.b = int(bits_per_digit)
        self.n_digits = ID_BITS // self.b
        self.seed = int(seed)
        ids = [node_id_of(i, salt=str(seed)) for i in range(n_nodes)]
        if len(set(ids)) != n_nodes:  # pragma: no cover - 2^-128 event
            raise RuntimeError("node id collision; change the seed")
        self.id_of = np.array(ids, dtype=object)
        self.rev_of = [_reverse_digits(i, self.b) for i in ids]
        order = sorted(range(n_nodes), key=lambda i: self.rev_of[i])
        self.sorted_indices = np.array(order, dtype=np.int64)
        self.sorted_revs: List[int] = [self.rev_of[i] for i in order]
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def _bisect(self, rev_key: int) -> int:
        lo, hi = 0, self.n_nodes
        revs = self.sorted_revs
        while lo < hi:
            mid = (lo + hi) // 2
            if revs[mid] < rev_key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _first_with_suffix(self, suffix: int, n_suffix_digits: int) -> int:
        """Node index of the smallest reversed-id whose id ends with the
        given digit suffix; -1 if none exists."""
        rev_prefix = _reverse_digits(suffix, self.b) >> (
            self.b * (self.n_digits - n_suffix_digits)
        )
        remaining = ID_BITS - self.b * n_suffix_digits
        lo = rev_prefix << remaining
        hi = lo | ((1 << remaining) - 1)
        pos = self._bisect(lo)
        if pos < self.n_nodes and self.sorted_revs[pos] <= hi:
            return int(self.sorted_indices[pos])
        return -1

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------
    def next_hop(self, at: int, dst: int) -> int:
        """Tapestry forwarding: resolve one more low-order digit of the
        destination id per hop."""
        self._check_node(at)
        self._check_node(dst)
        if at == dst:
            return dst
        own = self.id_of[at]
        key = self.id_of[dst]
        level = _shared_suffix_digits(own, key, self.b)
        # Need a node matching one more low digit of the key.  Since
        # the key IS a live node's id, the exact slot is always
        # populated (by dst itself if nobody closer), so surrogate
        # bumping never fires on node-to-node routes.
        suffix_digits = level + 1
        suffix = key & ((1 << (self.b * suffix_digits)) - 1)
        entry = self._first_with_suffix(suffix, suffix_digits)
        assert entry >= 0, "exact suffix slot must contain at least dst"
        if entry == at:
            # We are the canonical representative of this slot; jump
            # straight to the destination's deeper suffix instead.
            return dst if suffix_digits >= self.n_digits else self.next_hop_deeper(
                at, dst, suffix_digits
            )
        return entry

    def next_hop_deeper(self, at: int, dst: int, from_level: int) -> int:
        """Resolve additional digits when ``at`` already represents the
        current slot (rare with sparse networks)."""
        key = self.id_of[dst]
        for suffix_digits in range(from_level + 1, self.n_digits + 1):
            suffix = key & ((1 << (self.b * suffix_digits)) - 1)
            entry = self._first_with_suffix(suffix, suffix_digits)
            if entry >= 0 and entry != at:
                return entry
        return dst

    def surrogate_owner(self, key: int) -> int:
        """Tapestry surrogate routing for an arbitrary (object) key.

        Resolve the key digit by digit from the low end; whenever no
        node matches the exact next digit, bump that digit upward
        (mod 2^b) until a populated slot appears — the deterministic
        surrogate rule, giving every key a unique live root.
        """
        resolved = 0  # suffix digits fixed so far (possibly surrogated)
        for level in range(self.n_digits):
            want = _digit_from_low(key, level, self.b)
            for bump in range(1 << self.b):
                digit = (want + bump) % (1 << self.b)
                candidate_suffix = (digit << (self.b * level)) | resolved
                entry = self._first_with_suffix(candidate_suffix, level + 1)
                if entry >= 0:
                    resolved = candidate_suffix
                    break
            else:  # pragma: no cover - impossible with n_nodes >= 1
                raise RuntimeError("no surrogate found")
            # If exactly one node carries this suffix, it is the root.
            remaining = ID_BITS - self.b * (level + 1)
            rev_prefix = _reverse_digits(resolved, self.b) >> (
                self.b * (self.n_digits - level - 1)
            )
            lo = rev_prefix << remaining
            hi = lo | ((1 << remaining) - 1)
            pos = self._bisect(lo)
            in_range = []
            while pos < self.n_nodes and self.sorted_revs[pos] <= hi:
                in_range.append(int(self.sorted_indices[pos]))
                if len(in_range) > 1:
                    break
                pos += 1
            if len(in_range) == 1:
                return in_range[0]
        return self._first_with_suffix(resolved, self.n_digits)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Routing-mesh entries: one representative per (level, digit)."""
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        self._check_node(node)
        own = self.id_of[node]
        ns = set()
        for level in range(self.n_digits):
            own_suffix = own & ((1 << (self.b * level)) - 1) if level else 0
            populated = 0
            for digit in range(1 << self.b):
                suffix = (digit << (self.b * level)) | own_suffix
                entry = self._first_with_suffix(suffix, level + 1)
                if entry >= 0:
                    populated += 1
                    if entry != node:
                        ns.add(entry)
            if populated <= 1:
                break  # deeper levels hold only this node's own branch
        ns.discard(node)
        result = tuple(sorted(ns))
        self._neighbor_cache[node] = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TapestryOverlay(n_nodes={self.n_nodes}, b={self.b})"
