"""Parallel experiment harness.

Three cooperating pieces:

* :mod:`repro.parallel.cache` — content-addressed artifact cache for
  graphs, reference vectors, and sweep-point results;
* :mod:`repro.parallel.sharedmem` — zero-copy CSR workload handoff to
  worker processes via POSIX shared memory;
* :mod:`repro.parallel.tasks` / :mod:`repro.parallel.executor` — suite
  decomposition into independent seeded tasks and their execution,
  serially or over a process pool, with bit-identical results.
"""

from repro.parallel.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA_VERSION,
    ArtifactCache,
    activate,
    active_cache,
    array_fingerprint,
    cache_from_env,
    cache_key,
    cached_point,
    set_active_cache,
)
from repro.parallel.executor import run_suite
from repro.parallel.sharedmem import SharedWorkload, attach_workload
from repro.parallel.tasks import (
    SweepTask,
    assemble_experiment,
    execute_task,
    plan_experiment,
    suite_options,
)

__all__ = [
    "ArtifactCache",
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "SharedWorkload",
    "SweepTask",
    "activate",
    "active_cache",
    "array_fingerprint",
    "attach_workload",
    "assemble_experiment",
    "cache_from_env",
    "cache_key",
    "cached_point",
    "execute_task",
    "plan_experiment",
    "run_suite",
    "set_active_cache",
    "suite_options",
]
