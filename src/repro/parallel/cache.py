"""Content-addressed artifact cache for the experiment harness.

Everything the experiment suite derives deterministically from a seed
— generated :class:`~repro.graph.webgraph.WebGraph`\\ s, site
partitions, centralized reference PageRank vectors, and whole sweep-
point results — is addressed by a stable hash of the parameters that
produced it.  Repeated sweep points (``run_all`` recomputes the same
centralized reference inside fig6, fig7 and every ablation) and
repeated CI invocations then skip regeneration entirely.

Key properties:

* **Stable keys** — :func:`cache_key` hashes a canonical JSON
  rendering of ``(kind, schema version, params)``; keys never depend
  on process hash randomization, dict order, or platform integer
  width.  Bumping :data:`CACHE_SCHEMA_VERSION` invalidates every
  entry at once, which is the escape hatch when a solver or generator
  changes behaviour.
* **Corruption safety** — entries are written to a temporary file in
  the destination directory and atomically renamed into place, so a
  crashed or concurrent writer can never publish a half-written
  artifact.  Unreadable or truncated entries are treated as misses
  (and removed), never as errors.
* **Determinism** — artifacts round-trip bit-exactly (npz for arrays,
  pickle for result objects), so a warm run is byte-identical to a
  cold one.

The active cache is process-global (set with :func:`activate` or
:func:`set_active_cache`); when none is active every helper computes
directly, which is the pre-cache code path, bit for bit.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

import numpy as np

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CACHE_DIR_ENV",
    "ArtifactCache",
    "cache_key",
    "canonical_params",
    "active_cache",
    "set_active_cache",
    "activate",
    "cache_from_env",
    "cached_point",
    "array_fingerprint",
]

#: Bump to invalidate every existing cache entry (schema is part of
#: every key).  Bump whenever the *meaning* of stored artifacts
#: changes: solver semantics, generator behaviour, result layouts.
CACHE_SCHEMA_VERSION = 1

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def canonical_params(params: Any) -> Any:
    """Normalize ``params`` into a JSON-stable structure.

    Tuples become lists, numpy scalars become Python scalars, dict
    keys are coerced to strings (json sorts them), and floats pass
    through json's shortest-roundtrip repr.  Raises ``TypeError`` for
    anything without an obvious canonical form — silent fallback reprs
    would make keys fragile.
    """
    if isinstance(params, Mapping):
        return {str(k): canonical_params(v) for k, v in params.items()}
    if isinstance(params, (list, tuple)):
        return [canonical_params(v) for v in params]
    if isinstance(params, np.generic):
        return params.item()
    if params is None or isinstance(params, (bool, int, float, str)):
        return params
    raise TypeError(f"cannot canonicalize cache-key component of type {type(params)!r}")


def cache_key(kind: str, params: Mapping[str, Any]) -> str:
    """Content-address for an artifact: sha256 over canonical JSON.

    ``kind`` namespaces the artifact family (``"webgraph"``,
    ``"reference"``, ``"partition"``, ``"point/<experiment>"`` …);
    ``params`` must contain *every* input that determines the
    artifact's value, including the producing graph's fingerprint for
    graph-derived artifacts.
    """
    payload = json.dumps(
        {"kind": kind, "schema": CACHE_SCHEMA_VERSION, "params": canonical_params(params)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def array_fingerprint(arr: np.ndarray) -> str:
    """Short stable digest of an array's dtype/shape/contents."""
    h = hashlib.sha1()
    arr = np.ascontiguousarray(arr)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


class ArtifactCache:
    """Filesystem-backed content-addressed store.

    Layout: ``<root>/<key[:2]>/<key><suffix>`` — the two-character fan
    -out keeps directories small at large entry counts.  All writes are
    atomic (temp file + ``os.replace``); all reads treat unreadable
    entries as misses.
    """

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def __repr__(self) -> str:
        return (
            f"ArtifactCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )

    # ------------------------------------------------------------------
    # Paths and atomic I/O
    # ------------------------------------------------------------------
    def path_for(self, key: str, suffix: str) -> Path:
        """Filesystem location of an entry (it may not exist)."""
        return self.root / key[:2] / f"{key}{suffix}"

    def _atomic_write(self, path: Path, writer: Callable[[Any], None]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                writer(fh)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stores += 1

    def _discard(self, path: Path) -> None:
        with contextlib.suppress(OSError):
            path.unlink()

    # ------------------------------------------------------------------
    # Array entries (npz)
    # ------------------------------------------------------------------
    def store_arrays(self, key: str, **arrays: np.ndarray) -> None:
        """Store named arrays under ``key`` (atomic npz write)."""
        path = self.path_for(key, ".npz")
        self._atomic_write(path, lambda fh: np.savez(fh, **arrays))

    def load_arrays(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Load an array entry; ``None`` on miss or corruption."""
        path = self.path_for(key, ".npz")
        if not path.is_file():
            self.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                out = {name: data[name] for name in data.files}
        except Exception:
            # Truncated/corrupt archive: drop it and regenerate.
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return out

    # ------------------------------------------------------------------
    # Object entries (pickle)
    # ------------------------------------------------------------------
    def store_object(self, key: str, obj: Any) -> None:
        """Store a picklable object under ``key`` (atomic write)."""
        path = self.path_for(key, ".pkl")
        self._atomic_write(
            path, lambda fh: pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def load_object(self, key: str) -> Optional[Any]:
        """Load an object entry; ``None`` on miss or corruption.

        Stored objects are wrapped (``{"value": obj}``) by
        :func:`cached_point`, so a legitimately-``None`` value is
        distinguishable from a miss.
        """
        path = self.path_for(key, ".pkl")
        if not path.is_file():
            self.misses += 1
            return None
        try:
            with open(path, "rb") as fh:
                obj = pickle.load(fh)
        except Exception:
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return obj

    # ------------------------------------------------------------------
    # Graph entries (versioned npz via repro.graph.io)
    # ------------------------------------------------------------------
    def store_graph(self, key: str, graph) -> None:
        """Store a WebGraph under ``key`` in the repo's npz format."""
        from repro.graph.io import save_webgraph

        path = self.path_for(key, ".graph.npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp.npz")
        os.close(fd)
        try:
            save_webgraph(graph, tmp)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stores += 1

    def load_graph(self, key: str):
        """Load a WebGraph entry; ``None`` on miss or corruption."""
        from repro.graph.io import load_webgraph

        path = self.path_for(key, ".graph.npz")
        if not path.is_file():
            self.misses += 1
            return None
        try:
            graph = load_webgraph(path)
        except Exception:
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return graph


# ----------------------------------------------------------------------
# Active-cache plumbing
# ----------------------------------------------------------------------
_ACTIVE: Optional[ArtifactCache] = None


def active_cache() -> Optional[ArtifactCache]:
    """The process-wide cache, or ``None`` when caching is off."""
    return _ACTIVE


def set_active_cache(cache: Optional[ArtifactCache]) -> Optional[ArtifactCache]:
    """Install ``cache`` as the process-wide cache; returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    return previous


@contextlib.contextmanager
def activate(cache: Optional[ArtifactCache]):
    """Scope ``cache`` as the active cache for a ``with`` block."""
    previous = set_active_cache(cache)
    try:
        yield cache
    finally:
        set_active_cache(previous)


def cache_from_env() -> Optional[ArtifactCache]:
    """Build a cache from ``$REPRO_CACHE_DIR`` (``None`` if unset/empty)."""
    root = os.environ.get(CACHE_DIR_ENV, "").strip()
    return ArtifactCache(root) if root else None


def cached_point(kind: str, params: Mapping[str, Any], compute: Callable[[], Any]) -> Any:
    """Memoize one deterministic sweep point through the active cache.

    ``params`` must capture every input of ``compute`` (seeds, grid
    values, graph/reference fingerprints).  With no active cache this
    is exactly ``compute()``.
    """
    cache = active_cache()
    if cache is None:
        return compute()
    key = cache_key(kind, params)
    hit = cache.load_object(key)
    if hit is not None:
        return hit["value"]
    value = compute()
    cache.store_object(key, {"value": value})
    return value
