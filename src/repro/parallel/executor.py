"""Suite execution: serial inline or across a process pool.

:func:`run_suite` is the single execution path behind
``report.run_all`` for every ``jobs`` value.  It plans the selected
experiments into independent tasks (:mod:`repro.parallel.tasks`),
executes them — inline and in plan order for ``jobs == 1``, over a
``ProcessPoolExecutor`` with a shared-memory workload for
``jobs > 1`` — then reassembles the results in the caller's canonical
experiment order.  Because the serial and parallel paths run the very
same point functions with the same seeds, the assembled results (and
hence the formatted report tables) are bit-identical across modes.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.workloads import ExperimentScale
from repro.parallel import tasks as _tasks
from repro.parallel.cache import active_cache
from repro.parallel.sharedmem import SharedWorkload
from repro.parallel.tasks import (
    REF_DEFAULT,
    REF_TRADEOFF,
    SweepTask,
    assemble_experiment,
    execute_task,
    experiment_needs_graph,
    experiment_ref_keys,
    plan_experiment,
    suite_options,
)

__all__ = ["run_suite"]


def _run_task(task: SweepTask) -> Tuple[str, int, Any, float]:
    """Pool entry point: run one task against the worker's workload."""
    value, seconds = execute_task(task.kind, task.params)
    return task.experiment, task.index, value, seconds


def _pool_context():
    """Prefer fork (cheap, inherits imports); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork-less platforms
        return multiprocessing.get_context("spawn")


def run_suite(
    selected: Sequence[str],
    *,
    scale: ExperimentScale,
    jobs: int = 1,
    fig8_ks: Sequence[int] = (2, 10, 100, 256),
    table1_ns: Optional[Sequence[int]] = None,
    overlay_ns: Optional[Sequence[int]] = None,
) -> Tuple[Dict[str, Any], Dict[str, float], Dict[str, List[float]]]:
    """Run the selected experiments as a task bag.

    Returns ``(results, durations, task_durations)`` keyed by
    experiment name, with ``results`` in ``selected`` order and
    ``durations[name]`` the summed task seconds of that experiment
    (the cost the suite would pay serially — the right input for
    parallel-schedule analysis).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    options = suite_options(
        scale, fig8_ks=fig8_ks, table1_ns=table1_ns, overlay_ns=overlay_ns
    )
    plan: List[SweepTask] = []
    for name in selected:
        plan.extend(plan_experiment(name, options))

    # Build the shared workload once in the parent: the graph (if any
    # selected experiment runs on it) and every reference vector those
    # experiments consume.  Goes through the active artifact cache.
    need_graph = any(experiment_needs_graph(name) for name in selected)
    ref_keys = {key for name in selected for key in experiment_ref_keys(name)}
    graph = None
    refs: Dict[str, Any] = {}
    if need_graph:
        from repro.experiments.workloads import default_graph, reference_ranks

        graph = default_graph(scale)
        if REF_DEFAULT in ref_keys:
            refs[REF_DEFAULT] = reference_ranks(graph)
        if REF_TRADEOFF in ref_keys:
            refs[REF_TRADEOFF] = reference_ranks(graph, tol=1e-12)

    values: Dict[Tuple[str, int], Any] = {}
    seconds: Dict[Tuple[str, int], float] = {}
    if jobs == 1 or len(plan) <= 1:
        _tasks.set_worker_workload(graph, refs)
        for task in plan:
            value, secs = execute_task(task.kind, task.params)
            values[(task.experiment, task.index)] = value
            seconds[(task.experiment, task.index)] = secs
    else:
        cache = active_cache()
        cache_root = str(cache.root) if cache is not None else None
        ctx = _pool_context()
        with SharedWorkload(graph, refs) as workload:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(plan)),
                mp_context=ctx,
                initializer=_tasks.init_worker,
                initargs=(
                    workload.spec(),
                    cache_root,
                    ctx.get_start_method() != "fork",
                ),
            ) as pool:
                for name, index, value, secs in pool.map(_run_task, plan):
                    values[(name, index)] = value
                    seconds[(name, index)] = secs

    results: Dict[str, Any] = {}
    durations: Dict[str, float] = {}
    task_durations: Dict[str, List[float]] = {}
    for name in selected:
        n_tasks = sum(1 for t in plan if t.experiment == name)
        ordered = [values[(name, i)] for i in range(n_tasks)]
        results[name] = assemble_experiment(name, options, ordered)
        task_durations[name] = [seconds[(name, i)] for i in range(n_tasks)]
        durations[name] = float(sum(task_durations[name]))
    return results, durations, task_durations
