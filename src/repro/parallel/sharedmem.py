"""Zero-copy workload handoff to worker processes.

A sweep at 10⁶ pages carries ~100 MB of CSR arrays; pickling the
graph into every worker multiplies that by the pool size and burns
startup time.  Instead the parent publishes the workload once into
POSIX shared memory (:class:`SharedWorkload`) and ships workers only
a tiny picklable *spec* naming the segments.  Workers attach and wrap
the segments as read-only numpy views — the graph is reconstructed
with :meth:`WebGraph.from_csr` without copying a byte.

When shared memory is unavailable (exotic platforms, ``/dev/shm``
mounted noexec/absent, or ``REPRO_PARALLEL_SHM=0``) the spec simply
carries the pickled objects; with the default ``fork`` start method
that fallback is still cheap because the pages are inherited
copy-on-write.

Memory-mapped graphs (``load_webgraph(path, mmap=True)``) short-cut
the copy entirely: arrays already backed by an ``.npy`` file ship as
``(filename, dtype, shape, offset)`` and every worker re-opens the
same file read-only — the out-of-core path never duplicates the CSR
arrays into ``/dev/shm`` at all, and the page cache is shared across
the pool by the OS.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.webgraph import WebGraph

__all__ = ["SharedWorkload", "attach_workload"]

#: Set to "0" to force the pickle fallback (mainly for tests).
_SHM_ENV = "REPRO_PARALLEL_SHM"


def _shm_enabled() -> bool:
    return os.environ.get(_SHM_ENV, "1") != "0"


def _graph_array_items(graph: WebGraph) -> List[Tuple[str, np.ndarray]]:
    return [
        ("indptr", graph.indptr),
        ("indices", graph.indices),
        ("site_of", graph.site_of),
        ("external_out", graph.external_out),
    ]


class SharedWorkload:
    """Parent-side publication of (graph, reference vectors).

    Use as a context manager around the worker pool's lifetime: the
    segments must outlive every attach, and are unlinked on exit.

    ``spec()`` returns the picklable description workers pass to
    :func:`attach_workload`.
    """

    def __init__(self, graph: Optional[WebGraph], refs: Dict[str, np.ndarray], *, use_shm: Optional[bool] = None):
        self._segments = []
        if use_shm is None:
            use_shm = _shm_enabled()
        self._spec: Dict[str, object] = {"mode": "pickle", "graph": graph, "refs": refs}
        if not use_shm or (graph is None and not refs):
            return
        try:
            self._publish(graph, refs)
        except Exception:
            # Any shared-memory failure degrades to the pickle spec.
            self.close()
            self._segments = []
            self._spec = {"mode": "pickle", "graph": graph, "refs": refs}

    # ------------------------------------------------------------------
    def _put_array(self, arr: np.ndarray) -> Dict[str, object]:
        from repro.graph.io import backing_memmap

        mm = backing_memmap(arr)
        if (
            mm is not None
            and isinstance(getattr(mm, "filename", None), (str, os.PathLike))
            and arr.size == mm.size
            and arr.dtype == mm.dtype
        ):
            # Already file-backed: ship the path, not the bytes.  The
            # whole-array check keeps the entry a faithful alias (the
            # from_csr views we see in practice cover the full memmap).
            return {
                "mmap_path": str(mm.filename),
                "dtype": str(arr.dtype),
                "shape": tuple(arr.shape),
                "offset": int(mm.offset),
            }
        from multiprocessing import shared_memory

        arr = np.ascontiguousarray(arr)
        seg = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        self._segments.append(seg)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        return {"name": seg.name, "dtype": str(arr.dtype), "shape": tuple(arr.shape)}

    def _publish(self, graph: Optional[WebGraph], refs: Dict[str, np.ndarray]) -> None:
        spec: Dict[str, object] = {"mode": "shm", "graph": None, "refs": {}}
        if graph is not None:
            spec["graph"] = {
                "n_pages": graph.n_pages,
                "site_names": graph.site_names,
                "arrays": {
                    name: self._put_array(arr) for name, arr in _graph_array_items(graph)
                },
            }
        spec["refs"] = {key: self._put_array(arr) for key, arr in refs.items()}
        self._spec = spec

    # ------------------------------------------------------------------
    def spec(self) -> Dict[str, object]:
        """Picklable description for :func:`attach_workload`."""
        return self._spec

    @property
    def uses_shm(self) -> bool:
        """True when the workload actually lives in shared memory."""
        return self._spec.get("mode") == "shm"

    def close(self) -> None:
        """Release and unlink every published segment."""
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except Exception:
                pass
        self._segments = []

    def __enter__(self) -> "SharedWorkload":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _attach_array(
    entry: Dict[str, object], keepalive: list, unregister: bool
) -> np.ndarray:
    if "mmap_path" in entry:
        # File-backed array: re-open the same ``.npy`` data read-only.
        arr = np.memmap(
            entry["mmap_path"],
            dtype=np.dtype(entry["dtype"]),
            mode="r",
            offset=int(entry["offset"]),
            shape=tuple(entry["shape"]),
        )
        keepalive.append(arr)
        return arr
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(name=entry["name"], create=False)
    if unregister:
        # The parent owns the segment's lifetime.  A spawn-started
        # worker has its own resource tracker, which would unlink the
        # segment at worker exit (while the parent still uses it) and
        # warn about leaks — so drop its registration.  Fork-started
        # workers share the parent's tracker and must NOT unregister:
        # that would strip the parent's own registration.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    keepalive.append(seg)
    arr = np.ndarray(
        tuple(entry["shape"]), dtype=np.dtype(entry["dtype"]), buffer=seg.buf
    )
    arr.flags.writeable = False
    return arr


def attach_workload(
    spec: Dict[str, object],
    keepalive: Optional[list] = None,
    *,
    unregister: bool = False,
):
    """Worker-side reconstruction of (graph, refs) from a spec.

    ``keepalive`` (a list the caller must retain for as long as the
    arrays are used) receives the attached segment handles; dropping
    them would invalidate the views.  ``unregister`` must be True only
    in processes with their own resource tracker (spawn-started
    workers); see :func:`_attach_array`.  Returns ``(graph_or_None,
    refs_dict)``.
    """
    if keepalive is None:
        keepalive = []
    if spec["mode"] == "pickle":
        return spec["graph"], dict(spec["refs"])

    graph = None
    gspec = spec.get("graph")
    if gspec is not None:
        arrays = {
            name: _attach_array(entry, keepalive, unregister)
            for name, entry in gspec["arrays"].items()
        }
        graph = WebGraph.from_csr(
            gspec["n_pages"],
            arrays["indptr"],
            arrays["indices"],
            site_of=arrays["site_of"],
            external_out=arrays["external_out"],
            site_names=gspec["site_names"],
            copy=False,
            validate=False,
        )
    refs = {
        key: _attach_array(entry, keepalive, unregister)
        for key, entry in spec["refs"].items()
    }
    return graph, refs
