"""Suite decomposition into independent seeded tasks.

The experiment suite is a bag of *sweep points* — independent,
deterministic computations distinguished only by their parameters
(config label, ranker count K, partitioning strategy, threshold,
overlay size …).  This module turns each experiment into an explicit
task list (:func:`plan_experiment`), executes single tasks against a
per-process workload (:func:`execute_task`), and reassembles completed
tasks into the experiment's result object in canonical order
(:func:`assemble_experiment`) — so results are identical whether the
tasks ran serially in-process or scattered across a worker pool.

The per-process workload (graph + reference vectors) is installed once
with :func:`set_worker_workload` — in the parent for serial runs, in
the pool initializer (:func:`init_worker`, attaching shared memory)
for parallel runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.workloads import DEFAULT_CONFIGS, ExperimentScale

__all__ = [
    "SweepTask",
    "suite_options",
    "plan_experiment",
    "assemble_experiment",
    "experiment_needs_graph",
    "experiment_ref_keys",
    "set_worker_workload",
    "init_worker",
    "execute_task",
]

#: Experiments that run on the shared workload graph.
GRAPH_EXPERIMENTS = frozenset(
    {"fig6", "fig7", "fig8", "partitioning", "transport", "compression", "tradeoff"}
)

#: Reference-vector keys by experiment (see ``suite refs`` in executor).
REF_DEFAULT = "default"
REF_TRADEOFF = "tol1e-12"


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of suite work.

    ``index`` orders tasks within their experiment; reassembly sorts
    by it, so completion order never matters.  ``params`` must be
    picklable (plain scalars/strings only).
    """

    experiment: str
    index: int
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)


def suite_options(
    scale: ExperimentScale,
    *,
    fig8_ks: Sequence[int] = (2, 10, 100, 256),
    table1_ns: Optional[Sequence[int]] = None,
    overlay_ns: Optional[Sequence[int]] = None,
) -> Dict[str, Dict[str, Any]]:
    """The canonical per-experiment options of one ``run_all`` suite.

    This is the single source of truth shared by planning, execution
    and assembly; the values reproduce the suite's historical
    hard-coded settings.  ``table1_ns`` / ``overlay_ns`` default to
    grids scaled with the workload (identical to the historical grids
    at the default 4000-page scale).
    """
    if table1_ns is None:
        table1_ns = scale.sweep_grid((1_000, 10_000, 100_000), minimum=64)
    if overlay_ns is None:
        overlay_ns = scale.sweep_grid((100, 1_000, 10_000), minimum=16)
    return {
        "table1": dict(ns=tuple(int(n) for n in table1_ns), hop_samples=400, seed=17),
        "fig6": dict(
            configs=dict(DEFAULT_CONFIGS),
            n_groups=64,
            max_time=90.0,
            seed=7,
            algorithm="dpr1",
            engine="event",
            schedule="async",
        ),
        "fig7": dict(
            configs=dict(DEFAULT_CONFIGS),
            n_groups=100,
            max_time=90.0,
            seed=11,
            engine="event",
            schedule="async",
        ),
        "fig8": dict(
            ks=tuple(int(k) for k in fig8_ks),
            threshold=1e-4,
            wait_mean=15.0,
            max_time=4000.0,
            seed=13,
            engine="event",
            schedule="async",
        ),
        "partitioning": dict(
            strategies=("random", "url", "site"),
            n_groups=16,
            seed=19,
            measure_traffic=True,
            max_time=400.0,
        ),
        "transport": dict(n_groups=48, seed=23, max_time=400.0),
        "compression": dict(
            thresholds=(0.0, 1e-8, 1e-4, 1e-2), n_groups=16, seed=29, max_time=120.0
        ),
        "overlay_hops": dict(
            kinds=("pastry", "tapestry", "chord", "can"),
            ns=tuple(int(n) for n in overlay_ns),
            samples=300,
            seed=31,
        ),
        "tradeoff": dict(
            wait_means=(1.0, 3.0, 9.0),
            n_groups=16,
            seed=37,
            target=1e-4,
            max_time=3000.0,
        ),
    }


def experiment_needs_graph(name: str) -> bool:
    """Whether an experiment consumes the shared workload graph."""
    return name in GRAPH_EXPERIMENTS


def experiment_ref_keys(name: str) -> Tuple[str, ...]:
    """Which reference vectors an experiment's tasks consume."""
    if name == "tradeoff":
        return (REF_TRADEOFF,)
    if name in GRAPH_EXPERIMENTS:
        return (REF_DEFAULT,)
    return ()


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_experiment(name: str, options: Mapping[str, Any]) -> List[SweepTask]:
    """Decompose one experiment into its independent sweep tasks."""
    opts = options[name]
    tasks: List[SweepTask] = []

    def add(task_kind: str, **params: Any) -> None:
        tasks.append(SweepTask(name, len(tasks), task_kind, params))

    if name == "table1":
        for n in opts["ns"]:
            add("table1_hops", n=n, hop_samples=opts["hop_samples"], seed=opts["seed"])
    elif name == "fig6":
        for label, (p, t1, t2) in opts["configs"].items():
            add(
                "fig6_run",
                label=label,
                p=p,
                t1=t1,
                t2=t2,
                n_groups=opts["n_groups"],
                max_time=opts["max_time"],
                seed=opts["seed"],
                algorithm=opts["algorithm"],
                engine=opts["engine"],
                schedule=opts["schedule"],
            )
    elif name == "fig7":
        for label, (p, t1, t2) in opts["configs"].items():
            add(
                "fig7_run",
                label=label,
                p=p,
                t1=t1,
                t2=t2,
                n_groups=opts["n_groups"],
                max_time=opts["max_time"],
                seed=opts["seed"],
                engine=opts["engine"],
                schedule=opts["schedule"],
            )
    elif name == "fig8":
        add("fig8_cpr", threshold=opts["threshold"])
        for algorithm in ("dpr1", "dpr2"):
            for k in opts["ks"]:
                add(
                    "fig8_run",
                    algorithm=algorithm,
                    k=k,
                    threshold=opts["threshold"],
                    wait_mean=opts["wait_mean"],
                    max_time=opts["max_time"],
                    seed=opts["seed"],
                    engine=opts["engine"],
                    schedule=opts["schedule"],
                )
    elif name == "partitioning":
        for strategy in opts["strategies"]:
            add(
                "partitioning_run",
                strategy=strategy,
                n_groups=opts["n_groups"],
                seed=opts["seed"],
                measure_traffic=opts["measure_traffic"],
                max_time=opts["max_time"],
            )
    elif name == "transport":
        add("transport_stats", n_groups=opts["n_groups"], seed=opts["seed"])
        for kind in ("indirect", "direct"):
            add(
                "transport_run",
                kind=kind,
                n_groups=opts["n_groups"],
                seed=opts["seed"],
                max_time=opts["max_time"],
            )
    elif name == "compression":
        for tol in opts["thresholds"]:
            add(
                "compression_run",
                tol=float(tol),
                n_groups=opts["n_groups"],
                seed=opts["seed"],
                max_time=opts["max_time"],
            )
    elif name == "overlay_hops":
        for kind in opts["kinds"]:
            for n in opts["ns"]:
                add(
                    "overlay_hops_run",
                    kind=kind,
                    n=n,
                    samples=opts["samples"],
                    seed=opts["seed"],
                )
    elif name == "tradeoff":
        for t in opts["wait_means"]:
            add(
                "tradeoff_run",
                t=float(t),
                n_groups=opts["n_groups"],
                seed=opts["seed"],
                target=opts["target"],
                max_time=opts["max_time"],
            )
    else:
        raise ValueError(f"unknown experiment: {name!r}")
    return tasks


# ----------------------------------------------------------------------
# Per-process workload + execution
# ----------------------------------------------------------------------
#: Process-local workload: {"graph": WebGraph|None, "refs": {key: array},
#: "keepalive": [SharedMemory, ...]}.
_WORKLOAD: Dict[str, Any] = {"graph": None, "refs": {}, "keepalive": []}


def set_worker_workload(graph, refs: Mapping[str, Any], keepalive: Optional[list] = None) -> None:
    """Install the workload tasks of this process will run against."""
    _WORKLOAD["graph"] = graph
    _WORKLOAD["refs"] = dict(refs)
    _WORKLOAD["keepalive"] = keepalive or []


def init_worker(
    spec: Mapping[str, Any],
    cache_root: Optional[str],
    own_tracker: bool = False,
) -> None:
    """Pool initializer: attach the shared workload, activate the cache.

    Runs once per worker process.  ``spec`` comes from
    :meth:`SharedWorkload.spec`; ``cache_root`` re-activates the
    parent's artifact cache so workers share warm artifacts;
    ``own_tracker`` is True for spawn-started workers (whose private
    resource tracker must forget the parent-owned segments).
    """
    from repro.parallel.cache import ArtifactCache, set_active_cache
    from repro.parallel.sharedmem import attach_workload

    keepalive: list = []
    graph, refs = attach_workload(spec, keepalive, unregister=own_tracker)
    set_worker_workload(graph, refs, keepalive)
    set_active_cache(ArtifactCache(cache_root) if cache_root else None)


def _graph():
    graph = _WORKLOAD["graph"]
    if graph is None:
        raise RuntimeError("task needs the workload graph but none is installed")
    return graph


def _ref(key: str):
    try:
        return _WORKLOAD["refs"][key]
    except KeyError:
        raise RuntimeError(f"task needs reference {key!r} but it is not installed")


def execute_task(kind: str, params: Mapping[str, Any]) -> Tuple[Any, float]:
    """Run one task in this process; returns ``(value, seconds)``.

    Dispatches to the experiment modules' point functions — the exact
    code the serial runners execute — so parallel results are
    bit-identical to serial ones.
    """
    # Imported here (not at module top) so worker processes pay the
    # import once and spawn-start workers resolve the full package.
    from repro.experiments import ablations, fig6, fig7, fig8, table1

    p = dict(params)
    t0 = time.perf_counter()
    if kind == "table1_hops":
        value = table1.table1_hops_point(
            p["n"], hop_samples=p["hop_samples"], seed=p["seed"]
        )
    elif kind == "fig6_run":
        p.pop("label")
        value = fig6.fig6_point(_graph(), _ref(REF_DEFAULT), **p)
    elif kind == "fig7_run":
        p.pop("label")
        value = fig7.fig7_point(_graph(), _ref(REF_DEFAULT), **p)
    elif kind == "fig8_cpr":
        value = fig8.fig8_cpr_point(_graph(), _ref(REF_DEFAULT), p["threshold"])
    elif kind == "fig8_run":
        value = fig8.fig8_point(_graph(), _ref(REF_DEFAULT), **p)
    elif kind == "partitioning_run":
        value = ablations.partitioning_point(_graph(), _ref(REF_DEFAULT), **p)
    elif kind == "transport_stats":
        value = ablations.transport_overlay_stats(p["n_groups"], p["seed"])
    elif kind == "transport_run":
        value = ablations.transport_point(_graph(), _ref(REF_DEFAULT), **p)
    elif kind == "compression_run":
        value = ablations.compression_point(_graph(), _ref(REF_DEFAULT), **p)
    elif kind == "overlay_hops_run":
        value = ablations.overlay_hops_point(
            p["kind"], p["n"], samples=p["samples"], seed=p["seed"]
        )
    elif kind == "tradeoff_run":
        value = ablations.tradeoff_point(_graph(), _ref(REF_TRADEOFF), **p)
    else:
        raise ValueError(f"unknown task kind: {kind!r}")
    return value, time.perf_counter() - t0


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------
def assemble_experiment(
    name: str, options: Mapping[str, Any], values: Sequence[Any]
):
    """Rebuild an experiment's result object from task values.

    ``values`` must be ordered by task ``index`` (the planner's
    order); the constructed object is identical to what the serial
    runner produces.
    """
    from repro.experiments import ablations, fig6, fig7, fig8, table1

    opts = options[name]
    if name == "table1":
        return table1.assemble_table1(opts["ns"], values)
    if name == "fig6":
        result = fig6.Fig6Result(n_groups=opts["n_groups"])
        for (label, _), res in zip(opts["configs"].items(), values):
            result.results[label] = res
        return result
    if name == "fig7":
        result = fig7.Fig7Result(n_groups=opts["n_groups"])
        for (label, _), res in zip(opts["configs"].items(), values):
            result.results[label] = res
            result.monotone[label], result.plateau[label] = fig7.fig7_summary(res)
        return result
    if name == "fig8":
        result = fig8.Fig8Result(threshold=opts["threshold"])
        result.cpr_iterations = values[0]
        result.iterations = {"dpr1": {}, "dpr2": {}}
        i = 1
        for algorithm in ("dpr1", "dpr2"):
            for k in opts["ks"]:
                result.iterations[algorithm][int(k)] = values[i]
                i += 1
        return result
    if name == "partitioning":
        result = ablations.PartitioningResult(n_groups=opts["n_groups"])
        for strategy, (cut_stats, run_bytes) in zip(opts["strategies"], values):
            result.cut_stats[strategy] = cut_stats
            if run_bytes is not None:
                result.run_bytes[strategy] = run_bytes
        return result
    if name == "transport":
        hops, neighbors = values[0]
        result = ablations.TransportResult(
            n_groups=opts["n_groups"], overlay_hops=hops, overlay_neighbors=neighbors
        )
        for kind, res in zip(("indirect", "direct"), values[1:]):
            result.runs[kind] = res
        return result
    if name == "compression":
        result = ablations.CompressionResult()
        for tol, (bytes_used, messages, final_error) in zip(
            opts["thresholds"], values
        ):
            result.thresholds.append(float(tol))
            result.bytes_used.append(bytes_used)
            result.messages.append(messages)
            result.final_errors.append(final_error)
        return result
    if name == "overlay_hops":
        result = ablations.OverlayHopsResult()
        result.rows_data.extend(values)
        return result
    if name == "tradeoff":
        result = ablations.TradeoffResult()
        for wait, duration, bytes_total, rate in values:
            result.wait_means.append(wait)
            result.times_to_target.append(duration)
            result.bytes_total.append(bytes_total)
            result.bytes_per_time_unit.append(rate)
        return result
    raise ValueError(f"unknown experiment: {name!r}")
