"""Serving tier: incremental re-ranking and indexed rank queries.

Turns a computed rank vector into a system that serves traffic:

* :mod:`repro.serve.incremental` — :class:`IncrementalRanker`
  maintains the open-system fixed point under edge/page mutations
  with dirty-group column-stripe rebuilds, warm-started bounded
  re-solves, and a certified ε staleness budget (Theorem 3.3).
* :mod:`repro.serve.index` — :class:`RankIndex` answers exact top-k /
  rank-of / percentile queries without scanning the vector, updated
  from each flush's changed-page delta.
* :mod:`repro.serve.service` — :class:`RankServer` composes the two;
  :class:`CrawlFeed` diffs a live :class:`~repro.crawl.crawler.Crawler`
  into mutation batches.

See DESIGN.md §14 for the maintenance contract.
"""

from repro.serve.incremental import FlushStats, IncrementalRanker, MutationBatch
from repro.serve.index import (
    RankIndex,
    brute_force_percentile,
    brute_force_rank_of,
    brute_force_top_k,
)
from repro.serve.service import CrawlFeed, RankServer

__all__ = [
    "MutationBatch",
    "FlushStats",
    "IncrementalRanker",
    "RankIndex",
    "brute_force_top_k",
    "brute_force_rank_of",
    "brute_force_percentile",
    "RankServer",
    "CrawlFeed",
]
