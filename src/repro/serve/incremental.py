"""Incremental rank maintenance with a certified staleness budget.

The open-system loop of :mod:`repro.crawl.online` already demonstrates
the paper's §4.3 conjecture operationally: old ranks are a good
estimate of the new fixed point after the graph mutates.  This module
turns that observation into a *maintenance contract* a serving system
can rely on:

* **Mutations are staged, then flushed.**  A :class:`MutationBatch`
  carries page insertions and internal-link / external-count edits.
  :meth:`IncrementalRanker.update` applies one batch and re-solves.
* **Dirty-group tracking.**  The propagation entry ``α/d(u)`` depends
  only on the source page, so a mutated page invalidates exactly the
  operator *columns* of its pages within its group's stripe —
  ``diag[g]`` plus every ``cross[(g, h)]``.  When few of a group's
  pages mutated, the columns are swapped in place by sparse delta adds
  (:meth:`IncrementalRanker._apply_stripe_delta`); past ~a quarter of
  the group the whole stripe is rebuilt in one vectorized pass by
  :func:`repro.linalg.operators.source_group_blocks`.  The site-hash
  partition is stable (a page's group never changes), so site-local
  edit bursts touch few stripes.
* **Warm-started bounded re-solve.**  Re-ranking runs block
  Gauss–Seidel rounds over an *active set* seeded by the dirty groups
  and their downstream neighbours: each active group solves its local
  fixed point (Algorithm 2, via the existing
  :func:`~repro.linalg.jacobi.jacobi_solve` workspace kernels)
  warm-started from its current ranks, and activation spreads to a
  group's destinations only while its ranks keep moving.  Work is
  bounded by ``max_rounds``.
* **Certified ε staleness.**  After the bounded re-solve, one global
  O(nnz) certification sweep measures ``Δ = ‖Pr + f − r‖₁`` and
  Theorem 3.3 (serving form,
  :func:`~repro.linalg.norms.pre_sweep_error_bound`) converts it into
  a hard bound on the served vector's L1 distance to the current
  graph's fixed point.  If the bound exceeds the configured ε budget
  (relative to ``‖r‖₁``), the ranker falls back to a *full* re-solve —
  warm-started rounds over every group — and re-certifies.

The fixed point maintained is exactly
``pagerank_open(current_graph(), alpha, e)``: tests pin the measured
drift below ε against that reference after arbitrary mutation
sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.partition import Partition
from repro.graph.webgraph import WebGraph
from repro.linalg.jacobi import JacobiWorkspace, jacobi_solve
from repro.linalg.norms import l1_norm, pre_sweep_error_bound
from repro.linalg.operators import group_blocks, source_group_blocks
from repro.utils.hashing import stable_uint64
from repro.utils.validation import check_fraction, check_positive

__all__ = ["MutationBatch", "FlushStats", "IncrementalRanker"]


@dataclass
class MutationBatch:
    """One unit of graph change applied atomically by a flush.

    Attributes
    ----------
    new_pages:
        Site hostname per inserted page.  Page ids are assigned
        sequentially from the current page count, in list order, so
        links inside the same batch may already reference them.
    add_links / remove_links:
        Internal link edits ``(src, dst)``.  Links are multisets:
        adding twice confers rank twice, removing deletes one
        occurrence (removing an absent link is an error — a serving
        feed that desyncs from its crawler must fail loudly).
    external_delta:
        Per-page change to the count of out-links pointing outside the
        crawl (the open-system leak of §3).
    """

    new_pages: List[str] = field(default_factory=list)
    add_links: List[Tuple[int, int]] = field(default_factory=list)
    remove_links: List[Tuple[int, int]] = field(default_factory=list)
    external_delta: Dict[int, int] = field(default_factory=dict)

    def is_empty(self) -> bool:
        """True when the batch carries no mutations at all."""
        return not (
            self.new_pages
            or self.add_links
            or self.remove_links
            or self.external_delta
        )

    def __len__(self) -> int:
        return (
            len(self.new_pages)
            + len(self.add_links)
            + len(self.remove_links)
            + len(self.external_delta)
        )


@dataclass
class FlushStats:
    """Outcome of one :meth:`IncrementalRanker.flush`.

    ``changed_pages``/``changed_values`` list every page whose rank
    moved (plus every inserted page), which is exactly the delta a
    downstream query index needs.
    """

    n_pages: int
    dirty_groups: int
    touched_groups: int
    rounds: int
    inner_sweeps: int
    mode: str  # "noop" | "incremental" | "full"
    staleness_bound: float
    changed_pages: np.ndarray
    changed_values: np.ndarray


class IncrementalRanker:
    """Maintain open-system PageRank under edge/page mutations.

    Parameters
    ----------
    graph:
        Initial crawl snapshot (may be empty; pages can arrive purely
        through batches).
    n_groups:
        Ranker count K.  Pages are placed by the paper's stable
        site-hash rule, matching
        :func:`repro.graph.partition.partition_by_site_hash` exactly.
    alpha, e:
        Damping factor and the scalar rank source (``E(v) = e``).
    epsilon:
        Relative-L1 staleness budget: after every flush the served
        vector is certified within ``epsilon·‖r‖₁`` of the current
        graph's fixed point (Theorem 3.3, serving form).
    max_rounds:
        Active-set round budget per flush before the certification
        check; a failed certificate triggers the full-re-solve
        fallback regardless.
    salt:
        Site-hash salt (must match the partition salt of any
        co-deployed distributed run).
    solve:
        Solve to within ε at construction (default).  Pass ``False``
        to seed ranks via :meth:`warm_start` first.
    """

    def __init__(
        self,
        graph: WebGraph,
        *,
        n_groups: int = 8,
        alpha: float = 0.85,
        e: float = 1.0,
        epsilon: float = 1e-3,
        max_rounds: int = 50,
        salt: str = "",
        solve: bool = True,
    ):
        check_fraction(alpha, "alpha")
        check_positive(epsilon, "epsilon")
        if n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if e < 0:
            raise ValueError("e must be >= 0")
        if max_rounds < 0:
            raise ValueError("max_rounds must be >= 0")
        self.alpha = float(alpha)
        self.e = float(e)
        self.epsilon = float(epsilon)
        self.n_groups = int(n_groups)
        self.max_rounds = int(max_rounds)
        self.salt = salt

        # --- mutable adjacency (the serving tier's own copy of C) ----
        self._out: List[List[int]] = [
            graph.successors(p).tolist() for p in range(graph.n_pages)
        ]
        self._ext: List[int] = [int(x) for x in graph.external_out]
        self._site: List[int] = [int(s) for s in graph.site_of]
        self._site_names: List[str] = list(graph.site_names)
        self._site_id: Dict[str, int] = {
            name: i for i, name in enumerate(self._site_names)
        }
        self._site_group: List[int] = [
            self._hash_group(name) for name in self._site_names
        ]

        # --- partition state (site hash: stable under mutation) ------
        if graph.n_pages:
            group_of = np.asarray(
                [self._site_group[s] for s in self._site], dtype=np.int64
            )
        else:
            group_of = np.zeros(0, dtype=np.int64)
        partition = Partition(group_of, self.n_groups)
        self._group_of = group_of
        self._local = partition.local_index()
        self._pages: List[np.ndarray] = [
            partition.pages_of_group(g) for g in range(self.n_groups)
        ]

        # --- operator blocks (existing grouped kernel builder) -------
        blocks = group_blocks(graph, partition, self.alpha)
        self._diag: List[sp.csr_matrix] = list(blocks.diag)
        self._cross: Dict[Tuple[int, int], sp.csr_matrix] = dict(blocks.cross)
        self._dests: List[Set[int]] = [set() for _ in range(self.n_groups)]
        self._srcs: List[Set[int]] = [set() for _ in range(self.n_groups)]
        for (g, h) in self._cross:
            self._dests[g].add(h)
            self._srcs[h].add(g)

        # --- rank state ----------------------------------------------
        beta = 1.0 - self.alpha
        self._r: List[np.ndarray] = [
            np.zeros(p.size, dtype=np.float64) for p in self._pages
        ]
        self._f: List[np.ndarray] = [
            np.full(p.size, beta * self.e, dtype=np.float64) for p in self._pages
        ]
        self._ws = JacobiWorkspace(max((p.size for p in self._pages), default=0))
        self._ranks_cache: Optional[np.ndarray] = None

        # --- staged mutations ----------------------------------------
        self._staged_dirty: Set[int] = set()  # pages with edited out-links
        self._staged_new: List[int] = []  # page ids inserted since last flush
        self._staged_new_set: Set[int] = set()
        #: page -> (out-links, external count) before this flush's edits;
        #: the old operator column, for the sparse delta update path.
        self._pristine: Dict[int, Tuple[List[int], int]] = {}
        self._staged_any = False

        # --- counters -------------------------------------------------
        self.flushes = 0
        self.full_resolves = 0
        self.total_inner_sweeps = 0
        self.last_staleness_bound = float("inf")
        self._eps_abs = self._compute_eps_abs()

        if solve:
            self._resolve_full_and_certify()
            self.last_stats = FlushStats(
                n_pages=self.n_pages,
                dirty_groups=self.n_groups,
                touched_groups=self.n_groups,
                rounds=0,
                inner_sweeps=self.total_inner_sweeps,
                mode="full",
                staleness_bound=self.last_staleness_bound,
                changed_pages=np.arange(self.n_pages, dtype=np.int64),
                changed_values=self.ranks.copy(),
            )
        else:
            self.last_stats = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        return len(self._out)

    @property
    def ranks(self) -> np.ndarray:
        """The currently served global rank vector (assembled, cached)."""
        if self._ranks_cache is None:
            out = np.zeros(self.n_pages, dtype=np.float64)
            for g in range(self.n_groups):
                out[self._pages[g]] = self._r[g]
            self._ranks_cache = out
        return self._ranks_cache

    def group_of_page(self, page: int) -> int:
        """The (stable) group owning ``page``."""
        self._check_page(page)
        return int(self._group_of[page])

    def out_degree(self, page: int) -> int:
        """Total out-degree (internal + external) of ``page``."""
        self._check_page(page)
        return len(self._out[page]) + self._ext[page]

    def current_graph(self) -> WebGraph:
        """Materialize the current adjacency as an immutable WebGraph.

        Equals the crawler snapshot a feed was built from (asserted by
        the serve test layer), so references computed on it are the
        ground truth the ε budget is measured against.
        """
        counts = [len(t) for t in self._out]
        total = sum(counts)
        src = np.repeat(np.arange(self.n_pages, dtype=np.int64), counts)
        dst = np.fromiter(
            (t for targets in self._out for t in targets),
            dtype=np.int64,
            count=total,
        )
        return WebGraph(
            self.n_pages,
            src,
            dst,
            site_of=np.asarray(self._site, dtype=np.int64),
            external_out=np.asarray(self._ext, dtype=np.int64),
            site_names=list(self._site_names),
        )

    def partition(self) -> Partition:
        """The current (site-hash) page-to-group assignment."""
        return Partition(self._group_of.copy(), self.n_groups)

    # ------------------------------------------------------------------
    # Mutation staging
    # ------------------------------------------------------------------
    def add_page(self, site_name: str) -> int:
        """Insert a page on ``site_name``; returns its id (stageable)."""
        sid = self._site_id.get(site_name)
        if sid is None:
            sid = len(self._site_names)
            self._site_names.append(site_name)
            self._site_id[site_name] = sid
            self._site_group.append(self._hash_group(site_name))
        page = self.n_pages
        self._out.append([])
        self._ext.append(0)
        self._site.append(sid)
        self._staged_new.append(page)
        self._staged_new_set.add(page)
        self._staged_any = True
        return page

    def _snapshot(self, page: int) -> None:
        """Capture a page's pre-flush column before its first edit."""
        if page not in self._staged_new_set and page not in self._pristine:
            self._pristine[page] = (list(self._out[page]), self._ext[page])

    def add_link(self, src: int, dst: int) -> None:
        """Stage one internal link ``src -> dst``."""
        self._check_page(src)
        self._check_page(dst)
        self._snapshot(src)
        self._out[src].append(dst)
        self._staged_dirty.add(src)
        self._staged_any = True

    def remove_link(self, src: int, dst: int) -> None:
        """Stage removal of one ``src -> dst`` occurrence (strict)."""
        self._check_page(src)
        if dst not in self._out[src]:
            raise ValueError(f"no internal link {src} -> {dst} to remove")
        self._snapshot(src)
        self._out[src].remove(dst)
        self._staged_dirty.add(src)
        self._staged_any = True

    def adjust_external(self, page: int, delta: int) -> None:
        """Stage a change to ``page``'s external out-link count."""
        self._check_page(page)
        if self._ext[page] + delta < 0:
            raise ValueError(
                f"external count of page {page} would become negative"
            )
        self._snapshot(page)
        self._ext[page] += int(delta)
        self._staged_dirty.add(page)
        self._staged_any = True

    def stage(self, batch: MutationBatch) -> None:
        """Stage a whole batch (insertions first, then link edits)."""
        for site_name in batch.new_pages:
            self.add_page(site_name)
        for src, dst in batch.remove_links:
            self.remove_link(src, dst)
        for src, dst in batch.add_links:
            self.add_link(src, dst)
        for page, delta in batch.external_delta.items():
            if delta:
                self.adjust_external(page, delta)

    def update(self, batch: MutationBatch) -> FlushStats:
        """Stage ``batch`` and flush: the one-call maintenance step."""
        self.stage(batch)
        return self.flush()

    # ------------------------------------------------------------------
    # Flush: rebuild dirty stripes, warm re-solve, certify
    # ------------------------------------------------------------------
    def flush(self) -> FlushStats:
        """Apply staged mutations and re-certify the ε budget."""
        if not self._staged_any:
            stats = FlushStats(
                n_pages=self.n_pages,
                dirty_groups=0,
                touched_groups=0,
                rounds=0,
                inner_sweeps=0,
                mode="noop",
                staleness_bound=self.last_staleness_bound,
                changed_pages=np.zeros(0, dtype=np.int64),
                changed_values=np.zeros(0, dtype=np.float64),
            )
            self.last_stats = stats
            return stats

        sweeps_before = self.total_inner_sweeps
        new_pages = self._staged_new
        self._absorb_new_pages(new_pages)
        self._eps_abs = self._compute_eps_abs()

        touched_by_group: Dict[int, List[int]] = {}
        for p in sorted(self._staged_dirty | set(new_pages)):
            touched_by_group.setdefault(int(self._group_of[p]), []).append(p)
        for g, touched in sorted(touched_by_group.items()):
            # Column swaps win while few of the group's pages mutated;
            # past ~a quarter of the group, one vectorized stripe
            # rebuild is cheaper than many sparse adds.
            if 4 * len(touched) >= max(self._pages[g].size, 1):
                self._rebuild_source_stripe(g)
            else:
                self._apply_stripe_delta(g, touched)
        dirty_groups: Set[int] = set(touched_by_group)

        # Groups needing re-solve: dirty sources themselves plus every
        # group whose afferent X changed because a dirty source feeds it.
        seeds: Set[int] = set(dirty_groups)
        for g in dirty_groups:
            seeds.update(self._dests[g])

        old_local: Dict[int, np.ndarray] = {}
        rounds = self._active_set_rounds(seeds, old_local, self.max_rounds)
        mode = "incremental"

        delta = self._certification_sweep()
        bound = pre_sweep_error_bound(self.alpha, delta)
        if bound > self._eps_abs:
            mode = "full"
            self._resolve_full(old_local)
            delta = self._certification_sweep()
            bound = pre_sweep_error_bound(self.alpha, delta)
            if bound > self._eps_abs:  # pragma: no cover - contraction
                raise RuntimeError(
                    f"staleness bound {bound:.3e} still above budget "
                    f"{self._eps_abs:.3e} after a full re-solve"
                )
            self.full_resolves += 1
        self.last_staleness_bound = bound

        self._ranks_cache = None
        changed_pages, changed_values = self._collect_changes(
            old_local, new_pages
        )
        self._staged_dirty.clear()
        self._staged_new = []
        self._staged_new_set.clear()
        self._pristine.clear()
        self._staged_any = False
        self.flushes += 1
        stats = FlushStats(
            n_pages=self.n_pages,
            dirty_groups=len(dirty_groups),
            touched_groups=len(old_local),
            rounds=rounds,
            inner_sweeps=self.total_inner_sweeps - sweeps_before,
            mode=mode,
            staleness_bound=bound,
            changed_pages=changed_pages,
            changed_values=changed_values,
        )
        self.last_stats = stats
        return stats

    def staleness(self) -> float:
        """Certified relative-L1 staleness of the served vector."""
        norm = l1_norm(self.ranks)
        if norm == 0.0:
            return 0.0 if self.last_staleness_bound == 0.0 else float("inf")
        return self.last_staleness_bound / norm

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _hash_group(self, site_name: str) -> int:
        # Must match partition_by_site_hash bit for bit: same hash,
        # same salt prefix, same modulus.
        return int(stable_uint64(site_name, salt=f"site:{self.salt}") % self.n_groups)

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.n_pages:
            raise IndexError(f"page {page} out of range [0, {self.n_pages})")

    def _compute_eps_abs(self) -> float:
        """The ε budget as an absolute L1 bound, fixed per flush.

        Relative to the served mass, floored at ``(1−α)e·n`` — a lower
        bound on the fixed point's mass (ranks dominate their source
        term entrywise) — so the budget is meaningful before the first
        solve and never collapses when the served vector starts at
        zero.
        """
        floor = (1.0 - self.alpha) * self.e * self.n_pages
        return self.epsilon * max(l1_norm(self.ranks), floor)

    def _absorb_new_pages(self, new_pages: Sequence[int]) -> None:
        """Extend partition/rank/block state for staged insertions."""
        if not new_pages:
            return
        beta = 1.0 - self.alpha
        new_group = np.asarray(
            [self._site_group[self._site[p]] for p in new_pages], dtype=np.int64
        )
        self._group_of = np.concatenate([self._group_of, new_group])
        self._local = np.concatenate(
            [self._local, np.zeros(len(new_pages), dtype=np.int64)]
        )
        grown: Dict[int, int] = {}
        for p, g in zip(new_pages, new_group):
            g = int(g)
            self._local[p] = self._pages[g].size + grown.get(g, 0)
            grown[g] = grown.get(g, 0) + 1
        for g, extra in grown.items():
            added = np.asarray(
                [p for p in new_pages if int(self._group_of[p]) == g],
                dtype=np.int64,
            )
            self._pages[g] = np.concatenate([self._pages[g], added])
            self._r[g] = np.concatenate(
                [self._r[g], np.zeros(extra, dtype=np.float64)]
            )
            self._f[g] = np.concatenate(
                [self._f[g], np.full(extra, beta * self.e, dtype=np.float64)]
            )
            # A grown group g changes block shapes two ways: blocks with
            # destination g gain empty rows, and blocks with *source* g
            # gain empty columns (free for CSR — only the shape moves).
            rows = self._pages[g].size
            for h in self._srcs[g]:
                self._cross[(h, g)] = _pad_rows(self._cross[(h, g)], rows)
            for h in self._dests[g]:
                blk = self._cross[(g, h)]
                self._cross[(g, h)] = sp.csr_matrix(
                    (blk.data, blk.indices, blk.indptr),
                    shape=(blk.shape[0], rows),
                )
            self._diag[g] = _pad_rows(self._diag[g], rows)
            self._diag[g] = sp.csr_matrix(
                (self._diag[g].data, self._diag[g].indices, self._diag[g].indptr),
                shape=(rows, rows),
            )
        max_size = max((p.size for p in self._pages), default=0)
        if max_size > self._ws.n:
            self._ws = JacobiWorkspace(int(max_size * 1.5) + 1)

    def _rebuild_source_stripe(self, g: int) -> None:
        """Rebuild diag[g] and cross[(g, ·)] from current adjacency."""
        pages_g = self._pages[g]
        outs = [self._out[int(p)] for p in pages_g]
        counts = [len(t) for t in outs]
        total = sum(counts)
        dst = np.fromiter(
            (t for targets in outs for t in targets),
            dtype=np.int64,
            count=total,
        )
        src_local = np.repeat(np.arange(pages_g.size, dtype=np.int64), counts)
        degrees = np.asarray(counts, dtype=np.float64)
        if pages_g.size:
            degrees += np.asarray(
                [self._ext[int(p)] for p in pages_g], dtype=np.float64
            )
        sizes = [p.size for p in self._pages]
        diag, cross = source_group_blocks(
            self.alpha,
            g,
            src_local,
            dst,
            degrees,
            self._group_of,
            self._local,
            sizes,
        )
        self._diag[g] = diag
        stale = self._dests[g] - set(cross)
        for h in stale:
            del self._cross[(g, h)]
            self._srcs[h].discard(g)
        for h, block in cross.items():
            self._cross[(g, h)] = block
            self._srcs[h].add(g)
        self._dests[g] = set(cross)

    def _apply_stripe_delta(self, g: int, touched: Sequence[int]) -> None:
        """Swap the operator columns of a few mutated pages in place.

        The stripe-rebuild path re-flattens a whole group's adjacency
        even when one page changed; under serving load that O(group)
        cost dominates the flush.  This path instead subtracts each
        touched page's pre-edit column (captured by :meth:`_snapshot`)
        and adds its current one through one sparse add per affected
        block — O(block nnz) at C speed.  Both columns are computed
        with the block builders' exact arithmetic (``alpha * (1/d)``),
        so entries of unchanged links cancel to exact zeros and are
        pruned, keeping blocks bit-identical to a full rebuild.
        """
        alpha = self.alpha
        # Old and new columns accumulate into SEPARATE deltas applied
        # sequentially: ``(block - old) + new`` cancels a page's stale
        # entries to exact zeros before its fresh ones land, whereas a
        # combined ``block + (new - old)`` pre-sums the pair and leaves
        # 1-ulp residue on every re-edited entry.
        acc: Tuple[Dict[int, List[int]], ...] = ({}, {}, {})  # rows, cols, vals

        def emit(targets: Sequence[int], col: int, value: float) -> None:
            rows, cols, vals = acc
            for t in targets:
                h = int(self._group_of[t])
                rows.setdefault(h, []).append(int(self._local[t]))
                cols.setdefault(h, []).append(col)
                vals.setdefault(h, []).append(value)

        deltas: List[Tuple[Dict[int, List[int]], ...]] = []
        for sign in (-1.0, 1.0):
            acc = ({}, {}, {})
            for p in touched:
                col = int(self._local[p])
                if sign < 0:
                    pristine = self._pristine.get(p)
                    if pristine is None:
                        continue
                    out, ext = pristine
                else:
                    out, ext = self._out[p], self._ext[p]
                d = float(len(out) + ext)
                if d > 0:
                    emit(out, col, sign * (alpha * (1.0 / d)))
            deltas.append(acc)

        size_g = self._pages[g].size
        for rows, cols, vals in deltas:
            for h in rows:
                delta = sp.csr_matrix(
                    (vals[h], (rows[h], cols[h])),
                    shape=(self._pages[h].size, size_g),
                )
                if h == g:
                    block = self._diag[g] + delta
                    block.eliminate_zeros()
                    self._diag[g] = block
                    continue
                old = self._cross.get((g, h))
                block = delta if old is None else old + delta
                block.eliminate_zeros()
                if block.nnz:
                    self._cross[(g, h)] = block
                    self._dests[g].add(h)
                    self._srcs[h].add(g)
                elif old is not None:
                    del self._cross[(g, h)]
                    self._dests[g].discard(h)
                    self._srcs[h].discard(g)

    def _solve_group(self, h: int, old_local: Dict[int, np.ndarray]) -> float:
        """Local Algorithm-2 solve of group ``h``; returns its L1 change."""
        size = self._pages[h].size
        if size == 0:
            return 0.0
        x = self._f[h].copy()
        for g in self._srcs[h]:
            x += self._cross[(g, h)] @ self._r[g]
        if h not in old_local:
            old_local[h] = self._r[h].copy()
        res = jacobi_solve(
            self._diag[h],
            x,
            x0=self._r[h],
            tol=self._inner_tol,
            max_iter=10_000,
            workspace=self._ws.sliced(size),
        )
        self.total_inner_sweeps += res.iterations
        delta = l1_norm(res.x - self._r[h])
        self._r[h][:] = res.x
        return delta

    @property
    def _inner_tol(self) -> float:
        # Keep each local solve well inside the certification budget so
        # inner truncation cannot dominate the global sweep residual.
        return self._eps_abs / (16.0 * self.n_groups)

    @property
    def _activation_tol(self) -> float:
        # A group quieter than this stops propagating activation; the
        # certification sweep catches any accumulated neglect.
        return self._eps_abs / (4.0 * self.n_groups)

    def _active_set_rounds(
        self,
        seeds: Set[int],
        old_local: Dict[int, np.ndarray],
        max_rounds: int,
    ) -> int:
        """Bounded block Gauss–Seidel over the activation frontier."""
        active = set(seeds)
        rounds = 0
        while active and rounds < max_rounds:
            rounds += 1
            next_active: Set[int] = set()
            for h in sorted(active):
                delta = self._solve_group(h, old_local)
                if delta > self._activation_tol:
                    next_active.update(self._dests[h])
            active = next_active
        return rounds

    def _resolve_full(self, old_local: Dict[int, np.ndarray]) -> None:
        """Warm-started rounds over every group until within budget."""
        target = self._eps_abs * (1.0 - self.alpha) / 2.0
        for _ in range(10_000):
            total = 0.0
            for h in range(self.n_groups):
                total += self._solve_group(h, old_local)
            if total <= target:
                return
        raise RuntimeError("full re-solve failed to converge")  # pragma: no cover

    def _resolve_full_and_certify(self) -> None:
        """Construction-time solve: full rounds, then certification."""
        old: Dict[int, np.ndarray] = {}
        self._resolve_full(old)
        delta = self._certification_sweep()
        bound = pre_sweep_error_bound(self.alpha, delta)
        if bound > self._eps_abs:
            self._resolve_full(old)
            delta = self._certification_sweep()
            bound = pre_sweep_error_bound(self.alpha, delta)
        self.last_staleness_bound = bound
        self._ranks_cache = None

    def _certification_sweep(self) -> float:
        """One global Jacobi step difference ``‖Pr + f − r‖₁`` (not applied)."""
        total = 0.0
        for h in range(self.n_groups):
            if self._pages[h].size == 0:
                continue
            step = self._diag[h] @ self._r[h]
            step += self._f[h]
            for g in self._srcs[h]:
                step += self._cross[(g, h)] @ self._r[g]
            total += l1_norm(step - self._r[h])
        return total

    def _collect_changes(
        self,
        old_local: Dict[int, np.ndarray],
        new_pages: Sequence[int],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pages whose rank moved this flush (plus all insertions)."""
        pages: List[np.ndarray] = []
        values: List[np.ndarray] = []
        new_set = set(int(p) for p in new_pages)
        for h, old in old_local.items():
            cur = self._r[h]
            m = old.size  # pages beyond m are insertions, handled below
            mask = np.flatnonzero(cur[:m] != old)
            if mask.size:
                pages.append(self._pages[h][mask])
                values.append(cur[mask])
        if new_set:
            arr = np.asarray(sorted(new_set), dtype=np.int64)
            pages.append(arr)
            values.append(self.ranks[arr])
        if not pages:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
        cat_pages = np.concatenate(pages)
        cat_values = np.concatenate(values)
        # Insertions may also appear via their group diff; keep the
        # last occurrence of each page (they agree on the value).
        uniq, idx = np.unique(cat_pages, return_index=True)
        return uniq, cat_values[idx]


def _pad_rows(block: sp.csr_matrix, n_rows: int) -> sp.csr_matrix:
    """Extend a CSR block with trailing empty rows (shape growth only)."""
    if block.shape[0] == n_rows:
        return block
    if block.shape[0] > n_rows:  # pragma: no cover - defensive
        raise ValueError("cannot shrink a block")
    indptr = np.concatenate(
        [
            block.indptr,
            np.full(n_rows - block.shape[0], block.indptr[-1], dtype=block.indptr.dtype),
        ]
    )
    return sp.csr_matrix(
        (block.data, block.indices, indptr), shape=(n_rows, block.shape[1])
    )
