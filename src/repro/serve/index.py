"""Exact order-statistics index over a mutating rank vector.

Serving top-k / rank-of / percentile queries by scanning the rank
vector is O(n) per query — the thing a read-heavy tier cannot afford.
:class:`RankIndex` answers the same queries exactly without touching
the vector, from a structure maintained incrementally as ranks move
(the ``changed_pages`` delta of each
:class:`~repro.serve.incremental.FlushStats`).

Design: power-of-two value buckets + lazily sorted bucket caches
----------------------------------------------------------------
Every page lives in the bucket of its value's binary exponent
(``frexp``), so

* equal values always share a bucket, and
* bucket value ranges are disjoint and ordered — every value in a
  higher bucket is strictly greater than every value in a lower one.

Descending-bucket traversal therefore yields pages in globally sorted
order once each visited bucket is internally sorted, and the index
keeps a per-bucket cache of its members lexsorted by the serving
order (value descending, page id ascending — ties broken toward the
older page).  An update moves pages between buckets in O(1) amortized
per page and marks only the touched buckets' caches dirty, so query
cost concentrates where ranks actually moved:

* ``top_k(k)`` — walk buckets from the top, concatenating cached
  sorted runs: O(k + B) with B ≈ number of distinct exponents
  (≤ a few dozen for rank vectors, whose mass spans a narrow range).
* ``rank_of(page)`` — cumulative bucket sizes (cached) + one binary
  search inside the page's bucket: O(log).
* ``percentile(q)`` — nearest-rank selection by walking cumulative
  sizes from the bottom: O(B + log).

Float64 exponents are bounded (±1075 with subnormals), so the bucket
table cannot grow past ~2200 entries no matter the value
distribution.

The brute-force reference implementations used to pin correctness
(the hypothesis layer compares them against the index after every
mutation batch) live here too, defining the exact query semantics:
``rank_of`` is 1-based in descending serving order; ``percentile(q)``
is the nearest-rank lower percentile (smallest value whose ascending
rank reaches ``⌈q/100·n⌉``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

__all__ = [
    "RankIndex",
    "brute_force_top_k",
    "brute_force_rank_of",
    "brute_force_percentile",
]

#: Bucket id for non-positive values (sorts below every real exponent).
_FLOOR_BUCKET = -100_000
#: Sentinel for "page not in index" in the page->bucket table.
_NO_BUCKET = np.iinfo(np.int32).min


def _bucket_ids(values: np.ndarray) -> np.ndarray:
    """Binary-exponent bucket of each value (vectorized ``frexp``)."""
    values = np.asarray(values, dtype=np.float64)
    _, exp = np.frexp(values)
    out = exp.astype(np.int32)
    out[values <= 0.0] = _FLOOR_BUCKET
    return out


class RankIndex:
    """Incrementally maintained exact top-k / percentile index.

    Page ids are dense (``0 .. n-1``) and only ever grow, matching the
    serving tier's crawl model; a page enters the index the first time
    :meth:`update` mentions it.

    All queries serve the *descending* rank order with ties broken by
    ascending page id, and are exact: the property-test layer pins
    every query against the brute-force references after random
    mutation sequences.
    """

    def __init__(
        self,
        pages: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
    ):
        self._values = np.zeros(0, dtype=np.float64)
        self._bucket_of = np.zeros(0, dtype=np.int32)
        self._n_slots = 0  # length of the id space (dense, grow-only)
        self._n = 0  # pages actually indexed
        self._members: Dict[int, Set[int]] = {}
        self._sorted: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._cum: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if pages is not None or values is not None:
            if pages is None or values is None:
                raise ValueError("pages and values must be given together")
            self.update(pages, values)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __contains__(self, page: int) -> bool:
        return 0 <= page < self._n_slots and self._bucket_of[page] != _NO_BUCKET

    def update(self, pages: np.ndarray, values: np.ndarray) -> None:
        """Set the value of every listed page (insert or move).

        This is the write path: feed it ``FlushStats.changed_pages`` /
        ``changed_values`` after every ranker flush.  Duplicate pages
        in one call are an error (a batch has one final value per
        page).
        """
        pages = np.asarray(pages, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if pages.shape != values.shape or pages.ndim != 1:
            raise ValueError("pages and values must be parallel 1-D arrays")
        if pages.size == 0:
            return
        if pages.min() < 0:
            raise ValueError("page ids must be non-negative")
        if np.unique(pages).size != pages.size:
            raise ValueError("duplicate page in one update batch")

        top = int(pages.max()) + 1
        if top > self._n_slots:
            self._grow(top)

        old_buckets = self._bucket_of[pages]
        new_buckets = _bucket_ids(values)
        self._values[pages] = values
        self._bucket_of[pages] = new_buckets

        touched: Set[int] = set()
        for arr, buckets in ((pages, old_buckets), (pages, new_buckets)):
            order = np.argsort(buckets, kind="stable")
            bs = buckets[order]
            ps = arr[order]
            bounds = np.flatnonzero(np.r_[True, np.diff(bs) != 0])
            ends = np.r_[bounds[1:], bs.size]
            for s, e in zip(bounds, ends):
                b = int(bs[s])
                if b == _NO_BUCKET:
                    continue  # insertions have no old bucket
                members = self._members.get(b)
                if buckets is old_buckets:
                    if members is not None:
                        members.difference_update(int(p) for p in ps[s:e])
                else:
                    if members is None:
                        members = self._members[b] = set()
                    members.update(int(p) for p in ps[s:e])
                touched.add(b)
        self._n += int(np.count_nonzero(old_buckets == _NO_BUCKET))
        for b in touched:
            if b in self._members and not self._members[b]:
                del self._members[b]
            self._sorted.pop(b, None)
        self._cum = None

    def _grow(self, top: int) -> None:
        cap = max(top, int(self._n_slots * 1.5) + 8)
        values = np.zeros(cap, dtype=np.float64)
        values[: self._n_slots] = self._values[: self._n_slots]
        buckets = np.full(cap, _NO_BUCKET, dtype=np.int32)
        buckets[: self._n_slots] = self._bucket_of[: self._n_slots]
        self._values = values
        self._bucket_of = buckets
        self._n_slots = top

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def value_of(self, page: int) -> float:
        """Current indexed value of ``page``."""
        self._check_page(page)
        return float(self._values[page])

    def top_k(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``min(k, n)`` highest-ranked pages, in serving order.

        Returns ``(pages, values)``; descending value, ties broken by
        ascending page id.
        """
        if k < 0:
            raise ValueError("k must be >= 0")
        k = min(k, self._n)
        out_p: List[np.ndarray] = []
        out_v: List[np.ndarray] = []
        got = 0
        for b in sorted(self._members, reverse=True):
            if got >= k:
                break
            ps, vs = self._sorted_bucket(b)
            take = min(k - got, ps.size)
            out_p.append(ps[:take])
            out_v.append(vs[:take])
            got += take
        if not out_p:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
        return np.concatenate(out_p), np.concatenate(out_v)

    def rank_of(self, page: int) -> int:
        """1-based position of ``page`` in the serving order."""
        self._check_page(page)
        b = int(self._bucket_of[page])
        v = float(self._values[page])
        higher, _ = self._cumulative()
        ps, vs = self._sorted_bucket(b)
        # vs is descending; locate the run of values equal to v, then
        # the page within it (pages ascend inside a run).
        lo = int(np.searchsorted(-vs, -v, side="left"))
        hi = int(np.searchsorted(-vs, -v, side="right"))
        pos = lo + int(np.searchsorted(ps[lo:hi], page))
        return int(higher[b]) + pos + 1

    def percentile(self, q: float) -> float:
        """Nearest-rank lower percentile of the indexed values.

        The smallest indexed value whose ascending 1-based rank is at
        least ``⌈q/100·n⌉`` (``q = 0`` gives the minimum, ``q = 100``
        the maximum) — exactly :func:`brute_force_percentile`.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if self._n == 0:
            raise ValueError("percentile of an empty index")
        k = max(1, int(math.ceil(q / 100.0 * self._n)))  # ascending rank
        remaining = k
        for b in sorted(self._members):
            size = len(self._members[b])
            if remaining > size:
                remaining -= size
                continue
            _, vs = self._sorted_bucket(b)  # descending within bucket
            return float(vs[size - remaining])
        raise AssertionError("unreachable: k <= n")  # pragma: no cover

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_page(self, page: int) -> None:
        if page not in self:
            raise KeyError(f"page {page} is not indexed")

    def _sorted_bucket(self, b: int) -> Tuple[np.ndarray, np.ndarray]:
        """Bucket members lexsorted by (value desc, page asc), cached."""
        cached = self._sorted.get(b)
        if cached is not None:
            return cached
        members = self._members[b]
        ps = np.fromiter(members, dtype=np.int64, count=len(members))
        vs = self._values[ps]
        order = np.lexsort((ps, -vs))
        cached = (ps[order], vs[order])
        self._sorted[b] = cached
        return cached

    def _cumulative(self) -> Tuple[Dict[int, int], np.ndarray]:
        """Per-bucket count of pages in strictly higher buckets (cached)."""
        if self._cum is None:
            ids = sorted(self._members, reverse=True)
            higher: Dict[int, int] = {}
            acc = 0
            for b in ids:
                higher[b] = acc
                acc += len(self._members[b])
            self._cum = (higher, np.asarray(ids, dtype=np.int64))
        return self._cum


# ----------------------------------------------------------------------
# Brute-force references (the semantic ground truth for the tests)
# ----------------------------------------------------------------------
def _serving_order(values: np.ndarray) -> np.ndarray:
    """Page ids sorted by (value desc, page asc) — the serving order."""
    values = np.asarray(values, dtype=np.float64)
    pages = np.arange(values.size, dtype=np.int64)
    return np.lexsort((pages, -values))


def brute_force_top_k(values: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """O(n log n) top-k by full sort: the reference for ``top_k``."""
    if k < 0:
        raise ValueError("k must be >= 0")
    order = _serving_order(values)[: min(k, np.asarray(values).size)]
    return order, np.asarray(values, dtype=np.float64)[order]


def brute_force_rank_of(values: np.ndarray, page: int) -> int:
    """O(n) 1-based serving rank of ``page``: the reference for ``rank_of``."""
    values = np.asarray(values, dtype=np.float64)
    if not 0 <= page < values.size:
        raise KeyError(f"page {page} is not indexed")
    v = values[page]
    higher = int(np.count_nonzero(values > v))
    same = int(np.count_nonzero(values[:page] == v))
    return higher + same + 1


def brute_force_percentile(values: np.ndarray, q: float) -> float:
    """Nearest-rank lower percentile: the reference for ``percentile``."""
    values = np.asarray(values, dtype=np.float64)
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if values.size == 0:
        raise ValueError("percentile of an empty index")
    k = max(1, int(math.ceil(q / 100.0 * values.size)))
    return float(np.sort(values)[k - 1])
