"""The serving facade: a rank server fed by a live crawler.

:class:`RankServer` composes the two maintenance layers —
:class:`~repro.serve.incremental.IncrementalRanker` (keeps the rank
vector within a certified ε of the current graph's fixed point) and
:class:`~repro.serve.index.RankIndex` (keeps order-statistics queries
exact without scanning) — behind one object: mutations go in through
:meth:`RankServer.apply`, queries come out of :meth:`RankServer.top_k`
/ :meth:`RankServer.rank_of` / :meth:`RankServer.percentile`.

:class:`CrawlFeed` closes the loop with :mod:`repro.crawl`: it diffs a
:class:`~repro.crawl.crawler.Crawler`'s observed state between syncs
into :class:`~repro.serve.incremental.MutationBatch` objects.  The
contract is exact mirroring — after ``server.apply(feed.sync())`` the
server's graph equals ``crawler.snapshot()`` (asserted by the test
layer), so the ε staleness certificate is measured against precisely
the graph a fresh snapshot-and-solve would rank.

The delicate part of the diff is the open-system boundary.  A link's
internal/external classification depends on the *crawled set*, not on
the link: when the crawl reaches a page, every already-observed link
pointing at it silently flips from an external-out count to an
internal edge, without any source page changing.  The feed tracks
those pending flips with per-target watcher lists, and builds each
batch in three steps whose order matters:

1. **Refresh diffs** — for each re-fetched page, a multiset diff of
   its observed out-links; removals are classified against the *last
   sync's* crawled set (what the server currently believes), additions
   against the current one.  Watcher lists are updated here, so a
   removed never-crawled link cannot flip in step 2.
2. **Watcher flips** — for each page crawled since the last sync, its
   remaining watchers trade one external count for one internal edge.
3. **New pages** — appended in crawl order (the server assigns ids
   sequentially, so crawl ids and server ids stay equal), with their
   links classified against the current crawled set.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

import numpy as np

from repro.crawl.crawler import Crawler
from repro.graph.webgraph import WebGraph
from repro.serve.incremental import FlushStats, IncrementalRanker, MutationBatch
from repro.serve.index import RankIndex, brute_force_top_k

__all__ = ["RankServer", "CrawlFeed"]


class RankServer:
    """Incrementally maintained PageRank with exact indexed queries.

    Keyword arguments are forwarded to :class:`IncrementalRanker`
    (``n_groups``, ``alpha``, ``e``, ``epsilon``, ``max_rounds``,
    ``salt``).  Construction solves the initial graph and builds the
    index; each :meth:`apply` re-certifies the ε budget and applies
    the resulting rank delta to the index.
    """

    def __init__(self, graph: WebGraph, **ranker_kwargs):
        self.ranker = IncrementalRanker(graph, **ranker_kwargs)
        self.index = RankIndex()
        if self.ranker.n_pages:
            self.index.update(
                np.arange(self.ranker.n_pages, dtype=np.int64),
                self.ranker.ranks,
            )

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def apply(self, batch: MutationBatch) -> FlushStats:
        """Apply one mutation batch: re-rank, re-certify, re-index."""
        stats = self.ranker.update(batch)
        if stats.changed_pages.size:
            self.index.update(stats.changed_pages, stats.changed_values)
        return stats

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        return self.ranker.n_pages

    def top_k(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` highest-ranked pages ``(pages, values)``."""
        return self.index.top_k(k)

    def rank_of(self, page: int) -> int:
        """1-based position of ``page`` (value desc, page id asc)."""
        return self.index.rank_of(page)

    def percentile(self, q: float) -> float:
        """Nearest-rank lower percentile of the served rank values."""
        return self.index.percentile(q)

    def score(self, page: int) -> float:
        """The served rank value of one page."""
        return self.index.value_of(page)

    def staleness(self) -> float:
        """Certified relative-L1 distance to the current fixed point."""
        return self.ranker.staleness()

    def scan_top_k(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """The O(n log n) unindexed answer (the bench's scan baseline)."""
        return brute_force_top_k(self.ranker.ranks, k)


class CrawlFeed:
    """Diff a crawler's observed state into mutation batches.

    Construct the feed *before* handing the initial snapshot to the
    server (``RankServer(feed.initial_graph())``), then alternate
    crawler steps with :meth:`sync`.  Crawl ids are the server's page
    ids throughout.
    """

    def __init__(self, crawler: Crawler):
        self.crawler = crawler
        self._n_synced = crawler.n_crawled
        self._links: List[List[int]] = [
            list(links) for links in crawler._observed
        ]
        self._version: List[int] = list(crawler._fetched_version)
        #: uncrawled true-web target -> crawl ids observed linking to it
        #: (with multiplicity), i.e. external links pending a flip.
        self._watch: Dict[int, List[int]] = {}
        for cid, links in enumerate(self._links):
            for t in links:
                if not crawler.is_crawled(t):
                    self._watch.setdefault(t, []).append(cid)

    def initial_graph(self) -> WebGraph:
        """The snapshot corresponding to the feed's synced state."""
        if self._n_synced != self.crawler.n_crawled:  # pragma: no cover
            raise RuntimeError("crawler advanced before initial_graph()")
        return self.crawler.snapshot()

    def sync(self) -> MutationBatch:
        """Everything the crawler learned since the last sync, as a batch."""
        crawler = self.crawler
        crawl_id = crawler.crawl_id
        n_synced = self._n_synced
        batch = MutationBatch()
        ext: Dict[int, int] = {}

        def was_internal(t: int) -> bool:
            cid = crawl_id.get(t)
            return cid is not None and cid < n_synced

        # -- 1. refresh diffs on already-synced pages -------------------
        for cid in range(n_synced):
            if crawler._fetched_version[cid] == self._version[cid]:
                continue
            old = Counter(self._links[cid])
            new = Counter(crawler._observed[cid])
            for t, count in (old - new).items():
                if was_internal(t):
                    batch.remove_links.extend(
                        [(cid, crawl_id[t])] * count
                    )
                else:
                    ext[cid] = ext.get(cid, 0) - count
                    self._discard_watchers(t, cid, count)
            for t, count in (new - old).items():
                tcid = crawl_id.get(t)
                if tcid is not None:
                    batch.add_links.extend([(cid, tcid)] * count)
                else:
                    ext[cid] = ext.get(cid, 0) + count
                    self._watch.setdefault(t, []).extend([cid] * count)
            self._links[cid] = list(crawler._observed[cid])
            self._version[cid] = crawler._fetched_version[cid]

        # -- 2. external -> internal flips for newly crawled targets ----
        for new_cid in range(n_synced, crawler.n_crawled):
            true_page = crawler.true_id[new_cid]
            for watcher in self._watch.pop(true_page, []):
                ext[watcher] = ext.get(watcher, 0) - 1
                batch.add_links.append((watcher, new_cid))

        # -- 3. the new pages themselves, in crawl (= server id) order --
        web = crawler.web
        for new_cid in range(n_synced, crawler.n_crawled):
            true_page = crawler.true_id[new_cid]
            batch.new_pages.append(web.site_names[web.site_of[true_page]])
            links = crawler._observed[new_cid]
            for t in links:
                tcid = crawl_id.get(t)
                if tcid is not None:
                    batch.add_links.append((new_cid, tcid))
                else:
                    ext[new_cid] = ext.get(new_cid, 0) + 1
                    self._watch.setdefault(t, []).append(new_cid)
            self._links.append(list(links))
            self._version.append(crawler._fetched_version[new_cid])

        self._n_synced = crawler.n_crawled
        batch.external_delta = {p: d for p, d in ext.items() if d != 0}
        return batch

    def _discard_watchers(self, target: int, cid: int, count: int) -> None:
        watchers = self._watch.get(target)
        if watchers is None:  # pragma: no cover - defensive
            return
        for _ in range(count):
            watchers.remove(cid)
        if not watchers:
            del self._watch[target]
