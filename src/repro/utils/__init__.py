"""Low-level utilities shared by every subsystem.

The utilities here deliberately avoid any dependency on the rest of
:mod:`repro` so that every other subpackage may import them freely.

Modules
-------
``hashing``
    Stable (process-independent) hashing used for page partitioning and
    overlay node identifiers.  Python's builtin :func:`hash` is salted
    per process, so all reproducible placement decisions go through
    SHA-1 based digests instead.
``rng``
    Seed-spawning helpers built on :class:`numpy.random.Generator` so a
    single experiment seed deterministically derives independent
    per-component streams.
``validation``
    Small argument-checking helpers producing consistent error messages.
"""

from repro.utils.hashing import (
    stable_hash_bytes,
    stable_hash_str,
    stable_uint64,
    stable_uint128,
    digest_hex,
)
from repro.utils.rng import SeedSequenceFactory, as_generator, derive_seed
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_in_range,
)

__all__ = [
    "stable_hash_bytes",
    "stable_hash_str",
    "stable_uint64",
    "stable_uint128",
    "digest_hex",
    "SeedSequenceFactory",
    "as_generator",
    "derive_seed",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_in_range",
]
