"""Stable hashing primitives.

Partitioning decisions ("which page ranker owns page *u*?") and overlay
node identifiers must be reproducible across processes and Python
versions.  Python's builtin :func:`hash` is randomized per process
(PYTHONHASHSEED), so everything here is built on SHA-1 digests, which
are stable, uniform, and fast enough for our scales.

SHA-1 is used purely as a mixing function, never for security.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "stable_hash_bytes",
    "stable_hash_str",
    "stable_uint64",
    "stable_uint128",
    "digest_hex",
]

_MASK64 = (1 << 64) - 1
_MASK128 = (1 << 128) - 1


def stable_hash_bytes(data: bytes, *, salt: bytes = b"") -> int:
    """Return the full 160-bit SHA-1 digest of ``salt + data`` as an int.

    Parameters
    ----------
    data:
        The bytes to hash.
    salt:
        Optional prefix mixed into the digest.  Distinct salts give
        independent hash families, which is how the partitioning code
        derives multiple independent hash functions from one digest
        primitive.
    """
    h = hashlib.sha1()
    if salt:
        h.update(salt)
    h.update(data)
    return int.from_bytes(h.digest(), "big")


def stable_hash_str(text: str, *, salt: str = "") -> int:
    """Hash a unicode string; see :func:`stable_hash_bytes`."""
    return stable_hash_bytes(text.encode("utf-8"), salt=salt.encode("utf-8"))


def stable_uint64(obj: "str | bytes | int", *, salt: str = "") -> int:
    """Map an object to a uniform 64-bit unsigned integer.

    Integers are hashed via their decimal representation so that the
    result does not depend on platform integer width.
    """
    if isinstance(obj, bytes):
        full = stable_hash_bytes(obj, salt=salt.encode("utf-8"))
    elif isinstance(obj, str):
        full = stable_hash_str(obj, salt=salt)
    elif isinstance(obj, int):
        full = stable_hash_str(str(obj), salt=salt)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unhashable object type for stable_uint64: {type(obj)!r}")
    return full & _MASK64


def stable_uint128(obj: "str | bytes | int", *, salt: str = "") -> int:
    """Map an object to a uniform 128-bit unsigned integer.

    Overlay node identifiers use 128-bit keys (Pastry's native width).
    """
    if isinstance(obj, bytes):
        full = stable_hash_bytes(obj, salt=salt.encode("utf-8"))
    elif isinstance(obj, str):
        full = stable_hash_str(obj, salt=salt)
    elif isinstance(obj, int):
        full = stable_hash_str(str(obj), salt=salt)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unhashable object type for stable_uint128: {type(obj)!r}")
    return full & _MASK128


def digest_hex(obj: "str | bytes", *, salt: str = "") -> str:
    """Return the hex SHA-1 digest of an object (40 hex chars)."""
    if isinstance(obj, str):
        obj = obj.encode("utf-8")
    h = hashlib.sha1()
    if salt:
        h.update(salt.encode("utf-8"))
    h.update(obj)
    return h.hexdigest()
