"""Heap hygiene for allocation-heavy build phases.

Building a grouped operator churns through chunk-sized temporaries and
then frees them, but glibc's allocator keeps the freed pages in its
arena: process RSS — and therefore ``ru_maxrss``, which the
out-of-core benchmarks gate on — stays at the build's high-water mark
even though the live set is far smaller.  Worse, numpy's later large
allocations are often served by fresh ``mmap`` regions rather than
the retained arena space, so the freed pages are pure dead weight.

:func:`trim_heap` hands the freed pages back to the OS (glibc's
``malloc_trim`` walks every arena's free chunks and ``MADV_DONTNEED``s
whole pages since glibc 2.27).  Calling it once after a build phase
means the *subsequent* steady-state growth starts from the true live
set, keeping the process's high-water mark at the build peak instead
of build-peak-plus-steady-state.  It is a pure allocator operation:
no Python object, array value, or bit of arithmetic is affected.
"""

from __future__ import annotations

import ctypes

__all__ = ["trim_heap"]

_TRIM = None


def _load_trim():
    global _TRIM
    if _TRIM is None:
        try:
            libc = ctypes.CDLL("libc.so.6", use_errno=True)
            trim = libc.malloc_trim
            trim.argtypes = [ctypes.c_size_t]
            trim.restype = ctypes.c_int
            _TRIM = trim
        except (OSError, AttributeError):  # pragma: no cover - non-glibc
            _TRIM = False
    return _TRIM


def trim_heap() -> bool:
    """Release freed malloc arena pages back to the OS.

    Returns ``True`` if memory was actually released, ``False`` when
    nothing was releasable or the platform has no ``malloc_trim``
    (musl, macOS, Windows) — callers never need to check.
    """
    trim = _load_trim()
    if not trim:
        return False
    try:
        return bool(trim(0))
    except Exception:  # pragma: no cover - defensive
        return False
