"""Deterministic random-stream management.

A single experiment seed must deterministically fan out into
independent streams for every stochastic component (graph generator,
per-node wait times, message loss, overlay join order, ...).  NumPy's
:class:`~numpy.random.SeedSequence` provides exactly this via
``spawn``; the helpers here wrap it with named child derivation so the
stream a component receives does not depend on the order components
are constructed in.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.utils.hashing import stable_uint64

__all__ = ["SeedSequenceFactory", "as_generator", "derive_seed"]

RngLike = Union[None, int, np.random.Generator]


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a child seed from ``base_seed`` and a component ``name``.

    The derivation is order-independent: components asking for the same
    name always receive the same seed, and distinct names receive
    (statistically) independent seeds.
    """
    return stable_uint64(f"{base_seed}:{name}", salt="repro.rng")


def as_generator(rng: RngLike) -> np.random.Generator:
    """Coerce ``None`` / ``int`` / ``Generator`` into a Generator.

    ``None`` produces a non-deterministic generator; an ``int`` seeds a
    fresh PCG64; a generator passes through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


class SeedSequenceFactory:
    """Named deterministic fan-out of one experiment seed.

    Examples
    --------
    >>> f = SeedSequenceFactory(1234)
    >>> g1 = f.generator("graph")
    >>> g2 = f.generator("waits/node-17")
    >>> f2 = SeedSequenceFactory(1234)
    >>> float(g1.random()) == float(f2.generator("graph").random())
    True
    """

    def __init__(self, base_seed: Optional[int] = None):
        if base_seed is None:
            base_seed = int(np.random.default_rng().integers(0, 2**63 - 1))
        self.base_seed = int(base_seed)

    def seed(self, name: str) -> int:
        """Deterministic 64-bit child seed for component ``name``."""
        return derive_seed(self.base_seed, name)

    def generator(self, name: str) -> np.random.Generator:
        """Fresh :class:`numpy.random.Generator` for component ``name``."""
        return np.random.default_rng(self.seed(name))

    def child(self, name: str) -> "SeedSequenceFactory":
        """A sub-factory rooted at ``name`` (for nested components)."""
        return SeedSequenceFactory(self.seed(name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeedSequenceFactory(base_seed={self.base_seed})"
