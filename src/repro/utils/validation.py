"""Argument validation helpers with uniform error messages.

Every public entry point in :mod:`repro` validates its numeric
parameters through these helpers so error messages are consistent and
the validation logic is tested once.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]

__all__ = [
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_in_range",
]


def _check_finite_number(value: Number, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    v = float(value)
    if math.isnan(v) or math.isinf(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return v


def check_positive(value: Number, name: str) -> float:
    """Require ``value > 0``; return it as float."""
    v = _check_finite_number(value, name)
    if v <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return v


def check_non_negative(value: Number, name: str) -> float:
    """Require ``value >= 0``; return it as float."""
    v = _check_finite_number(value, name)
    if v < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_probability(value: Number, name: str) -> float:
    """Require ``0 <= value <= 1``; return it as float."""
    v = _check_finite_number(value, name)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_fraction(value: Number, name: str) -> float:
    """Require ``0 < value < 1``; return it as float.

    Used for quantities like the damping factor alpha where the theory
    (spectral radius < 1) breaks at the boundary.
    """
    v = _check_finite_number(value, name)
    if not 0.0 < v < 1.0:
        raise ValueError(f"{name} must be strictly inside (0, 1), got {value!r}")
    return v


def check_in_range(value: Number, name: str, lo: Number, hi: Number) -> float:
    """Require ``lo <= value <= hi``; return it as float."""
    v = _check_finite_number(value, name)
    if not float(lo) <= v <= float(hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return v
