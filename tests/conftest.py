"""Shared fixtures: small graphs with known structure."""

import numpy as np
import pytest

from repro.graph import (
    WebGraph,
    complete_web,
    google_contest_like,
    ring_web,
    star_web,
    two_site_web,
)


@pytest.fixture
def ring8() -> WebGraph:
    """8-page directed cycle; closed-system PageRank is uniform."""
    return ring_web(8)


@pytest.fixture
def star5() -> WebGraph:
    """Hub-and-spoke with 5 leaves (6 pages)."""
    return star_web(5)


@pytest.fixture
def complete6() -> WebGraph:
    """Complete directed graph on 6 pages; PageRank is uniform."""
    return complete_web(6)


@pytest.fixture
def twosite() -> WebGraph:
    """Two dense sites joined by 2 cross links."""
    return two_site_web(pages_per_site=8, cross_links=2, seed=0)


@pytest.fixture
def contest_small() -> WebGraph:
    """A small contest-like graph shared across integration tests."""
    return google_contest_like(800, 20, seed=42)


@pytest.fixture
def tiny_graph() -> WebGraph:
    """Hand-built 5-page graph with an external link and a dangling page.

    Structure::

        0 -> 1, 0 -> 2
        1 -> 2, 1 -> (external)
        2 -> 0
        3 -> 4
        4: dangling (no out-links at all)

    Sites: pages {0,1,2} on site 0; {3,4} on site 1.
    """
    return WebGraph(
        5,
        src=[0, 0, 1, 2, 3],
        dst=[1, 2, 2, 0, 4],
        site_of=[0, 0, 0, 1, 1],
        external_out=[0, 1, 0, 0, 0],
        site_names=("a.example.edu", "b.example.edu"),
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
