"""Unit tests for Gauss-Seidel and Aitken-accelerated solvers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.pagerank import pagerank_open
from repro.linalg import (
    aitken_extrapolate,
    gauss_seidel_solve,
    jacobi_solve,
    jacobi_solve_accelerated,
    propagation_matrix,
)


def pagerank_system(graph, alpha=0.85):
    p = propagation_matrix(graph, alpha)
    f = (1 - alpha) * np.ones(graph.n_pages)
    return p, f


class TestGaussSeidel:
    def test_same_fixed_point_as_jacobi(self, contest_small):
        p, f = pagerank_system(contest_small)
        gs = gauss_seidel_solve(p, f, tol=1e-13)
        jac = jacobi_solve(p, f, tol=1e-13)
        assert gs.converged
        np.testing.assert_allclose(gs.x, jac.x, atol=1e-9)

    def test_fewer_sweeps_than_jacobi(self, contest_small):
        """Stein-Rosenberg: GS converges at least as fast as Jacobi."""
        p, f = pagerank_system(contest_small)
        gs = gauss_seidel_solve(p, f, tol=1e-12)
        jac = jacobi_solve(p, f, tol=1e-12)
        assert gs.iterations < jac.iterations

    def test_warm_start(self, contest_small):
        p, f = pagerank_system(contest_small)
        cold = gauss_seidel_solve(p, f, tol=1e-12)
        warm = gauss_seidel_solve(p, f, x0=cold.x, tol=1e-12)
        assert warm.iterations <= 2

    def test_empty_system(self):
        res = gauss_seidel_solve(sp.csr_matrix((0, 0)), np.zeros(0))
        assert res.converged

    def test_shape_validation(self, contest_small):
        p, f = pagerank_system(contest_small)
        with pytest.raises(ValueError):
            gauss_seidel_solve(p, np.zeros(3))
        with pytest.raises(ValueError):
            gauss_seidel_solve(p, f, x0=np.zeros(3))
        with pytest.raises(ValueError):
            gauss_seidel_solve(p, f, max_iter=0)

    def test_history(self, contest_small):
        p, f = pagerank_system(contest_small)
        res = gauss_seidel_solve(p, f, tol=1e-10, record_history=True)
        assert len(res.deltas) == res.iterations


class TestAitken:
    def test_exact_on_pure_geometric(self):
        """x_k = x* + c·λ^k is annihilated exactly."""
        x_star = np.array([2.0, -1.0, 5.0])
        c = np.array([1.0, 3.0, -2.0])
        lam = 0.8
        xs = [x_star + c * lam**k for k in range(3)]
        np.testing.assert_allclose(aitken_extrapolate(*xs), x_star, atol=1e-10)

    def test_converged_components_unchanged(self):
        x = np.array([1.0, 2.0])
        out = aitken_extrapolate(x, x, x)
        np.testing.assert_array_equal(out, x)


class TestAcceleratedJacobi:
    def test_same_answer(self, contest_small):
        p, f = pagerank_system(contest_small)
        acc = jacobi_solve_accelerated(p, f, tol=1e-13)
        ref = pagerank_open(contest_small, tol=1e-13).ranks
        assert acc.converged
        np.testing.assert_allclose(acc.x, ref, atol=1e-9)

    def test_competitive_on_web_graphs(self, contest_small):
        # On a well-damped web graph extrapolation is roughly a wash;
        # it must never be much worse than plain Jacobi.
        p, f = pagerank_system(contest_small, alpha=0.95)
        plain = jacobi_solve(p, f, tol=1e-12)
        acc = jacobi_solve_accelerated(p, f, tol=1e-12, extrapolate_every=8)
        assert acc.converged
        assert acc.iterations <= 1.3 * plain.iterations

    def test_dramatic_win_on_slow_geometric_system(self):
        """Where the error is a single geometric mode (the regime
        Kamvar et al. target), Aitken collapses thousands of sweeps to
        a handful."""
        n = 50
        p = sp.identity(n, format="csr") * 0.999
        f = np.full(n, 0.001)
        plain = jacobi_solve(p, f, tol=1e-10, max_iter=50_000)
        acc = jacobi_solve_accelerated(
            p, f, tol=1e-10, max_iter=50_000, extrapolate_every=5
        )
        assert acc.converged
        assert acc.iterations < plain.iterations / 50
        np.testing.assert_allclose(acc.x, plain.x, atol=1e-6)

    def test_validates_extrapolate_every(self, contest_small):
        p, f = pagerank_system(contest_small)
        with pytest.raises(ValueError):
            jacobi_solve_accelerated(p, f, extrapolate_every=2)


class TestGaussSeidelInDPR:
    def test_dpr1_with_gauss_seidel_converges(self, contest_small):
        from repro.core import run_distributed_pagerank

        res = run_distributed_pagerank(
            contest_small,
            n_groups=6,
            inner_solver="gauss_seidel",
            t1=1.0,
            t2=1.0,
            seed=3,
            target_relative_error=1e-5,
            max_time=300.0,
        )
        assert res.converged

    def test_gs_uses_fewer_inner_sweeps(self, contest_small):
        from repro.core import run_distributed_pagerank

        kwargs = dict(
            n_groups=6, t1=1.0, t2=1.0, seed=3,
            target_relative_error=1e-5, max_time=300.0,
        )
        jac = run_distributed_pagerank(contest_small, inner_solver="jacobi", **kwargs)
        gs = run_distributed_pagerank(
            contest_small, inner_solver="gauss_seidel", **kwargs
        )
        assert gs.inner_sweeps.sum() < jac.inner_sweeps.sum()

    def test_invalid_solver_rejected(self, contest_small):
        from repro.core.dpr import DPRNode
        from repro.core.open_system import GroupSystem
        from repro.graph import make_partition

        part = make_partition(contest_small, 2, "site")
        system = GroupSystem(contest_small, part)
        with pytest.raises(ValueError):
            DPRNode(0, system.diag(0), system.beta_e[0], inner_solver="sor")
