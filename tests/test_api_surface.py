"""Meta-tests over the public API surface.

These enforce the packaging/documentation contract repo-wide:
every module imports cleanly, every ``__all__`` name resolves, and
every public function/class carries a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    """Every name a module exports must carry a docstring."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                    if meth_name.startswith("_"):
                        continue
                    if meth.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    if not (meth.__doc__ and meth.__doc__.strip()):
                        undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, f"{module_name}: undocumented public items {undocumented}"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_version_string():
    assert repro.__version__.count(".") == 2
