"""Unit tests for repro.net.bandwidth."""

import pytest

from repro.net.bandwidth import TrafficAccountant


class TestAccounting:
    def test_data_message_counters(self):
        acc = TrafficAccountant(4)
        acc.record_data_message(0, 1, 300)
        acc.record_data_message(1, 2, 200)
        assert acc.data_messages == 2
        assert acc.data_bytes == 500
        assert acc.bytes_out[0] == 300
        assert acc.bytes_in[2] == 200

    def test_lookup_counters(self):
        acc = TrafficAccountant(4)
        acc.record_lookup(0, hops=3, bytes_per_hop=50)
        assert acc.lookup_messages == 3
        assert acc.lookup_bytes == 150
        assert acc.bytes_out[0] == 150

    def test_snapshot_and_delta(self):
        acc = TrafficAccountant(2)
        acc.record_data_message(0, 1, 100)
        s1 = acc.snapshot(1.0)
        acc.record_data_message(0, 1, 100)
        acc.record_lookup(1, 2, 50)
        s2 = acc.snapshot(2.0)
        d = s2.delta(s1)
        assert d.data_messages == 1
        assert d.data_bytes == 100
        assert d.lookup_messages == 2
        assert s2.total_messages == 4
        assert s2.total_bytes == 300

    def test_node_bandwidth_peak(self):
        acc = TrafficAccountant(3)
        acc.record_data_message(0, 1, 100)
        acc.record_data_message(0, 2, 300)
        peaks = acc.node_bandwidth_peak()
        assert peaks["max_bytes_out"] == 400
        assert peaks["max_bytes_in"] == 300

    def test_rejects_empty_network(self):
        with pytest.raises(ValueError):
            TrafficAccountant(0)
