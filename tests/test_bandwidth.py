"""Unit tests for repro.net.bandwidth."""

import pytest

from repro.net.bandwidth import TrafficAccountant


class TestAccounting:
    def test_data_message_counters(self):
        acc = TrafficAccountant(4)
        acc.record_data_message(0, 1, 300)
        acc.record_data_message(1, 2, 200)
        assert acc.data_messages == 2
        assert acc.data_bytes == 500
        assert acc.bytes_out[0] == 300
        assert acc.bytes_in[2] == 200

    def test_lookup_counters(self):
        acc = TrafficAccountant(4)
        acc.record_lookup(0, hops=3, bytes_per_hop=50)
        assert acc.lookup_messages == 3
        assert acc.lookup_bytes == 150
        assert acc.bytes_out[0] == 150

    def test_snapshot_and_delta(self):
        acc = TrafficAccountant(2)
        acc.record_data_message(0, 1, 100)
        s1 = acc.snapshot(1.0)
        acc.record_data_message(0, 1, 100)
        acc.record_lookup(1, 2, 50)
        s2 = acc.snapshot(2.0)
        d = s2.delta(s1)
        assert d.data_messages == 1
        assert d.data_bytes == 100
        assert d.lookup_messages == 2
        assert s2.total_messages == 4
        assert s2.total_bytes == 300

    def test_node_bandwidth_peak(self):
        acc = TrafficAccountant(3)
        acc.record_data_message(0, 1, 100)
        acc.record_data_message(0, 2, 300)
        peaks = acc.node_bandwidth_peak()
        assert peaks["max_bytes_out"] == 400
        assert peaks["max_bytes_in"] == 300

    def test_rejects_empty_network(self):
        with pytest.raises(ValueError):
            TrafficAccountant(0)


# ----------------------------------------------------------------------
# Property tests: the accountant's little algebra.
#
# The engines lean on three identities — snapshot/delta is a group
# difference, merge is counter addition, and the paper-model counter
# shadows data_bytes unless a codec re-prices a payload.  Random
# event sequences pin them down.

from hypothesis import given, settings, strategies as st  # noqa: E402

N_NODES = 5


def traffic_events():
    node = st.integers(min_value=0, max_value=N_NODES - 1)
    size = st.integers(min_value=1, max_value=500)
    data = st.tuples(st.just("data"), node, node, size, st.none() | size)
    lookup = st.tuples(
        st.just("lookup"), node, st.integers(min_value=1, max_value=6), size
    )
    ack = st.tuples(st.just("ack"), node, node, size)
    return st.lists(data | lookup | ack, max_size=40)


def apply_events(acc, events):
    for ev in events:
        if ev[0] == "data":
            _, src, dst, n, paper = ev
            acc.record_data_message(src, dst, n, paper_bytes=paper)
        elif ev[0] == "lookup":
            _, src, hops, per_hop = ev
            acc.record_lookup(src, hops=hops, bytes_per_hop=per_hop)
        else:
            _, src, dst, n = ev
            acc.record_ack(src, dst, n)


COUNTERS = (
    "data_messages",
    "data_bytes",
    "lookup_messages",
    "lookup_bytes",
    "ack_messages",
    "ack_bytes",
    "paper_data_bytes",
)


class TestAccountantProperties:
    @settings(max_examples=60, deadline=None)
    @given(traffic_events(), traffic_events())
    def test_snapshot_delta_inverts_recording(self, first, second):
        """snapshot(t2) − snapshot(t1) == what was recorded in between,
        for every counter, regardless of the event mix."""
        acc = TrafficAccountant(N_NODES)
        apply_events(acc, first)
        s1 = acc.snapshot(1.0)
        apply_events(acc, second)
        s2 = acc.snapshot(2.0)
        d = s2.delta(s1)

        only_second = TrafficAccountant(N_NODES)
        apply_events(only_second, second)
        expected = only_second.snapshot(2.0)
        for name in COUNTERS:
            assert getattr(d, name) == getattr(expected, name)

    @settings(max_examples=60, deadline=None)
    @given(traffic_events(), traffic_events())
    def test_merge_is_counter_addition(self, first, second):
        """Recording A then B into one accountant equals recording them
        into two accountants and merging — the identity that makes the
        flat engine's per-round scratch-merge reporting path exact."""
        sequential = TrafficAccountant(N_NODES)
        apply_events(sequential, first + second)

        a = TrafficAccountant(N_NODES)
        b = TrafficAccountant(N_NODES)
        apply_events(a, first)
        apply_events(b, second)
        a.merge(b)

        for name in COUNTERS:
            assert getattr(a, name) == getattr(sequential, name)
        assert (a.bytes_out == sequential.bytes_out).all()
        assert (a.bytes_in == sequential.bytes_in).all()

    @settings(max_examples=60, deadline=None)
    @given(traffic_events())
    def test_totals_exclude_acks(self, events):
        """total_messages/total_bytes stay the paper's data + lookup
        quantities; ACK traffic is reported apart."""
        acc = TrafficAccountant(N_NODES)
        apply_events(acc, events)
        s = acc.snapshot(1.0)
        assert s.total_messages == s.data_messages + s.lookup_messages
        assert s.total_bytes == s.data_bytes + s.lookup_bytes

    @settings(max_examples=60, deadline=None)
    @given(traffic_events())
    def test_paper_bytes_shadow_data_bytes(self, events):
        """paper_data_bytes equals data_bytes when no message was
        re-priced, and ignores lookup/ACK traffic entirely."""
        acc = TrafficAccountant(N_NODES)
        apply_events(acc, events)
        repriced = any(
            ev[0] == "data" and ev[4] is not None for ev in events
        )
        if not repriced:
            assert acc.paper_data_bytes == acc.data_bytes
        expected = sum(
            (ev[3] if ev[4] is None else ev[4])
            for ev in events
            if ev[0] == "data"
        )
        assert acc.paper_data_bytes == expected

    @settings(max_examples=60, deadline=None)
    @given(traffic_events())
    def test_point_to_point_bytes_conserved(self, events):
        """Every data/ACK byte leaving a source arrives at exactly one
        destination; lookups charge the originator's egress only."""
        acc = TrafficAccountant(N_NODES)
        apply_events(acc, events)
        lookup_bytes = sum(
            ev[2] * ev[3] for ev in events if ev[0] == "lookup"
        )
        assert acc.bytes_out.sum() - lookup_bytes == acc.bytes_in.sum()
        assert (
            acc.bytes_in.sum() == acc.data_bytes + acc.ack_bytes
        )
