"""Tests for ranker state checkpoint/restore (§4.2's "shutdown")."""

import numpy as np
import pytest

from repro.core.dpr import DPRNode
from repro.core.open_system import GroupSystem
from repro.core.pagerank import pagerank_open
from repro.graph import make_partition
from repro.net.message import ScoreUpdate


@pytest.fixture
def system(contest_small):
    part = make_partition(contest_small, 4, "site")
    return GroupSystem(contest_small, part)


def fresh_node(system, g=0, **kwargs):
    return DPRNode(g, system.diag(g), system.beta_e[g], **kwargs)


class TestStateDict:
    def test_roundtrip_identical_state(self, system):
        node = fresh_node(system)
        node.receive(
            ScoreUpdate(1, 0, np.ones(system.group_size(0)), 3, generation=2)
        )
        node.step()
        state = node.state_dict()

        restored = fresh_node(system)
        restored.load_state_dict(state)
        np.testing.assert_array_equal(restored.r, node.r)
        assert restored.outer_iterations == node.outer_iterations
        assert restored.inner_sweeps == node.inner_sweeps
        np.testing.assert_array_equal(restored.refresh_x(), node.refresh_x())

    def test_restored_node_continues_identically(self, system):
        a = fresh_node(system)
        a.step()
        state = a.state_dict()
        b = fresh_node(system)
        b.load_state_dict(state)
        np.testing.assert_array_equal(a.step(), b.step())

    def test_snapshot_is_deep_copy(self, system):
        node = fresh_node(system)
        node.step()
        state = node.state_dict()
        node.step()  # mutate after snapshot
        restored = fresh_node(system)
        restored.load_state_dict(state)
        assert restored.outer_iterations == 1
        assert node.outer_iterations == 2

    def test_stale_protection_survives_restart(self, system):
        """Generation stamps in the checkpoint reject replayed updates."""
        node = fresh_node(system)
        size = system.group_size(0)
        node.receive(ScoreUpdate(1, 0, np.full(size, 5.0), 1, generation=7))
        restored = fresh_node(system)
        restored.load_state_dict(node.state_dict())
        restored.receive(ScoreUpdate(1, 0, np.full(size, 1.0), 1, generation=6))
        assert restored.stale_updates == 1
        np.testing.assert_array_equal(restored.refresh_x(), np.full(size, 5.0))

    def test_group_mismatch_rejected(self, system):
        node = fresh_node(system, g=0)
        other = fresh_node(system, g=1)
        with pytest.raises(ValueError, match="group"):
            other.load_state_dict(node.state_dict())

    def test_mode_mismatch_rejected(self, system):
        node = fresh_node(system, mode="dpr1")
        other = fresh_node(system, mode="dpr2")
        with pytest.raises(ValueError, match="mode"):
            other.load_state_dict(node.state_dict())

    def test_shape_mismatch_rejected(self, system):
        node = fresh_node(system, g=0)
        state = node.state_dict()
        state["r"] = np.zeros(node.n_local + 1)
        with pytest.raises(ValueError, match="shape"):
            fresh_node(system, g=0).load_state_dict(state)


class TestCrashRestartScenario:
    def test_crash_restart_converges_to_centralized(self, contest_small, system):
        """Run synchronously, 'crash' one node mid-run (losing nothing
        but its uptime), restore it from checkpoint, finish, and verify
        the final ranks still match centralized PageRank."""
        k = 4
        nodes = [fresh_node(system, g) for g in range(k)]

        def round_robin(nodes, rounds):
            for _ in range(rounds):
                updates = []
                for node in nodes:
                    r = node.step()
                    for dst, values in system.efferent(node.group, r).items():
                        updates.append(
                            ScoreUpdate(
                                node.group, dst, values,
                                system.cross_records(node.group, dst),
                                generation=node.outer_iterations,
                            )
                        )
                for u in updates:
                    nodes[u.dst_group].receive(u)

        round_robin(nodes, 10)
        checkpoint = nodes[2].state_dict()
        # Crash: node 2 is replaced by a fresh process restoring state.
        nodes[2] = fresh_node(system, 2)
        nodes[2].load_state_dict(checkpoint)
        round_robin(nodes, 60)

        ranks = system.assemble([n.r for n in nodes])
        reference = pagerank_open(contest_small, tol=1e-13).ranks
        err = np.abs(ranks - reference).sum() / np.abs(reference).sum()
        assert err < 1e-6
