"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig8_ks_parsing(self):
        args = build_parser().parse_args(["fig8", "--ks", "2,10,50"])
        assert args.ks == [2, 10, 50]

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "dpr1"
        assert args.transport == "indirect"
        assert args.overlay == "pastry"

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "dpr3"])

    def test_fault_tolerance_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.reliable is False
        assert args.retry_timeout == 4.0
        assert args.max_retries == 8
        assert args.crash_prob == 0.0
        assert args.heartbeat_interval == 0.0
        assert args.recovery is False
        assert args.pause_faults == 0

    @pytest.mark.parametrize(
        "flags",
        [
            ["--delivery-prob", "1.5"],
            ["--crash-prob", "-0.1"],
            ["--ack-loss-prob", "2"],
            ["--duplicate-prob", "-1"],
            ["--reorder-prob", "1.01"],
            ["--retry-timeout", "0"],
            ["--retry-backoff", "0.5"],
            ["--retry-jitter", "-1"],
            ["--retry-max-timeout", "-5"],
            ["--max-retries", "-1"],
            ["--heartbeat-interval", "-2"],
            ["--heartbeat-miss", "0"],
            ["--checkpoint-interval", "-1"],
            ["--pause-faults", "-3"],
            ["--pause-mean-outage", "-1"],
            ["--crash-after", "-1"],
            ["--crash-horizon", "-1"],
            ["--reorder-max-delay", "-0.5"],
        ],
    )
    def test_out_of_range_values_rejected(self, flags):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", *flags])


class TestCommands:
    def test_summary(self, capsys):
        rc = main(["summary", "--pages", "400", "--sites", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "crawl summary" in out
        assert "intra_site_link_fraction" in out

    def test_run_small(self, capsys):
        rc = main(
            [
                "run",
                "--pages", "400",
                "--sites", "10",
                "--groups", "4",
                "--max-time", "300",
                "--target", "1e-4",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged" in out
        assert "True" in out

    def test_table1(self, capsys):
        rc = main(["table1", "--ns", "1000", "--hop-samples", "100"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "7,500" in out  # the paper's published T at N=1000

    def test_fig8_tiny(self, capsys):
        rc = main(
            ["fig8", "--pages", "400", "--sites", "10", "--ks", "2,4",
             "--max-time", "2000"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "DPR1" in out

    def test_fig6_tiny(self, capsys):
        rc = main(
            ["fig6", "--pages", "300", "--sites", "10", "--groups", "6",
             "--max-time", "30"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Fig 6" in out
        assert "series A" in out

    def test_fig7_tiny_monotone_exit_code(self, capsys):
        rc = main(
            ["fig7", "--pages", "300", "--sites", "10", "--groups", "6",
             "--max-time", "30"]
        )
        out = capsys.readouterr().out
        assert rc == 0  # monotone (Thm 4.1) => success exit code
        assert "Fig 7" in out

    def test_all_subset(self, capsys, tmp_path):
        rc = main(
            ["all", "--pages", "300", "--sites", "10",
             "--only", "partitioning", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Reproduction report" in out
        assert (tmp_path / "partitioning.txt").exists()

    def test_run_reliable_reports_counters(self, capsys):
        rc = main(
            [
                "run",
                "--pages", "400",
                "--sites", "10",
                "--groups", "4",
                "--max-time", "300",
                "--target", "1e-4",
                "--reliable",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "retransmits" in out
        assert "ack messages" in out

    def test_run_recovery_reports_counters(self, capsys):
        rc = main(
            [
                "run",
                "--pages", "400",
                "--sites", "10",
                "--groups", "4",
                "--max-time", "100",
                "--target", "1e-4",
                "--reliable",
                "--crash-prob", "0.2",
                "--heartbeat-interval", "2.0",
                "--checkpoint-interval", "5.0",
                "--recovery",
            ]
        )
        out = capsys.readouterr().out
        assert "takeovers" in out
        assert "groups crashed" in out
        assert rc in (0, 1)  # crash draw may or may not block convergence

    def test_run_chaos_without_reliable_is_usage_error(self, capsys):
        rc = main(
            [
                "run",
                "--pages", "400",
                "--sites", "10",
                "--duplicate-prob", "0.5",
            ]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "reliable" in err

    def test_run_recovery_without_heartbeat_is_usage_error(self, capsys):
        rc = main(
            ["run", "--pages", "400", "--sites", "10", "--recovery"]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "heartbeat" in err

    def test_run_nonconvergence_exit_code(self, capsys):
        rc = main(
            [
                "run",
                "--pages", "400",
                "--sites", "10",
                "--groups", "4",
                "--max-time", "1",
                "--target", "1e-30",
            ]
        )
        assert rc == 1
